"""Control-plane robustness table — what coordinator faults actually cost.

Runs the recording workload on 3V through four escalating control-plane
scenarios — clean, a coordinator crash mid-wave, a partition/heal cycle,
and both at once — and tabulates the robustness counters next to the
user-visible cost: advancement runs completed, epochs burned, stale
messages fenced, partition drops, watchdog stalls, and read staleness.

The point of the table is the *last two columns*: the disruption shows up
as bounded extra staleness and (possibly) a stall span, never as lost
work — committed counts stay level and the audit stays clean.

Standalone by design: control-plane cells run fault storms, so they do
not belong in the zero-fault ``BENCH_hotpath.json`` determinism baseline.

Run directly::

    PYTHONPATH=src python benchmarks/bench_control_plane.py [--smoke]
"""

from __future__ import annotations

import typing

from repro.exp import chaos_spec
from repro.exp.summary import ExperimentSummary, run_spec

DURATIONS = {"full": 40.0, "smoke": 15.0}

#: scenario name -> extra chaos_spec axes.
SCENARIOS: typing.Tuple[typing.Tuple[str, typing.Dict[str, int]], ...] = (
    ("clean", {}),
    ("coord crash", {"coordinator_crashes": 1}),
    ("partition", {"partition_count": 1}),
    ("crash+partition", {"coordinator_crashes": 1, "partition_count": 1}),
)


def scenario_spec(mode: str, **axes):
    """The chaos workload with only the control-plane axes varying."""
    return chaos_spec("3v", duration=DURATIONS[mode], **axes)


def run_table(mode: str = "full"
              ) -> typing.List[typing.Tuple[str, ExperimentSummary]]:
    return [(name, run_spec(scenario_spec(mode, **axes)))
            for name, axes in SCENARIOS]


def render_table(rows) -> str:
    header = (f"{'scenario':<16}  {'adv':>4}  {'coord c/r':>9}  "
              f"{'epoch':>5}  {'cut':>5}  {'fenced':>6}  {'stalls':>6}  "
              f"{'committed':>9}  {'stale max':>9}")
    lines = [header, "-" * len(header)]
    for name, s in rows:
        committed = s.committed_updates + s.committed_reads
        cycles = f"{s.coordinator_crashes}/{s.coordinator_recoveries}"
        lines.append(
            f"{name:<16}  {s.advancement_runs:>4}  {cycles:>9}  "
            f"{s.coordinator_epoch:>5}  {s.partitions_cut:>5}  "
            f"{s.stale_epochs_fenced:>6}  {s.stall_count:>6}  "
            f"{committed:>9}  {s.staleness_max:>9.2f}"
        )
    return "\n".join(lines)


def check_rows(rows) -> None:
    """The graceful-degradation claims the table is supposed to show."""
    by_name = dict(rows)
    clean = by_name["clean"]
    for name, summary in rows:
        if not summary.audit_clean:
            raise AssertionError(f"{name}: audit not clean under disruption")
        # Disruptions delay work; they must not lose it wholesale.  The
        # drain runs to quiescence, so committed counts stay level.
        committed = summary.committed_updates + summary.committed_reads
        baseline = clean.committed_updates + clean.committed_reads
        if committed < 0.9 * baseline:
            raise AssertionError(
                f"{name}: committed work collapsed ({committed} vs "
                f"{baseline} clean)"
            )
    if by_name["coord crash"].coordinator_crashes != 1:
        raise AssertionError("coordinator crash scenario injected nothing")
    if by_name["partition"].partitions_cut == 0:
        raise AssertionError("partition scenario cut nothing")
    if by_name["crash+partition"].coordinator_epoch < 2:
        raise AssertionError("combined scenario never bumped the epoch")


if __name__ == "__main__":
    import sys

    chosen = "smoke" if "--smoke" in sys.argv else "full"
    table = run_table(chosen)
    print(render_table(table))
    check_rows(table)
    print(f"control-plane table ({chosen}): all degradation bounds hold")
