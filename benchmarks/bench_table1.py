"""T1 — regenerate the paper's Table 1 (the example execution sequence).

Replays the scripted three-site scenario and prints the event sequence in
the paper's format (time, site, event), ending with the counter values
that let the coordinator declare version 1 stable.  The benchmark times a
full replay including advancement and garbage collection.
"""

from conftest import save_text

from repro.analysis import Table
from repro.workloads.paper_example import expected_final_state, run_example


def replay():
    return run_example()


def render_trace(system) -> str:
    lines = ["T1: Example execution sequence (paper Table 1)",
             "=" * 48]
    events = []
    for event in system.history.write_events:
        kind = "updates"
        events.append(
            (event.time,
             f"Subtx {event.subtxn} {kind} {event.key} "
             f"version {event.version}"
             + (" and above [dual write]" if event.versions_written > 1 else "")
             + f"  @ site {event.node}")
        )
    for event in system.history.read_events:
        events.append(
            (event.time,
             f"Read tx {event.txn} reads {event.key} "
             f"version {event.version_used}  @ site {event.node}")
        )
    for record in system.history.advancements:
        events.append((record.started, "Version advancement begins"))
        events.append((record.phase1_done,
                       "All sites acknowledged update version "
                       f"{record.new_update_version}"))
        events.append((record.phase2_done,
                       "Counters match: version "
                       f"{record.new_update_version - 1} stable"))
        events.append((record.phase3_done,
                       "Read version advanced to "
                       f"{record.new_update_version - 1}"))
        events.append((record.gc_done, "Garbage collection complete"))
    for time, text in sorted(events):
        lines.append(f"  t={time:6.2f}  {text}")
    counters = Table("Final request/completion counters (version 1)",
                     ["site", "R(1) rows", "C(1) rows"])
    for node_id, node in sorted(system.nodes.items()):
        counters.add(node_id, str(node.counters.requests(1)),
                     str(node.counters.completions(1)))
    lines.append("")
    lines.append(counters.render())
    return "\n".join(lines)


def test_table1_replay(benchmark):
    system = benchmark.pedantic(
        lambda: replay().system, rounds=3, iterations=1
    )
    # The replay must land exactly on the paper's final state.
    final = {}
    for node in system.nodes.values():
        final.update(node.store.snapshot())
    assert final == expected_final_state()
    assert sum(n.store.dual_writes for n in system.nodes.values()) == 1
    assert system.read_version == 1 and system.update_version == 2
    save_text("t1_table1", render_trace(system))
