"""C4 — correctness: fractured reads per system.

Uses the bitmask oracle: every recording transaction deposits a distinct
power of two on every node of one entity, so an inquiry's per-node values
decompose exactly into the set of transactions each node reflected.  Any
divergence is a fractured read (a customer seeing "partial charges from a
single visit").  3V must also pass the strict Theorem 4.1 snapshot check.

Manual versioning is swept over its safety delay to show the paper's
point that the delay merely trades staleness for a *lower chance* of
inconsistency — it never reaches zero until the delay is conservatively
huge.
"""

from conftest import save_table

from repro.analysis import Table, audit, is_conflict_serializable
from repro.net import UniformLatency
from repro.sim import LogNormal
from repro.workloads import run_recording_experiment

SETTINGS = dict(
    nodes=6, duration=90.0, update_rate=8.0, inquiry_rate=6.0,
    audit_rate=0.4, entities=15, span=3, seed=41, amount_mode="bitmask",
    latency=UniformLatency(LogNormal(mean=1.0, sigma=1.0)),
)


def report_for(protocol: str, check_snapshots=False, **kwargs):
    result = run_recording_experiment(protocol, **SETTINGS, **kwargs)
    report = audit(result.history, result.workload,
                   check_snapshots=check_snapshots)
    serializable = is_conflict_serializable(result.history)
    return report, serializable


def test_c4_anomalies(benchmark):
    benchmark.pedantic(lambda: report_for("nocoord"), rounds=2, iterations=1)
    table = Table(
        "C4: Fractured reads under identical load "
        "(bitmask oracle + serialization graph)",
        ["system", "reads checked", "fractured", "fractured %",
         "snapshot violations", "conflict-serializable"],
        precision=2,
    )
    rows = {}
    serializable_by = {}
    three_v, three_v_sr = report_for("3v", check_snapshots=True)
    rows["3v"] = three_v
    serializable_by["3v"] = three_v_sr
    table.add("3v", three_v.reads_checked, three_v.fractured_reads,
              100 * three_v.fractured_rate, three_v.snapshot_mismatches,
              three_v_sr)
    for protocol in ("nocoord", "2pc"):
        report, serializable = report_for(protocol)
        rows[protocol] = report
        serializable_by[protocol] = serializable
        table.add(protocol, report.reads_checked, report.fractured_reads,
                  100 * report.fractured_rate, "-", serializable)
    for delay in (0.5, 2.0, 8.0):
        report, serializable = report_for("manual", advancement_period=10.0,
                                          safety_delay=delay)
        rows[f"manual d={delay}"] = report
        table.add(f"manual (delay {delay}s)", report.reads_checked,
                  report.fractured_reads, 100 * report.fractured_rate, "-",
                  serializable)
    save_table("c4_anomalies", table)

    # The independent serialization-graph instrument agrees.
    assert serializable_by["3v"]
    assert serializable_by["2pc"]
    assert not serializable_by["nocoord"]

    assert rows["3v"].clean
    assert rows["2pc"].fractured_reads == 0
    assert rows["nocoord"].fractured_reads > 0
    # Bigger safety delay helps but never reaches zero: the version-fork
    # race is delay-independent (see bench_c3_staleness).
    assert (
        rows["manual d=0.5"].fractured_reads
        > rows["manual d=8.0"].fractured_reads
    )
    assert rows["manual d=8.0"].fractured_reads > 0
