"""Node-count scaling benchmark — the cluster axis of the tracked baseline.

Sweeps an *advancement-dominated* 3V workload over cluster sizes (nodes ∈
{4, 8, 16, 32, 64}; the smoke subset stops at 16) with delivery batching
off and on, through the cached experiment fleet.  The cell is deliberately
pure control-plane — zero user transactions, constant latency, a fast
advancement period and poll interval — so what is measured is exactly the
machinery this axis exercises: counter-read waves, quiescence checks, and
the advancement broadcasts whose reply waves delivery batching coalesces.

Two kinds of output feed ``BENCH_hotpath.json`` via
:func:`bench_hotpath.run_suite`:

* ``metrics`` — wall-clock rates and batched-vs-unbatched speedups at the
  16-node (and, full mode, 64-node) cells.  The events/sec rate uses the
  *unbatched* event count as the numerator for both variants: a batched
  run performs the same simulated work with fewer scheduled events, so
  its own event count would understate it.  "Canonical events per second"
  is the honest same-work-per-wall-second comparison.
* ``determinism`` — per-cell event/message/advancement counts, which must
  be bit-stable across hosts and worker counts like every other digest.

The batched and unbatched variants of each cell must also agree exactly
on everything except the scheduled-event trace (messages, advancement
runs, polls, transaction counts); this differential is asserted on every
run, so the gate doubles as an equivalence check for delivery batching.

Run directly for the scaling table::

    PYTHONPATH=src python benchmarks/bench_scaling_nodes.py [--smoke]
"""

from __future__ import annotations

import pathlib
import typing

from repro.exp import ExperimentSpec, Fleet, ResultCache
from repro.exp.summary import ExperimentSummary, run_spec

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Cluster sizes per mode.  Smoke stays small enough for the tier-1 budget.
NODE_COUNTS: typing.Dict[str, typing.Tuple[int, ...]] = {
    "full": (4, 8, 16, 32, 64),
    "smoke": (4, 8, 16),
}

#: Simulated seconds of advancement traffic per mode.
DURATIONS = {"full": 600.0, "smoke": 120.0}

#: Node counts whose cells are tracked as gated metrics (when present in
#: the mode's sweep).
METRIC_NODES = (16, 64)


def scaling_spec(nodes: int, batch: int, mode: str = "full"
                 ) -> ExperimentSpec:
    """The advancement-storm cell: all control plane, no user traffic."""
    return ExperimentSpec(
        "3v", nodes=nodes, duration=DURATIONS[mode],
        update_rate=0.0, inquiry_rate=0.0, audit_rate=0.0,
        entities=4, span=2, seed=13,
        advancement_period=0.2, poll_interval=0.05,
        detail=False, batch_delivery=batch, latency_jitter=0.0,
    )


def _check_equivalent(nodes: int, plain: ExperimentSummary,
                      batched: ExperimentSummary) -> None:
    """Batching may only change the scheduled-event trace."""
    for field in ("submitted", "txn_count", "messages_total",
                  "messages_control", "advancement_runs",
                  "advancement_counter_polls"):
        have = getattr(batched, field)
        want = getattr(plain, field)
        if have != want:
            raise AssertionError(
                f"batched delivery changed {field} at {nodes} nodes: "
                f"{want} -> {have}"
            )
    if plain.delivery_batches or plain.batched_messages:
        raise AssertionError(
            f"unbatched run recorded batch stats at {nodes} nodes"
        )
    if batched.batched_messages == 0:
        raise AssertionError(
            f"batched run coalesced nothing at {nodes} nodes "
            "(constant-latency reply waves should share ticks)"
        )


def _timed(spec: ExperimentSpec, repeat: int) -> ExperimentSummary:
    """Best-of-``repeat`` wall clock (summary of the fastest run).

    Timing runs in-process and never through the result cache: a cached
    summary carries the wall clock of whenever it was recorded, which is
    exactly what a fresh measurement must not reuse.
    """
    best: typing.Optional[ExperimentSummary] = None
    for _ in range(repeat):
        summary = run_spec(spec)
        if best is None or summary.wall_seconds < best.wall_seconds:
            best = summary
    return best


def run_scaling(mode: str = "full", jobs: int = 1, repeat: int = 3
                ) -> typing.Dict[str, typing.Any]:
    """Run the sweep; returns ``{"metrics", "determinism", "rows"}``.

    The determinism/equivalence sweep goes through the cached fleet (it
    depends only on simulation behaviour, so cache hits are sound and
    make re-runs cheap); the wall-clock cells are then re-measured fresh,
    best-of-``repeat``, in this process.
    """
    counts = NODE_COUNTS[mode]
    specs = [scaling_spec(nodes, batch, mode)
             for nodes in counts for batch in (0, 1)]
    cache = ResultCache(RESULTS_DIR / ".fleet-cache")
    summaries = Fleet(jobs=jobs, cache=cache).run(specs)
    by_cell = {(spec.nodes, spec.batch_delivery): summary
               for spec, summary in zip(specs, summaries)}

    metrics: typing.Dict[str, float] = {}
    determinism: typing.Dict[str, typing.Any] = {}
    rows = []
    for nodes in counts:
        plain, batched = by_cell[(nodes, 0)], by_cell[(nodes, 1)]
        _check_equivalent(nodes, plain, batched)
        determinism[f"scaling_events_{nodes:02d}"] = plain.sim_events
        determinism[f"scaling_events_batched_{nodes:02d}"] = \
            batched.sim_events
        determinism[f"scaling_messages_{nodes:02d}"] = plain.messages_total
        determinism[f"scaling_advancement_runs_{nodes:02d}"] = \
            plain.advancement_runs

        plain_wall = _timed(scaling_spec(nodes, 0, mode),
                            repeat).wall_seconds
        batched_wall = _timed(scaling_spec(nodes, 1, mode),
                              repeat).wall_seconds
        # Canonical (unbatched) events over each variant's wall: same
        # numerator, so the ratio is a pure wall-clock speedup.
        canonical = plain.sim_events
        rows.append({
            "nodes": nodes,
            "events": canonical,
            "events_batched": batched.sim_events,
            "coalesced": batched.batched_messages,
            "messages": plain.messages_total,
            "events_per_sec": canonical / plain_wall,
            "events_per_sec_batched": canonical / batched_wall,
            "speedup": plain_wall / batched_wall,
        })
        if nodes in METRIC_NODES:
            metrics[f"scaling_advancement_events_per_sec_{nodes}"] = (
                canonical / batched_wall)
            metrics[f"scaling_batch_speedup_{nodes}"] = (
                plain_wall / batched_wall)
    return {"mode": mode, "metrics": metrics, "determinism": determinism,
            "rows": rows}


def render_table(result: typing.Dict[str, typing.Any]) -> str:
    header = (f"{'nodes':>5}  {'events':>8}  {'batched':>8}  "
              f"{'coalesced':>9}  {'ev/s':>10}  {'ev/s batched':>12}  "
              f"{'speedup':>7}")
    lines = [header, "-" * len(header)]
    for row in result["rows"]:
        lines.append(
            f"{row['nodes']:>5}  {row['events']:>8}  "
            f"{row['events_batched']:>8}  {row['coalesced']:>9}  "
            f"{row['events_per_sec']:>10,.0f}  "
            f"{row['events_per_sec_batched']:>12,.0f}  "
            f"{row['speedup']:>6.2f}x"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    import json
    import sys

    chosen = "smoke" if "--smoke" in sys.argv else "full"
    outcome = run_scaling(chosen)
    print(render_table(outcome))
    print(json.dumps({"metrics": outcome["metrics"],
                      "determinism": outcome["determinism"]}, indent=2))
