"""C5 — the three-version bound and the dual-write overhead.

The paper: "the scheme never creates more than three copies of a data
item", and the extra write (a version-v straggler also updating the v+1
copy) happens "only when there is data contention that would, in an
ordinary system, have blocked the transaction".  This benchmark sweeps
advancement frequency and network tail-latency (straggler probability)
and reports the observed version high-water mark and the dual-write
fraction.
"""

from conftest import save_table

from repro.analysis import Table
from repro.net import UniformLatency
from repro.sim import LogNormal
from repro.workloads import run_recording_experiment

SETTINGS = dict(
    nodes=6, duration=60.0, update_rate=10.0, inquiry_rate=3.0,
    audit_rate=0.1, entities=30, span=3, seed=51, amount_mode="money",
    detail=False,
)


def run(period: float, sigma: float):
    return run_recording_experiment(
        "3v",
        advancement_period=period,
        latency=UniformLatency(LogNormal(mean=1.0, sigma=sigma)),
        **SETTINGS,
    )


def test_c5_version_bound(benchmark):
    benchmark.pedantic(lambda: run(10.0, 0.5), rounds=2, iterations=1)
    table = Table(
        "C5: Version count bound and dual-write overhead (3V)",
        ["advancement period", "latency tail sigma", "advancements",
         "max live versions", "dual writes", "dual-write %"],
        precision=3,
    )
    observed = []
    for period in (30.0, 10.0, 5.0):
        for sigma in (0.25, 1.0, 2.0):
            result = run(period, sigma)
            nodes = result.system.nodes.values()
            max_versions = max(n.store.max_live_versions for n in nodes)
            dual = sum(n.store.dual_writes for n in nodes)
            total = sum(n.store.total_writes for n in nodes)
            observed.append((period, sigma, max_versions, dual, total))
            table.add(
                period, sigma, result.system.coordinator.completed_runs,
                max_versions, dual, 100.0 * dual / total if total else 0.0,
            )
    save_table("c5_versions", table)

    # The hard bound holds everywhere.
    assert all(row[2] <= 3 for row in observed)
    # Dual writes appear only with advancement traffic + latency tails,
    # and remain a small fraction of all writes.
    heaviest = [row for row in observed if row[0] == 5.0 and row[1] == 2.0]
    assert heaviest[0][3] >= 0
    for _period, _sigma, _mv, dual, total in observed:
        assert dual <= 0.05 * total + 5
