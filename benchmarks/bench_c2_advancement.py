"""C2 — user latency is unaffected by version-advancement frequency.

Sweeps the advancement period on a fixed 8-node cluster and compares the
3V protocol (asynchronous advancement) with the synchronous switch
baseline (freeze-drain-switch-thaw).  The paper's claim: 3V user latency
is flat no matter how often versions advance, because no user transaction
ever synchronizes with the advancement; the blocking design pays a stall
proportional to switch frequency.
"""

from conftest import save_table

from repro.analysis import Table, latency_summary, wait_summary
from repro.workloads import run_recording_experiment

PERIODS = (40.0, 20.0, 10.0, 5.0)
SETTINGS = dict(
    nodes=8, duration=80.0, update_rate=12.0, inquiry_rate=6.0,
    audit_rate=0.2, entities=100, span=2, seed=21, amount_mode="money",
    detail=False,
)


def run(protocol: str, period: float):
    return run_recording_experiment(
        protocol, advancement_period=period, **SETTINGS
    )


def test_c2_advancement_frequency(benchmark):
    benchmark.pedantic(lambda: run("3v", 10.0), rounds=2, iterations=1)
    table = Table(
        "C2: User latency vs advancement period (8 nodes, 18 txn/s)",
        ["system", "period (s)", "switches", "upd p95", "upd p99",
         "stall time total"],
        precision=3,
    )
    p99 = {}
    stalls = {}
    for protocol in ("3v", "manual-sync"):
        for period in PERIODS:
            result = run(protocol, period)
            history = result.history
            updates = latency_summary(history, kind="update")
            switches = (
                result.system.coordinator.completed_runs
                if protocol == "3v"
                else len(result.system.version_closed_at)
            )
            stall = wait_summary(history).get("advancement", 0.0)
            p99[(protocol, period)] = updates.p99
            stalls[(protocol, period)] = stall
            table.add(protocol, period, switches, updates.p95, updates.p99,
                      stall)
    save_table("c2_advancement", table)

    # 3V: latency flat across the sweep and zero advancement stall.
    three_v = [p99[("3v", period)] for period in PERIODS]
    assert max(three_v) <= min(three_v) * 3 + 0.01
    assert all(stalls[("3v", period)] == 0.0 for period in PERIODS)
    # Synchronous switching stalls more as the period shrinks.
    assert stalls[("manual-sync", 5.0)] > stalls[("manual-sync", 40.0)]
    assert stalls[("manual-sync", 5.0)] > 0.0
