"""Side-by-side pure vs compiled kernel microbenchmarks.

Measures the same storms as :mod:`bench_hotpath` twice in one process —
once with the pure-Python kernel classes (from the loader's pre-swap
namespace snapshots) and once with the compiled twins (imported directly)
— so the ``accel_*`` speedup cells in ``BENCH_hotpath.json`` are
apples-to-apples regardless of which build the ambient process selected.

Every storm asserts that both implementations produced identical results
before any rate is reported: these are benchmarks *and* coarse
differential checks (the fine-grained oracles live in the test suite).

Skipped entirely (``run_accel_suite`` returns ``None``) when no compiled
build is present, so pure checkouts and toolchain-less CI runs never see
these cells.
"""

from __future__ import annotations

import time
import typing

from repro._accel import (
    AccelUnavailableError,
    accel_backend,
    load_accel,
    pure_namespace,
)
from repro.storage.values import Increment

import bench_hotpath

#: Canonical modules the accel cells need; all must be compiled.
REQUIRED = ("repro.sim.simulator", "repro.storage.counters",
            "repro.storage.mvstore")


def available() -> bool:
    """Whether every compiled twin the accel cells measure is importable."""
    try:
        for canonical in REQUIRED:
            load_accel(canonical)
    except AccelUnavailableError:
        return False
    return True


def _best_of(fn: typing.Callable[[], typing.Any], repeat: int
             ) -> typing.Tuple[float, typing.Any]:
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best, result


# ----------------------------------------------------------------------
# Class-parameterized storms (same shapes and sizings as bench_hotpath)
# ----------------------------------------------------------------------

def counter_storm(n: int, counter_cls) -> typing.Tuple[dict, dict]:
    table = counter_cls("p")
    table.ensure_version(1)
    inc_r, inc_c = table.inc_request, table.inc_completion
    for _ in range(n):
        inc_r(1, "q")
        inc_c(1, "q")
    return table.requests(1), table.completions(1)


def mvstore_storm(n: int, store_cls) -> dict:
    store = store_cls()
    for k in range(100):
        store.load(k, 0)
    for i in range(n):
        k = i % 100
        store.read_max_leq(k, 5)
        store.exists_above(k, 5)
        store.ensure_version(k, 1)
    # Same round as bench_hotpath plus a write tail so the snapshot
    # equality assert covers the apply path too.
    for k in range(100):
        store.apply_geq(k, 0, Increment(k))
    return store.snapshot()


def callback_storm(n: int, sim_cls) -> int:
    return bench_hotpath.kernel_callback_storm(n, sim_class=sim_cls)


def process_storm(n: int, sim_cls) -> int:
    return bench_hotpath.kernel_process_storm(n, sim_class=sim_cls)


def _measure(name: str, fn, pure_arg, accel_arg, repeat: int,
             metrics: typing.Dict[str, float], rate_of) -> None:
    """Time ``fn`` under both implementations; record rate + speedup."""
    pure_wall, pure_result = _best_of(lambda: fn(pure_arg), repeat)
    accel_wall, accel_result = _best_of(lambda: fn(accel_arg), repeat)
    assert pure_result == accel_result, (
        f"accel {name} diverged from pure: "
        f"{accel_result!r} != {pure_result!r}"
    )
    metrics[f"accel_{name}_per_sec"] = rate_of(accel_result) / accel_wall
    metrics[f"accel_{name}_speedup"] = pure_wall / accel_wall


def run_accel_suite(mode: str = "full"
                    ) -> typing.Optional[typing.Dict[str, typing.Any]]:
    """``{"backend": ..., "metrics": {...}}`` or ``None`` when not built."""
    if not available():
        return None
    cfg = bench_hotpath.CONFIGS[mode]
    repeat = cfg["repeat"]

    pure_sim = pure_namespace("repro.sim.simulator")["Simulator"]
    accel_sim = load_accel("repro.sim.simulator").Simulator
    pure_counter = pure_namespace("repro.storage.counters")["CounterTable"]
    accel_counter = load_accel("repro.storage.counters").CounterTable
    pure_store = pure_namespace("repro.storage.mvstore")["MVStore"]
    accel_store = load_accel("repro.storage.mvstore").MVStore

    metrics: typing.Dict[str, float] = {}
    n = cfg["counter_incs"]
    _measure("counter_incs", lambda cls: counter_storm(n, cls),
             pure_counter, accel_counter, repeat, metrics,
             rate_of=lambda _result: 2 * n)
    rounds = cfg["mvstore_rounds"]
    _measure("mvstore_ops", lambda cls: mvstore_storm(rounds, cls),
             pure_store, accel_store, repeat, metrics,
             rate_of=lambda _result: 3 * rounds)
    events = cfg["kernel_events"]
    _measure("kernel_callback_events", lambda cls: callback_storm(events, cls),
             pure_sim, accel_sim, repeat, metrics,
             rate_of=lambda result: result)
    items = cfg["process_items"]
    _measure("kernel_process_events", lambda cls: process_storm(items, cls),
             pure_sim, accel_sim, repeat, metrics,
             rate_of=lambda result: result)
    return {"backend": accel_backend(), "metrics": metrics}


if __name__ == "__main__":
    import json
    import sys

    mode = "smoke" if "--smoke" in sys.argv else "full"
    suite = run_accel_suite(mode)
    if suite is None:
        print("no compiled accel build present; nothing to measure")
        sys.exit(0)
    print(json.dumps(suite, indent=2))
