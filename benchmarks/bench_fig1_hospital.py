"""F1 — the Figure 1 hospital scenario as a workload.

Concurrent visit transactions and balance inquiries through a front-end,
exactly the concurrency pattern of Figure 1: the inquiry must either see
all of a visit's charges or none of them.  The table reports, per system,
whether that guarantee held under load.
"""

from conftest import save_table

from repro.analysis import Table, audit, latency_summary
from repro.workloads import run_recording_experiment

SETTINGS = dict(
    nodes=6, duration=40.0, update_rate=6.0, inquiry_rate=4.0,
    audit_rate=0.2, entities=20, span=3, seed=7, amount_mode="bitmask",
)


def run(protocol: str):
    kwargs = dict(SETTINGS)
    if protocol == "manual":
        kwargs.update(advancement_period=10.0, safety_delay=2.0)
    return run_recording_experiment(protocol, **kwargs)


def test_fig1_hospital(benchmark):
    benchmark.pedantic(lambda: run("3v"), rounds=2, iterations=1)
    table = Table(
        "F1: Hospital visits vs balance inquiries (atomic visibility)",
        ["system", "inquiries checked", "fractured", "fractured %",
         "inquiry p95 latency"],
        precision=2,
    )
    fractured = {}
    for protocol in ("3v", "nocoord", "manual", "2pc"):
        result = run(protocol)
        report = audit(result.history)
        reads = latency_summary(result.history, kind="read", which="global")
        fractured[protocol] = report.fractured_reads
        table.add(protocol, report.reads_checked, report.fractured_reads,
                  100.0 * report.fractured_rate, reads.p95)
    save_table("f1_hospital", table)
    assert fractured["3v"] == 0
    assert fractured["2pc"] == 0
    assert fractured["nocoord"] > 0
