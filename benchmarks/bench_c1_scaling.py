"""C1 — throughput and latency scaling with cluster size.

The paper's core scalability claim: because no user transaction ever
waits for coordination, 3V's per-node throughput and latency are flat as
nodes are added, tracking the no-coordination lower bound; global 2PL+2PC
degrades with node count (lock hold times include network round trips)
and sheds load through wait-die aborts.

Offered load scales with the cluster (2 updates/s and 1 inquiry/s per
node), so a scalable system shows constant *per-node* goodput.
"""

from conftest import save_table

from repro.analysis import (
    Table,
    latency_summary,
    max_remote_wait,
    mean_ci,
    throughput,
)
from repro.workloads import run_recording_experiment

NODE_COUNTS = (2, 4, 8, 16, 32)
DURATION = 30.0
SEEDS = (13, 14, 15)


def run(protocol: str, nodes: int, seed: int):
    return run_recording_experiment(
        protocol,
        nodes=nodes,
        duration=DURATION,
        update_rate=2.0 * nodes,
        inquiry_rate=1.0 * nodes,
        audit_rate=0.1,
        entities=25 * nodes,
        span=2,
        seed=seed,
        amount_mode="money",
        detail=False,
    )


def test_c1_scaling(benchmark):
    benchmark.pedantic(lambda: run("3v", 4, 13), rounds=2, iterations=1)
    table = Table(
        "C1: Scaling with cluster size "
        "(offered: 2 upd/s + 1 inq/s per node, 30s, 3 seeds)",
        ["system", "nodes", "upd goodput/node (95% CI)", "upd p95 latency",
         "read p95 latency", "abort %", "max remote wait"],
        precision=3,
    )
    goodput = {}
    for protocol in ("3v", "nocoord", "manual", "2pc"):
        for nodes in NODE_COUNTS:
            per_seed = []
            aborted = total = 0
            update_p95 = read_p95 = remote = 0.0
            for seed in SEEDS:
                result = run(protocol, nodes, seed)
                history = result.history
                per_seed.append(
                    throughput(history, DURATION, kind="update") / nodes
                )
                aborted += len(history.aborted_txns())
                total += len(history.txns)
                update_p95 = max(
                    update_p95, latency_summary(history, kind="update").p95
                )
                read_p95 = max(
                    read_p95,
                    latency_summary(history, kind="read", which="global").p95,
                )
                remote = max(remote, max_remote_wait(history))
            ci = mean_ci(per_seed)
            goodput[(protocol, nodes)] = ci.mean
            table.add(
                protocol,
                nodes,
                str(ci),
                update_p95,
                read_p95,
                100.0 * aborted / total if total else 0.0,
                remote,
            )
    save_table("c1_scaling", table)

    # Shape assertions: 3V per-node goodput flat (within 15% of offered);
    # 2PC visibly below 3V at every size and degrading relative to it.
    for nodes in NODE_COUNTS:
        assert goodput[("3v", nodes)] > 2.0 * 0.85
        assert goodput[("2pc", nodes)] < goodput[("3v", nodes)]
    assert (
        goodput[("2pc", 32)] / goodput[("3v", 32)]
        < goodput[("2pc", 2)] / goodput[("3v", 2)] + 0.25
    )
