"""C1 — throughput and latency scaling with cluster size.

The paper's core scalability claim: because no user transaction ever
waits for coordination, 3V's per-node throughput and latency are flat as
nodes are added, tracking the no-coordination lower bound; global 2PL+2PC
degrades with node count (lock hold times include network round trips)
and sheds load through wait-die aborts.

Offered load scales with the cluster (2 updates/s and 1 inquiry/s per
node), so a scalable system shows constant *per-node* goodput.

The 60 runs (4 systems x 5 sizes x 3 seeds) are independent, so they go
through the shared fleet helper: ``REPRO_BENCH_JOBS=4`` collects them on
4 cores, and the result cache makes re-runs free.
"""

from conftest import run_fleet, save_table

from repro.analysis import Table, mean_ci
from repro.exp import ExperimentSpec, run_spec

SYSTEMS = ("3v", "nocoord", "manual", "2pc")
NODE_COUNTS = (2, 4, 8, 16, 32)
DURATION = 30.0
SEEDS = (13, 14, 15)


def spec(protocol: str, nodes: int, seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        protocol,
        nodes=nodes,
        duration=DURATION,
        update_rate=2.0 * nodes,
        inquiry_rate=1.0 * nodes,
        audit_rate=0.1,
        entities=25 * nodes,
        span=2,
        seed=seed,
        amount_mode="money",
        detail=False,
    )


def test_c1_scaling(benchmark):
    benchmark.pedantic(lambda: run_spec(spec("3v", 4, 13)),
                       rounds=2, iterations=1)
    table = Table(
        "C1: Scaling with cluster size "
        "(offered: 2 upd/s + 1 inq/s per node, 30s, 3 seeds)",
        ["system", "nodes", "upd goodput/node (95% CI)", "upd p95 latency",
         "read p95 latency", "abort %", "max remote wait"],
        precision=3,
    )
    combos = [(protocol, nodes)
              for protocol in SYSTEMS for nodes in NODE_COUNTS]
    summaries = run_fleet(
        [spec(protocol, nodes, seed)
         for protocol, nodes in combos for seed in SEEDS]
    )
    goodput = {}
    offset = 0
    for protocol, nodes in combos:
        chunk = summaries[offset:offset + len(SEEDS)]
        offset += len(SEEDS)
        per_seed = [s.update_throughput / nodes for s in chunk]
        aborted = sum(s.aborted for s in chunk)
        total = sum(s.txn_count for s in chunk)
        ci = mean_ci(per_seed)
        goodput[(protocol, nodes)] = ci.mean
        table.add(
            protocol,
            nodes,
            str(ci),
            max(s.update_p95 for s in chunk),
            max(s.read_p95 for s in chunk),
            100.0 * aborted / total if total else 0.0,
            max(s.max_remote_wait for s in chunk),
        )
    save_table("c1_scaling", table)

    # Shape assertions: 3V per-node goodput flat (within 15% of offered);
    # 2PC visibly below 3V at every size and degrading relative to it.
    for nodes in NODE_COUNTS:
        assert goodput[("3v", nodes)] > 2.0 * 0.85
        assert goodput[("2pc", nodes)] < goodput[("3v", nodes)]
    assert (
        goodput[("2pc", 32)] / goodput[("3v", 32)]
        < goodput[("2pc", 2)] / goodput[("3v", 2)] + 0.25
    )
