"""Micro-benchmarks of the substrate itself.

Not a paper artefact — these keep the simulator honest as a measurement
instrument: they report how many simulated events, store writes, and
whole transactions per wall-second the substrate sustains, so regressions
in the kernel show up before they distort experiment runtimes.
"""

from repro.sim import Simulator
from repro.storage import Increment, MVStore, SlotStore
from repro.storage.counters import CounterTable
from repro.workloads import run_recording_experiment


def drain_kernel(events: int = 20_000) -> float:
    sim = Simulator()

    def ticker():
        for _ in range(events):
            yield sim.timeout(0.001)

    sim.process(ticker())
    sim.run()
    return sim.now


def hammer_store(store_class, writes: int = 20_000):
    store = store_class()
    store.load("k", 0)
    store.ensure_version("k", 1)
    op = Increment(1)
    for _ in range(writes):
        store.apply_geq("k", 1, op)
    return store.get_exact("k", 1)


def hammer_counters(incs: int = 20_000) -> int:
    """The 3V bookkeeping inner loop: every subtransaction bumps a request
    counter at its sender and a completion counter at its executor."""
    table = CounterTable("p")
    table.ensure_version(1)
    inc_request, inc_completion = table.inc_request, table.inc_completion
    for _ in range(incs):
        inc_request(1, "q")
        inc_completion(1, "q")
    return table.request_count(1, "q")


def small_experiment():
    return run_recording_experiment(
        "3v", nodes=4, duration=20.0, update_rate=10.0, inquiry_rate=5.0,
        audit_rate=0.1, entities=40, span=2, seed=3, detail=False,
    )


def test_kernel_event_throughput(benchmark):
    result = benchmark(drain_kernel)
    assert result > 0


def test_mvstore_write_throughput(benchmark):
    assert benchmark(hammer_store, MVStore) == 20_000


def test_slotstore_write_throughput(benchmark):
    assert benchmark(hammer_store, SlotStore) == 20_000


def test_counter_increment_throughput(benchmark):
    assert benchmark(hammer_counters) == 20_000


def test_end_to_end_simulation_throughput(benchmark):
    result = benchmark.pedantic(small_experiment, rounds=3, iterations=1)
    assert result.history.count("update") > 150
