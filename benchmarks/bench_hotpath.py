"""Hot-path benchmark suite — the tracked performance baseline.

Not a paper artefact: this suite measures the *substrate* — the simulation
kernel, the 3V data-path storage structures, and the end-to-end simulated
protocol — so performance regressions show up as numbers, not as mysteriously
slow experiment runs.  ``tools/bench.py`` drives it and maintains the
committed trajectory file ``BENCH_hotpath.json`` at the repository root;
``docs/PERFORMANCE.md`` documents the schema and workflow.

Workloads (full-mode parameters; ``smoke`` shrinks them to fit the tier-1
test budget):

* ``kernel_callback`` — 200k chained callbacks, 75% zero-delay (the FIFO
  fast path), 25% timer-driven (the heap path).
* ``kernel_process`` — 50k items through a producer/consumer pair of
  generator processes over a :class:`~repro.sim.resources.Store`.
* ``e2e_3v`` — the full 3V protocol: 8 nodes, 120 simulated seconds of the
  recording workload, seed 13.  Also the determinism canary: its event and
  transaction counts and analysis digest must be bit-for-bit stable.
* ``advancement`` — e2e run dominated by version-advancement waves
  (period 2.0, poll 0.25): measures the two-wave quiescence machinery.
* ``counter`` / ``mvstore`` / ``quiescent`` — microbenchmarks of the three
  3V data-path structures.  ``quiescent_checks_per_sec`` measures the
  aggregate-total path the two-wave detector actually polls (one scalar
  per node per wave); ``quiescent_scan_checks_per_sec`` keeps the full
  O(nodes²) differential-oracle scan on the books.
* The node-count scaling sweep (``bench_scaling_nodes``) and the
  transaction-volume sweep (``bench_volume``) ride along: their
  ``scaling_*`` / ``volume_*`` metrics and per-cell determinism counts
  merge into this suite's output so ``tools/bench.py --check`` gates
  them — including the streaming-mode memory-flatness ratio and the
  streaming-vs-materialized equivalence assert.
* ``*_vs_reference`` — the same kernel workloads on
  :class:`~repro.sim.reference.ReferenceSimulator` (the seed pure-heap
  scheduler), giving a live optimized-vs-seed kernel speedup.

Every metric is a rate (higher is better).  Run directly for a quick look::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--smoke]
"""

from __future__ import annotations

import time
import typing

from repro.analysis.metrics import latency_summary, throughput
from repro.sim import ReferenceSimulator, Simulator
from repro.sim.resources import Store
from repro.storage.counters import CounterTable, aggregate_quiescent, quiescent
from repro.storage.mvstore import MVStore
from repro.workloads import run_recording_experiment

#: Workload sizing.  ``full`` is the tracked baseline; ``smoke`` must stay
#: inside the tier-1 test budget (a couple of seconds total).
CONFIGS: typing.Dict[str, dict] = {
    "full": {
        "kernel_events": 200_000,
        "process_items": 50_000,
        "counter_incs": 200_000,
        "mvstore_rounds": 100_000,
        "quiescent_checks": 2_000,
        "aggregate_checks": 200_000,
        "quiescent_nodes": 32,
        "e2e": dict(nodes=8, duration=120.0, update_rate=16.0,
                    inquiry_rate=8.0, audit_rate=0.2, entities=200, span=2,
                    seed=13, detail=False),
        "advancement": dict(nodes=8, duration=60.0, update_rate=8.0,
                            inquiry_rate=4.0, audit_rate=0.1, entities=100,
                            span=2, seed=29, detail=False,
                            advancement_period=2.0, poll_interval=0.25),
        "repeat": 3,
    },
    "smoke": {
        "kernel_events": 20_000,
        "process_items": 5_000,
        "counter_incs": 20_000,
        "mvstore_rounds": 10_000,
        "quiescent_checks": 100,
        "aggregate_checks": 10_000,
        "quiescent_nodes": 16,
        "e2e": dict(nodes=4, duration=20.0, update_rate=8.0,
                    inquiry_rate=4.0, audit_rate=0.2, entities=60, span=2,
                    seed=13, detail=False),
        "advancement": dict(nodes=4, duration=15.0, update_rate=4.0,
                            inquiry_rate=2.0, audit_rate=0.1, entities=40,
                            span=2, seed=29, detail=False,
                            advancement_period=2.0, poll_interval=0.25),
        # best-of-3 even in smoke mode: the storms are milliseconds each,
        # and single-shot timings swing enough to flap the --check gate.
        "repeat": 3,
    },
}


def _best_of(fn: typing.Callable[[], typing.Any], repeat: int
             ) -> typing.Tuple[float, typing.Any]:
    """(best wall-seconds, last result) over ``repeat`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best, result


# ----------------------------------------------------------------------
# Kernel workloads (parameterized by simulator class so the reference
# pure-heap scheduler runs the identical program)
# ----------------------------------------------------------------------

def kernel_callback_storm(n: int, sim_class=Simulator) -> int:
    """Chained callbacks, 3-in-4 zero-delay; returns events scheduled."""
    sim = sim_class()
    state = [0]

    def tick():
        state[0] += 1
        if state[0] < n:
            if state[0] % 4:
                sim.schedule(0.0, tick)
            else:
                sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return sim.scheduled_count


def kernel_process_storm(n: int, sim_class=Simulator) -> int:
    """Producer/consumer generator processes over a Store."""
    sim = sim_class()
    store = Store(sim)

    def producer():
        for i in range(n):
            store.put(i)
            if i % 4:
                yield sim.timeout(0.0)
            else:
                yield sim.timeout(0.001)

    def consumer():
        while True:
            item = yield store.get()
            if item == n - 1:
                return

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    return sim.scheduled_count


# ----------------------------------------------------------------------
# End-to-end protocol workloads
# ----------------------------------------------------------------------

def run_e2e(config: dict):
    return run_recording_experiment("3v", **config)


def timed_e2e(config: dict) -> dict:
    """Run + self-time the e2e workload; picklable, spawn-safe.

    Timing happens *inside* the worker so the measurement excludes
    process startup; results carry only flat numbers across the process
    boundary.
    """
    t0 = time.perf_counter()
    result = run_e2e(config)
    wall = time.perf_counter() - t0
    return {"wall": wall, "digest": e2e_digest(result)}


def timed_advancement(config: dict) -> dict:
    """Run + self-time the advancement-heavy workload (spawn-safe)."""
    t0 = time.perf_counter()
    result = run_e2e(config)
    wall = time.perf_counter() - t0
    return {
        "wall": wall,
        "events": result.system.sim.scheduled_count,
        "advancement_runs": result.system.coordinator.completed_runs,
        "counter_polls": sum(
            a.counter_polls for a in result.history.advancements
        ),
    }


def e2e_digest(result) -> typing.Dict[str, typing.Any]:
    """Determinism digest of an e2e run — must be bit-for-bit stable for a
    given config across processes, machines, and optimizations."""
    return {
        "events": result.system.sim.scheduled_count,
        "txns": len(result.history.txns),
        "update_throughput": throughput(result.history, result.duration,
                                        kind="update"),
        "update_p95": latency_summary(result.history, kind="update").p95,
    }


# ----------------------------------------------------------------------
# Storage microbenchmarks
# ----------------------------------------------------------------------

def counter_storm(n: int) -> int:
    table = CounterTable("p")
    table.ensure_version(1)
    inc_r, inc_c = table.inc_request, table.inc_completion
    for _ in range(n):
        inc_r(1, "q")
        inc_c(1, "q")
    return table.request_count(1, "q")


def mvstore_storm(n: int) -> int:
    store = MVStore()
    for k in range(100):
        store.load(k, 0)
    for i in range(n):
        k = i % 100
        store.read_max_leq(k, 5)
        store.exists_above(k, 5)
        store.ensure_version(k, 1)
    return n


def quiescent_storm(n: int, nodes: int) -> bool:
    """The O(nodes²) differential-oracle scan (kept for comparison)."""
    ids = [f"n{i:02d}" for i in range(nodes)]
    reqs = {p: {q: 7 for q in ids} for p in ids}
    comps = {q: {p: 7 for p in ids} for q in ids}
    ok = True
    for _ in range(n):
        ok = quiescent(reqs, comps) and ok
    return ok


def aggregate_quiescent_storm(n: int, nodes: int) -> bool:
    """The aggregate-total check the two-wave detector actually runs.

    One scalar per node per wave — the shape ``gather_counters`` returns
    for the ``RT``/``CT`` waves — so each check is two dict-sums instead
    of a nodes² cell scan.
    """
    ids = [f"n{i:02d}" for i in range(nodes)]
    req_totals = {p: 7 * nodes for p in ids}
    comp_totals = {q: 7 * nodes for q in ids}
    ok = True
    for _ in range(n):
        ok = aggregate_quiescent(req_totals, comp_totals) and ok
    return ok


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------

def run_suite(mode: str = "full", jobs: int = 1
              ) -> typing.Dict[str, typing.Any]:
    """Run every workload; returns ``{"metrics": ..., "determinism": ...}``.

    All metrics are rates (per wall-second, higher is better) except the
    ``*_speedup_vs_reference`` ratios (dimensionless, higher is better).

    With ``jobs > 1`` the two independent end-to-end workloads (``e2e_3v``
    and ``advancement``) are collected concurrently in spawned worker
    processes, each self-timed; the kernel and storage microbenchmarks
    always run serially in this process because their best-of-N wall-clock
    timings are only meaningful on an otherwise idle interpreter.  The
    determinism digest is identical either way; rates measured under
    ``jobs > 1`` assume a free core per worker.
    """
    cfg = CONFIGS[mode]
    repeat = cfg["repeat"]
    metrics: typing.Dict[str, float] = {}

    wall, events = _best_of(
        lambda: kernel_callback_storm(cfg["kernel_events"]), repeat)
    metrics["kernel_callback_events_per_sec"] = events / wall
    ref_wall, ref_events = _best_of(
        lambda: kernel_callback_storm(cfg["kernel_events"],
                                      sim_class=ReferenceSimulator), repeat)
    assert events == ref_events, "kernels disagreed on event count"
    metrics["kernel_callback_speedup_vs_reference"] = ref_wall / wall

    wall, events = _best_of(
        lambda: kernel_process_storm(cfg["process_items"]), repeat)
    metrics["kernel_process_events_per_sec"] = events / wall
    ref_wall, ref_events = _best_of(
        lambda: kernel_process_storm(cfg["process_items"],
                                     sim_class=ReferenceSimulator), repeat)
    assert events == ref_events, "kernels disagreed on event count"
    metrics["kernel_process_speedup_vs_reference"] = ref_wall / wall

    if jobs > 1:
        import concurrent.futures
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, 2), mp_context=context
        ) as pool:
            e2e_future = pool.submit(timed_e2e, cfg["e2e"])
            adv_future = pool.submit(timed_advancement, cfg["advancement"])
            e2e = e2e_future.result()
            advancement = adv_future.result()
    else:
        e2e = timed_e2e(cfg["e2e"])
        advancement = timed_advancement(cfg["advancement"])

    digest = e2e["digest"]
    metrics["e2e_3v_events_per_sec"] = digest["events"] / e2e["wall"]
    metrics["e2e_3v_txns_per_sec"] = digest["txns"] / e2e["wall"]

    digest["advancement_runs"] = advancement["advancement_runs"]
    digest["advancement_counter_polls"] = advancement["counter_polls"]
    metrics["advancement_events_per_sec"] = (
        advancement["events"] / advancement["wall"])

    wall, count = _best_of(lambda: counter_storm(cfg["counter_incs"]), repeat)
    assert count == cfg["counter_incs"]
    metrics["counter_incs_per_sec"] = 2 * count / wall

    wall, rounds = _best_of(
        lambda: mvstore_storm(cfg["mvstore_rounds"]), repeat)
    metrics["mvstore_ops_per_sec"] = 3 * rounds / wall

    wall, ok = _best_of(
        lambda: aggregate_quiescent_storm(cfg["aggregate_checks"],
                                          cfg["quiescent_nodes"]), repeat)
    assert ok, "aggregate_quiescent() returned False on balanced totals"
    metrics["quiescent_checks_per_sec"] = cfg["aggregate_checks"] / wall

    wall, ok = _best_of(
        lambda: quiescent_storm(cfg["quiescent_checks"],
                                cfg["quiescent_nodes"]), repeat)
    assert ok, "quiescent() returned False on a balanced counter set"
    metrics["quiescent_scan_checks_per_sec"] = cfg["quiescent_checks"] / wall

    scaling = _sibling_suite("bench_scaling_nodes").run_scaling(mode)
    metrics.update(scaling["metrics"])
    digest.update(scaling["determinism"])

    volume = _sibling_suite("bench_volume").run_volume(mode, jobs=jobs)
    metrics.update(volume["metrics"])
    digest.update(volume["determinism"])

    replication = _sibling_suite("bench_replication").run_replication(mode)
    metrics.update(replication["metrics"])
    digest.update(replication["determinism"])

    return {"mode": mode, "metrics": metrics, "determinism": digest}


def _sibling_suite(name: str):
    """Import a ride-along benchmark module (lazy: only via the suite)."""
    import importlib

    try:
        return importlib.import_module(name)
    except ImportError:
        import pathlib
        import sys

        sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
        return importlib.import_module(name)


def assert_deterministic(mode: str = "smoke") -> typing.Dict[str, typing.Any]:
    """Run the e2e workload twice; raise if the digests differ."""
    cfg = CONFIGS[mode]["e2e"]
    first = e2e_digest(run_e2e(cfg))
    second = e2e_digest(run_e2e(cfg))
    if first != second:
        raise AssertionError(
            f"non-deterministic e2e run: {first} != {second}"
        )
    return first


if __name__ == "__main__":
    import json
    import sys

    chosen = "smoke" if "--smoke" in sys.argv else "full"
    print(json.dumps(run_suite(chosen), indent=2))
