"""Replication benchmark — the cost of the ``replication_factor`` axis.

Runs the identical fault-free 3V recording workload at rf ∈ {1, 2, 3}
and reports, per cell:

* ``repl_rf{K}_txns_per_sec`` — end-to-end simulation throughput (wall
  clock), tracking the real cost of fanning every write out to K
  replicas;
* ``repl_rf{K}_msg_overhead`` — messages sent relative to the rf=1 cell
  (deterministic ratio: same workload, same seed, only the placement
  differs — this *is* the write-all fan-out amplification);
* ``repl_events_rf{K}`` / ``repl_txns_rf{K}`` / ``repl_messages_rf{K}``
  — determinism counts, bit-stable like every other digest.

The rf=1 cell doubles as a **bit-identity pin**: before contributing any
numbers the suite replays the same spec through
``run_recording_experiment`` *without mentioning replication at all* and
asserts both summaries share one determinism digest — turning the axis
on at its default must perturb nothing.  The digest is exported as
``repl_rf1_digest`` so ``tools/bench.py --check`` also fails if either
path drifts from the committed baseline.

Feeds ``BENCH_hotpath.json`` via :func:`bench_hotpath.run_suite`; run
directly for the replication table::

    PYTHONPATH=src python benchmarks/bench_replication.py [--smoke]
"""

from __future__ import annotations

import typing

from repro.exp import ExperimentSpec
from repro.exp.summary import run_spec
from repro.workloads import run_recording_experiment

FACTORS = (1, 2, 3)

#: Cell sizing per mode.  Fault-free (the chaos harness owns the storm
#: regime; this axis tracks the steady-state replication tax) and
#: ``detail=False`` so the measured work is protocol machinery, not
#: event recording.
CONFIGS: typing.Dict[str, dict] = {
    "full": {
        "nodes": 6,
        "duration": 30.0,
        "rates": dict(update_rate=20.0, inquiry_rate=12.0, audit_rate=1.0),
    },
    "smoke": {
        "nodes": 4,
        "duration": 10.0,
        "rates": dict(update_rate=10.0, inquiry_rate=6.0, audit_rate=0.5),
    },
}


def replication_spec(mode: str, rf: int) -> ExperimentSpec:
    cfg = CONFIGS[mode]
    return ExperimentSpec(
        "3v", nodes=cfg["nodes"], duration=cfg["duration"], **cfg["rates"],
        entities=60, span=2, seed=23, detail=False,
        replication_factor=rf,
    )


def check_rf1_bit_identity(mode: str) -> str:
    """Assert rf=1 ≡ never-mentioned-replication; return the digest."""
    spec = replication_spec(mode, 1)
    explicit = run_spec(spec)
    kwargs = spec.run_kwargs()
    kwargs.pop("replication_factor")
    kwargs.pop("refresh_delay")
    bare = run_recording_experiment(spec.protocol, **kwargs)
    if bare.system.sim.scheduled_count != explicit.sim_events:
        raise AssertionError(
            "replication_factor=1 perturbed the event trace: "
            f"{explicit.sim_events} events vs the unreplicated path's "
            f"{bare.system.sim.scheduled_count}"
        )
    if bare.system.network.stats.total_sent != explicit.messages_total:
        raise AssertionError(
            "replication_factor=1 perturbed message traffic: "
            f"{explicit.messages_total} vs "
            f"{bare.system.network.stats.total_sent}"
        )
    return explicit.determinism_digest()


def run_replication(mode: str = "full") -> typing.Dict[str, typing.Any]:
    """Run the axis; returns ``{"metrics", "determinism", "rows"}``."""
    determinism: typing.Dict[str, typing.Any] = {
        "repl_rf1_digest": check_rf1_bit_identity(mode)
    }
    metrics: typing.Dict[str, float] = {}
    rows = []
    baseline_messages = None
    for rf in FACTORS:
        summary = run_spec(replication_spec(mode, rf))
        if baseline_messages is None:
            baseline_messages = summary.messages_total
        overhead = summary.messages_total / baseline_messages
        metrics[f"repl_rf{rf}_txns_per_sec"] = (
            summary.txn_count / summary.wall_seconds)
        metrics[f"repl_rf{rf}_msg_overhead"] = overhead
        determinism[f"repl_events_rf{rf}"] = summary.sim_events
        determinism[f"repl_txns_rf{rf}"] = summary.txn_count
        determinism[f"repl_messages_rf{rf}"] = summary.messages_total
        rows.append({
            "rf": rf,
            "txns": summary.txn_count,
            "events": summary.sim_events,
            "messages": summary.messages_total,
            "msg_overhead": overhead,
            "wall": summary.wall_seconds,
        })
    return {"mode": mode, "metrics": metrics, "determinism": determinism,
            "rows": rows}


def render_table(result: typing.Dict[str, typing.Any]) -> str:
    header = (f"{'rf':>3}  {'txns':>7}  {'events':>9}  {'messages':>9}  "
              f"{'msg x':>6}  {'wall s':>7}")
    lines = [header, "-" * len(header)]
    for row in result["rows"]:
        lines.append(
            f"{row['rf']:>3}  {row['txns']:>7,}  {row['events']:>9,}  "
            f"{row['messages']:>9,}  {row['msg_overhead']:>6.2f}  "
            f"{row['wall']:>7.2f}"
        )
    lines.append(f"rf=1 bit-identity digest: "
                 f"{result['determinism']['repl_rf1_digest']}")
    return "\n".join(lines)


if __name__ == "__main__":
    import json
    import sys

    chosen = "smoke" if "--smoke" in sys.argv else "full"
    outcome = run_replication(chosen)
    print(render_table(outcome))
    print(json.dumps({"metrics": outcome["metrics"],
                      "determinism": outcome["determinism"]}, indent=2))
