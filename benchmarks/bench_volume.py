"""Transaction-volume benchmark — the bounded-memory streaming axis.

Where ``bench_scaling_nodes`` grows the cluster, this suite grows the
*run*: the same 3V workload at 10x apart transaction volumes (full mode:
100k and 1M transactions on 64 nodes; smoke shrinks both), driven end to
end through streaming mode — lazy arrival generators, a
:class:`~repro.txn.history.StreamingHistory` folding every retired
transaction into online aggregates, and no materialized per-transaction
state anywhere in the stack.

The point of the axis is the *memory* claim: peak heap must be flat in
transaction count.  Three kinds of output feed ``BENCH_hotpath.json``
via :func:`bench_hotpath.run_suite`:

* ``volume_memory_flatness`` — peak tracemalloc bytes of the small cell
  over the large one.  Flat memory puts the ratio near 1.0; any O(txns)
  state reappearing anywhere in the stack drags it toward
  ``small/large`` (0.1), far past the gate tolerance.  A hard assert
  additionally caps the large cell at ``MEMORY_FLATNESS_LIMIT`` (1.5x)
  of the small one — the tentpole acceptance bar — so a blown ratio
  fails the suite outright, not just the ``--check`` comparison.
* ``volume_stream_txns_per_sec`` — fresh, untraced wall-clock throughput
  of the small cell (the memory cells run under ``tracemalloc``, which
  roughly doubles wall-clock, so they are never used for rate metrics).
* ``volume_events_*`` / ``volume_txns_*`` — per-cell determinism counts,
  bit-stable like every other digest.

Every run also replays a small *detailed* cell twice — once with
streaming aggregates, once with the same lazy trace materialized — and
asserts the two summaries identical field for field (wall-clock and
memory aside).  That differential is the proof that streaming changes
where numbers are folded, never what they are.

Run directly for the volume table::

    PYTHONPATH=src python benchmarks/bench_volume.py [--smoke]
"""

from __future__ import annotations

import dataclasses
import typing

from repro.exp import ExperimentSpec, audit_result
from repro.exp.summary import ExperimentSummary, run_spec, summarize
from repro.workloads import run_recording_experiment

#: Hard ceiling on peak heap growth across a 10x (full mode) volume jump.
MEMORY_FLATNESS_LIMIT = 1.5

#: Cell sizing per mode.  Arrival rates are identical within a mode, so
#: the small and large cells differ *only* in duration — the cleanest
#: possible apples-to-apples for the memory comparison.  Full mode's
#: rates x durations give ~100k and ~1M submitted transactions.
CONFIGS: typing.Dict[str, dict] = {
    "full": {
        "nodes": 64,
        "rates": dict(update_rate=120.0, inquiry_rate=70.0, audit_rate=10.0),
        "durations": {"small": 500.0, "large": 5000.0},
    },
    "smoke": {
        "nodes": 16,
        "rates": dict(update_rate=60.0, inquiry_rate=35.0, audit_rate=5.0),
        "durations": {"small": 30.0, "large": 120.0},
    },
}


def volume_spec(mode: str, cell: str) -> ExperimentSpec:
    """One streaming volume cell.

    Money amounts (a bitmask would accrete million-bit integers on hot
    keys), no observation records (storage stays O(entities)), no
    latency jitter, delivery batching on, and a slow advancement period:
    the run is dominated by exactly the per-transaction machinery whose
    memory behaviour this axis tracks.  ``zipf=1.1`` skews entity choice
    so hot-key version chains see real pressure.
    """
    cfg = CONFIGS[mode]
    return ExperimentSpec(
        "3v", nodes=cfg["nodes"], duration=cfg["durations"][cell],
        **cfg["rates"], entities=200, span=2, seed=17,
        advancement_period=20.0, poll_interval=1.0,
        detail=False, batch_delivery=1, latency_jitter=0.0,
        stream=1, zipf=1.1, with_observations=0, amount_mode="money",
    )


def differential_spec(mode: str) -> ExperimentSpec:
    """The small *detailed* cell for the streaming-equivalence check."""
    return ExperimentSpec(
        "3v", nodes=8, duration=20.0 if mode == "full" else 10.0,
        update_rate=10.0, inquiry_rate=6.0, audit_rate=0.5,
        correction_rate=0.3, entities=40, span=2, seed=11,
        detail=True, stream=1, zipf=0.8, abort_fraction=0.1,
    )


def check_streaming_equivalence(mode: str) -> ExperimentSummary:
    """Assert streaming aggregates == materializing the same lazy trace.

    Runs the differential cell twice — identically except that the
    second run records into a materialized ``History`` and summarizes it
    post hoc — and requires the two summaries bit-identical on every
    field except the machine-dependent ones.
    """
    spec = differential_spec(mode)
    kwargs = spec.run_kwargs()
    streamed = run_recording_experiment(spec.protocol, **kwargs)
    materialized = run_recording_experiment(
        spec.protocol, **kwargs, stream_aggregates=False)
    summary_s = summarize(spec, streamed,
                          audit_result(streamed, check_snapshots=True))
    summary_m = summarize(spec, materialized,
                          audit_result(materialized, check_snapshots=True))
    for field in dataclasses.fields(ExperimentSummary):
        if field.name in ("wall_seconds", "peak_tracemalloc_bytes"):
            continue
        have = getattr(summary_s, field.name)
        want = getattr(summary_m, field.name)
        if have != want:
            raise AssertionError(
                f"streaming diverged from materialized on {field.name}: "
                f"{have!r} != {want!r}"
            )
    return summary_s


def run_volume(mode: str = "full", jobs: int = 1
               ) -> typing.Dict[str, typing.Any]:
    """Run the axis; returns ``{"metrics", "determinism", "rows"}``.

    The two memory cells always run fresh (a cached peak would be the
    peak of whenever it was recorded); with ``jobs > 1`` they run
    concurrently in spawned workers, each tracing its own interpreter.
    """
    specs = {cell: volume_spec(mode, cell) for cell in ("small", "large")}

    if jobs > 1:
        import concurrent.futures
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=2, mp_context=context
        ) as pool:
            futures = {cell: pool.submit(run_spec, spec, True)
                       for cell, spec in specs.items()}
            cells = {cell: future.result()
                     for cell, future in futures.items()}
    else:
        cells = {cell: run_spec(spec, measure_memory=True)
                 for cell, spec in specs.items()}

    small, large = cells["small"], cells["large"]
    if large.txn_count <= small.txn_count:
        raise AssertionError(
            f"volume cells are mis-sized: large ran {large.txn_count} "
            f"txns vs small's {small.txn_count}"
        )
    if large.peak_tracemalloc_bytes > (
        MEMORY_FLATNESS_LIMIT * small.peak_tracemalloc_bytes
    ):
        raise AssertionError(
            f"streaming memory is not flat: {large.txn_count} txns peaked "
            f"at {large.peak_tracemalloc_bytes / 1e6:.2f}MB, more than "
            f"{MEMORY_FLATNESS_LIMIT}x the {small.txn_count}-txn cell's "
            f"{small.peak_tracemalloc_bytes / 1e6:.2f}MB"
        )

    # Throughput is measured untraced on the small cell: tracemalloc's
    # overhead would halve the rate and, worse, make it drift with
    # allocation mix rather than simulation speed.
    timed = run_spec(specs["small"])

    metrics = {
        "volume_stream_txns_per_sec": timed.txn_count / timed.wall_seconds,
        "volume_memory_flatness": (
            small.peak_tracemalloc_bytes / large.peak_tracemalloc_bytes),
    }
    determinism: typing.Dict[str, typing.Any] = {}
    rows = []
    for cell, summary in (("small", small), ("large", large)):
        determinism[f"volume_events_{cell}"] = summary.sim_events
        determinism[f"volume_txns_{cell}"] = summary.txn_count
        rows.append({
            "cell": cell,
            "nodes": summary.nodes,
            "txns": summary.txn_count,
            "events": summary.sim_events,
            "peak_mb": summary.peak_tracemalloc_bytes / 1e6,
            "traced_wall": summary.wall_seconds,
        })

    differential = check_streaming_equivalence(mode)
    determinism["volume_differential_txns"] = differential.txn_count

    return {"mode": mode, "metrics": metrics, "determinism": determinism,
            "rows": rows}


def render_table(result: typing.Dict[str, typing.Any]) -> str:
    header = (f"{'cell':>6}  {'nodes':>5}  {'txns':>9}  {'events':>10}  "
              f"{'peak MB':>8}  {'traced s':>8}")
    lines = [header, "-" * len(header)]
    for row in result["rows"]:
        lines.append(
            f"{row['cell']:>6}  {row['nodes']:>5}  {row['txns']:>9,}  "
            f"{row['events']:>10,}  {row['peak_mb']:>8.2f}  "
            f"{row['traced_wall']:>8.1f}"
        )
    flatness = result["metrics"]["volume_memory_flatness"]
    lines.append(f"memory flatness (small/large peak): {flatness:.3f}")
    return "\n".join(lines)


if __name__ == "__main__":
    import json
    import sys

    chosen = "smoke" if "--smoke" in sys.argv else "full"
    outcome = run_volume(chosen)
    print(render_table(outcome))
    print(json.dumps({"metrics": outcome["metrics"],
                      "determinism": outcome["determinism"]}, indent=2))
