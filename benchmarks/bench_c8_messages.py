"""C8 — message overhead accounting.

"The absence of global synchronization does not mean that there is no
communication between nodes ... However, messages exchanged in our
algorithm are sent asynchronously with respect to the execution of user
transactions."  This benchmark counts every message by category on the
same workload:

* user traffic — subtransaction requests, completion notices,
  compensation;
* control traffic — version advancement (phases, counter reads, GC);
* commit traffic — lock releases, prepare/vote/decision rounds.

The paper's shape: 3V's control traffic amortizes over all transactions
between advancements (and is off the user path entirely), while 2PC pays
its commit round per transaction, synchronously.
"""

from conftest import save_table

from repro.analysis import Table
from repro.workloads import run_recording_experiment

SETTINGS = dict(
    nodes=8, duration=60.0, update_rate=10.0, inquiry_rate=5.0,
    audit_rate=0.2, entities=100, span=2, seed=81, amount_mode="money",
    advancement_period=10.0, detail=False,
)


def run(protocol: str):
    return run_recording_experiment(protocol, **SETTINGS)


def test_c8_message_overhead(benchmark):
    benchmark.pedantic(lambda: run("3v"), rounds=2, iterations=1)
    table = Table(
        "C8: Messages by category over an identical 60s workload",
        ["system", "committed txns", "user msgs", "control msgs",
         "commit msgs", "msgs/txn", "sync msgs/txn"],
        precision=2,
    )
    measured = {}
    for protocol in ("3v", "nocoord", "manual", "2pc"):
        result = run(protocol)
        stats = result.network.stats
        committed = len(result.history.committed_txns())
        total = stats.total_sent
        # Messages a transaction *waits on* before the user sees a result:
        # only 2PC's commit rounds qualify; everything else in every
        # protocol here is asynchronous with the user.
        sync = stats.commit_messages if protocol == "2pc" else 0
        measured[protocol] = (
            committed, stats.user_messages, stats.control_messages,
            stats.commit_messages,
        )
        table.add(
            protocol, committed, stats.user_messages,
            stats.control_messages, stats.commit_messages,
            total / committed if committed else 0.0,
            sync / committed if committed else 0.0,
        )
    save_table("c8_messages", table)

    # 3V's extra traffic relative to no-coordination is control-only.
    assert measured["3v"][1] == measured["nocoord"][1]
    assert measured["3v"][3] == 0  # no commit traffic at all
    assert measured["nocoord"][2] == 0
    # 2PC pays multiple commit messages per committed transaction.
    committed_2pc = measured["2pc"][0]
    assert measured["2pc"][3] > 2 * committed_2pc * 0.3
    # 3V's control traffic amortizes: far fewer control messages than
    # user messages.
    assert measured["3v"][2] < measured["3v"][1] * 0.5
