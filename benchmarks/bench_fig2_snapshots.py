"""F2 — regenerate Figure 2 (version-state snapshots of the example).

Captures the store contents of all three sites at the paper's four
moments — start, after time 12, after time 20, eventually — and checks
each panel against the protocol-derived ground truth.
"""

from conftest import save_text

from repro.workloads.paper_example import (
    DELTAS,
    INITIAL,
    expected_final_state,
    run_example,
)

PANELS = [
    ("start state", 0.5),
    ("after time 12", 12.0),
    ("after time 20", 20.0),
]


def render(run) -> str:
    lines = ["F2: Example scenario version states (paper Figure 2)",
             "=" * 52]
    panels = dict(run.snapshots)
    final = {}
    for node in run.system.nodes.values():
        final.update(node.store.snapshot())
    panels["eventually"] = final
    for name in [title for title, _t in PANELS] + ["eventually"]:
        lines.append(f"--- {name} ---")
        snapshot = panels[name]
        for key in sorted(snapshot):
            chain = snapshot[key]
            lines.append(
                "  " + key + ": "
                + "  ".join(f"v{v}={chain[v]}" for v in sorted(chain))
            )
    return "\n".join(lines)


def test_fig2_snapshots(benchmark):
    run = benchmark.pedantic(
        lambda: run_example(snapshot_times=PANELS), rounds=3, iterations=1
    )
    start = run.snapshots["start state"]
    assert all(list(chain) == [0] for chain in start.values())

    # After time 12: j wrote D(2); jp wrote A(2) (p inferred advancement);
    # iq still in flight, so D(1) does not exist yet.
    t12 = run.snapshots["after time 12"]
    assert sorted(t12["A"]) == [0, 1, 2]
    assert sorted(t12["D"]) == [0, 2]
    assert t12["D"][2] == INITIAL["D"] + DELTAS[("j", "D")]

    # After time 20: iq landed (dual write on D), iqp wrote B(1).
    t20 = run.snapshots["after time 20"]
    assert sorted(t20["D"]) == [0, 1, 2]
    assert t20["D"][1] == INITIAL["D"] + DELTAS[("iq", "D")]
    assert t20["D"][2] == (
        INITIAL["D"] + DELTAS[("iq", "D")] + DELTAS[("j", "D")]
    )
    assert t20["B"][1] == INITIAL["B"] + DELTAS[("iqp", "B")]
    assert sorted(t20["E"]) == [0, 1]  # no version-2 copy: no dual write

    final = {}
    for node in run.system.nodes.values():
        final.update(node.store.snapshot())
    assert final == expected_final_state()

    save_text("f2_snapshots", render(run))
