"""C7 — ablation: how quiescence is detected during version advancement.

Three detectors behind the same coordinator interface:

* ``two-wave`` — the paper's sound asynchronous read (completions wave
  strictly before requests wave; Mattern's four-counter argument);
* ``interleaved`` — single combined read; a request issued and completed
  between the waves can mask an older in-flight subtransaction;
* ``active-poll`` — Section 2.2's strawman: "is any transaction running
  on version v right now?", blind to in-transit children.

Run under the paper's literal immediate-completion semantics on a
tail-heavy network, each detector advances versions repeatedly under
load; the bitmask oracle scores the damage, and the deterministic
straggler scenario from the test suite quantifies how early the unsound
detectors fire.
"""

from conftest import save_table

from repro.analysis import Table, audit
from repro.core import NodeConfig
from repro.net import UniformLatency
from repro.sim import LogNormal, RngRegistry
from repro.workloads import RecordingConfig, RecordingWorkload
from repro.workloads.arrivals import drive, poisson_arrivals
from repro.core import PeriodicPolicy, ThreeVSystem

DURATION = 60.0


def run(detector: str, seed: int):
    node_ids = [f"n{index}" for index in range(6)]
    system = ThreeVSystem(
        node_ids,
        seed=seed,
        latency=UniformLatency(LogNormal(mean=1.0, sigma=1.5)),
        poll_interval=0.5,
        detector=detector,
        node_config=NodeConfig(completion="immediate"),
        policy=PeriodicPolicy(8.0),
    )
    config = RecordingConfig(nodes=node_ids, entities=15, span=3,
                             amount_mode="bitmask")
    workload = RecordingWorkload(config, RngRegistry(seed + 1))
    workload.install(system)
    arrivals = RngRegistry(seed + 2)
    drive(system, poisson_arrivals(arrivals, "u", 8.0, DURATION),
          workload.make_recording)
    drive(system, poisson_arrivals(arrivals, "r", 6.0, DURATION),
          workload.make_inquiry)
    system.run(until=DURATION)
    system.stop_policy()
    system.run_until_quiet(limit=1_000_000.0)
    return system, workload


def test_c7_detector_ablation(benchmark):
    benchmark.pedantic(lambda: run("two-wave", 71), rounds=1, iterations=1)
    table = Table(
        "C7: Quiescence detector ablation (immediate completion, "
        "heavy-tailed latency, 3 seeds)",
        ["detector", "advancements", "mean phase-2 polls",
         "snapshot violations", "fractured reads"],
        precision=2,
    )
    totals = {}
    for detector in ("two-wave", "interleaved", "active-poll"):
        advancements = 0
        polls = []
        violations = 0
        fractured = 0
        for seed in (71, 72, 73):
            system, workload = run(detector, seed)
            advancements += system.coordinator.completed_runs
            polls.extend(
                record.counter_polls
                for record in system.history.advancements
                if record.gc_done is not None
            )
            report = audit(system.history, workload, check_snapshots=True)
            violations += report.snapshot_mismatches
            fractured += report.fractured_reads
        totals[detector] = (violations, fractured)
        table.add(
            detector, advancements,
            sum(polls) / len(polls) if polls else 0.0,
            violations, fractured,
        )
    save_table("c7_termination", table)

    # The sound detector never violates Theorem 4.1.
    assert totals["two-wave"] == (0, 0)
    # The naive strawman corrupts reads (the paper's Section 2.2 warning).
    assert sum(totals["active-poll"]) > 0
