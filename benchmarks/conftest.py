"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artefacts (Table 1,
Figures 1-2) or one of its quantitative claims (C1-C7 in DESIGN.md).  The
resulting tables are printed and also written to ``benchmarks/results/``
so they survive pytest's output capture; EXPERIMENTS.md records the
paper-vs-measured comparison for each.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_table(name: str, table) -> None:
    """Print a table and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.render()
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def save_text(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
