"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artefacts (Table 1,
Figures 1-2) or one of its quantitative claims (C1-C7 in DESIGN.md).  The
resulting tables are printed and also written to ``benchmarks/results/``
so they survive pytest's output capture; EXPERIMENTS.md records the
paper-vs-measured comparison for each.
"""

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_jobs() -> int:
    """Worker processes for fleet-driven benchmarks.

    Controlled by ``REPRO_BENCH_JOBS`` (default 1 = serial).  Results are
    bit-identical either way; only wall-clock changes.
    """
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def run_fleet(specs, jobs=None):
    """Run experiment specs through a cached fleet; ordered summaries.

    The shared entry point for benchmarks that collect many independent
    runs (seed replicates, parameter grids): fans out across
    ``REPRO_BENCH_JOBS`` processes and caches summaries under
    ``benchmarks/results/.fleet-cache`` so re-running a benchmark suite
    only pays for what changed.
    """
    from repro.exp import Fleet, ResultCache

    cache = ResultCache(RESULTS_DIR / ".fleet-cache")
    fleet = Fleet(jobs=jobs if jobs is not None else bench_jobs(),
                  cache=cache)
    return fleet.run(specs)


def save_table(name: str, table) -> None:
    """Print a table and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.render()
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def save_text(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
