"""C3 — the staleness/correctness trade-off: 3V vs manual versioning.

Manual versioning has one knob, the safety delay: "the delay ... is
usually set conservatively high.  This introduces additional (and often
unnecessary) staleness".  This benchmark sweeps that delay under light
and heavy network tails and reports, side by side, the staleness paid
and the fractured reads still suffered.

Manual versioning here is exactly *3V minus its two mechanisms* — no
dual-write rule and no counter-based termination detection — so the
fractures it shows are precisely what those mechanisms buy:

* late stragglers: a version-``k`` subtransaction landing after the
  safety delay expires (fixable by a larger delay, at staleness cost);
* early forks: a version-``k+1`` copy created *before* a version-``k``
  subtransaction lands on that node (no delay fixes this — only the
  dual-write rule does).

3V needs no delay at all: its counter scheme waits exactly as long as the
stragglers take, and the dual-write rule repairs the forks.
"""

from conftest import save_table

from repro.analysis import Table, audit, staleness_summary
from repro.net import UniformLatency
from repro.sim import LogNormal
from repro.workloads import run_recording_experiment

PERIOD = 8.0
DELAYS = (1.0, 8.0, 32.0)
SIGMAS = (0.3, 1.2)


def settings(sigma: float):
    return dict(
        nodes=6, duration=120.0, update_rate=8.0, inquiry_rate=8.0,
        audit_rate=0.3, entities=10, span=3, seed=41,
        amount_mode="bitmask",
        latency=UniformLatency(LogNormal(mean=1.0, sigma=sigma)),
    )


def run_3v(sigma: float):
    result = run_recording_experiment(
        "3v", advancement_period=PERIOD, **settings(sigma)
    )
    report = audit(result.history, result.workload, check_snapshots=True)
    return staleness_summary(result.history), report


def run_manual(sigma: float, delay: float):
    result = run_recording_experiment(
        "manual", advancement_period=PERIOD, safety_delay=delay,
        **settings(sigma),
    )
    report = audit(result.history)
    closed = dict(result.system.version_closed_at)
    closed.setdefault(0, 0.0)
    return staleness_summary(result.history, closed_at=closed), report


def test_c3_staleness_vs_correctness(benchmark):
    benchmark.pedantic(lambda: run_3v(0.3), rounds=1, iterations=1)
    table = Table(
        "C3: Staleness paid vs fractures suffered "
        "(period 8s, 120s, bitmask oracle)",
        ["latency tail", "system", "mean staleness", "p95 staleness",
         "fractured", "fractured %"],
        precision=2,
    )
    measured = {}
    for sigma in SIGMAS:
        tail = f"sigma={sigma}"
        staleness, report = run_3v(sigma)
        measured[(sigma, "3v")] = (staleness.mean, report.fractured_reads)
        table.add(tail, "3v (no delay needed)", staleness.mean,
                  staleness.p95, report.fractured_reads,
                  100 * report.fractured_rate)
        for delay in DELAYS:
            staleness, report = run_manual(sigma, delay)
            measured[(sigma, delay)] = (
                staleness.mean, report.fractured_reads,
            )
            table.add(tail, f"manual (delay {delay:g}s)", staleness.mean,
                      staleness.p95, report.fractured_reads,
                      100 * report.fractured_rate)
    save_table("c3_staleness", table)

    for sigma in SIGMAS:
        # 3V: always consistent.
        assert measured[(sigma, "3v")][1] == 0
        # Manual: fractures at every delay (the fork race is
        # delay-independent) ...
        for delay in DELAYS:
            assert measured[(sigma, delay)][1] > 0
        # ... while staleness grows with the delay.
        assert measured[(sigma, 32.0)][0] > measured[(sigma, 1.0)][0]
    # Under light tails, the conservatively-delayed manual config is
    # *both* staler than 3V and still inconsistent.
    assert measured[(0.3, "3v")][0] < measured[(0.3, 32.0)][0]
