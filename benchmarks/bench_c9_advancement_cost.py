"""C9 — the cost profile of version advancement itself.

Advancement never delays user transactions (C2), but its *duration*
sets the floor on how fresh reads can be (C3): a version only becomes
readable after phase 2 has proven it quiescent.  This benchmark breaks
an advancement's wall time into its phases and sweeps the two knobs that
govern it — the coordinator's counter-poll interval and the network
latency — under a fixed user load.

Expected shape: phase 2 dominates; its duration scales with the poll
interval (detection granularity) plus a few network round trips per
poll, and with the tail of in-flight transaction lifetimes.
"""

from conftest import save_table

from repro.analysis import Table
from repro.core import PeriodicPolicy, ThreeVSystem
from repro.net import UniformLatency
from repro.sim import LogNormal, RngRegistry
from repro.workloads import RecordingConfig, RecordingWorkload
from repro.workloads.arrivals import drive, poisson_arrivals

DURATION = 120.0


def run(poll_interval: float, latency: float):
    node_ids = [f"n{index}" for index in range(6)]
    system = ThreeVSystem(
        node_ids, seed=91,
        latency=UniformLatency(LogNormal(mean=latency, sigma=0.8)),
        poll_interval=poll_interval, policy=PeriodicPolicy(20.0),
        detail=False,
    )
    config = RecordingConfig(nodes=node_ids, entities=60, span=2,
                             amount_mode="money")
    workload = RecordingWorkload(config, RngRegistry(92))
    workload.install(system)
    arrivals = RngRegistry(93)
    drive(system, poisson_arrivals(arrivals, "u", 8.0, DURATION),
          workload.make_recording)
    drive(system, poisson_arrivals(arrivals, "r", 4.0, DURATION),
          workload.make_inquiry)
    system.run(until=DURATION)
    system.stop_policy()
    system.run_until_quiet()
    return system


def phase_breakdown(system):
    records = [
        record for record in system.history.advancements
        if record.gc_done is not None
    ]
    count = len(records)
    if not count:
        return 0, 0.0, 0.0, 0.0, 0.0, 0.0
    phase1 = sum(r.phase1_done - r.started for r in records) / count
    phase2 = sum(r.phase2_done - r.phase1_done for r in records) / count
    phase3 = sum(r.phase3_done - r.phase2_done for r in records) / count
    phase4 = sum(r.gc_done - r.phase3_done for r in records) / count
    polls = sum(r.counter_polls for r in records) / count
    return count, phase1, phase2, phase3, phase4, polls


def test_c9_advancement_cost(benchmark):
    benchmark.pedantic(lambda: run(0.5, 1.0), rounds=1, iterations=1)
    table = Table(
        "C9: Advancement phase durations vs poll interval and latency "
        "(lognormal tails, mean over completed runs)",
        ["poll interval", "mean hop latency", "runs", "mean polls",
         "phase 1 (switch vu)", "phase 2 (quiesce)",
         "phase 3 (switch vr)", "phase 4 (drain+GC)", "total"],
        precision=2,
    )
    totals = {}
    for poll in (0.1, 0.5, 2.0):
        for latency in (0.5, 2.0):
            system = run(poll, latency)
            count, p1, p2, p3, p4, polls = phase_breakdown(system)
            total = p1 + p2 + p3 + p4
            totals[(poll, latency)] = total
            table.add(poll, latency, count, polls, p1, p2, p3, p4, total)
    save_table("c9_advancement_cost", table)

    # Latency dominates the staleness floor.
    assert totals[(0.1, 2.0)] > totals[(0.1, 0.5)]
    # Everything completed: at least two advancements at every setting.
    for (poll, latency), total in totals.items():
        assert total > 0.0
