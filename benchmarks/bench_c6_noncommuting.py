"""C6 — NC3V: graceful degradation with non-commuting traffic.

"In the periods when non-commuting update subtransactions do not execute,
no user transaction ... can be delayed by any activity on other nodes" —
and when they do execute, only transactions touching the same records
pay.  Sweeps the fraction of corrections (non-commuting overwrites) and
reports well-behaved latency, lock waits, and NC commit/abort outcomes.
"""

from conftest import save_table

from repro.analysis import Table, latency_summary, wait_summary
from repro.workloads import run_recording_experiment

SETTINGS = dict(
    nodes=6, duration=60.0, update_rate=10.0, inquiry_rate=4.0,
    audit_rate=0.1, entities=40, span=2, seed=61, amount_mode="money",
)


def run(correction_rate: float):
    return run_recording_experiment(
        "3v", correction_rate=correction_rate, **SETTINGS
    )


def test_c6_noncommuting_mix(benchmark):
    benchmark.pedantic(lambda: run(0.0), rounds=2, iterations=1)
    table = Table(
        "C6: Mixing non-commuting corrections into the recording load",
        ["corrections/s", "NC share %", "upd p95", "upd lock wait",
         "read lock wait", "NC committed", "NC aborted", "gate waits"],
        precision=3,
    )
    measured = {}
    for rate in (0.0, 0.1, 0.5, 2.0, 5.0):
        result = run(rate)
        history = result.history
        updates = latency_summary(history, kind="update")
        upd_lock = wait_summary(history, kind="update").get("lock", 0.0)
        read_lock = wait_summary(history, kind="read").get("lock", 0.0)
        nc = [r for r in history.txns.values() if r.kind == "noncommuting"]
        committed = sum(1 for r in nc if not r.aborted)
        share = 100.0 * rate / (SETTINGS["update_rate"] + rate)
        gate = sum(
            1 for r in nc if r.waits.get("version-gate", 0.0) > 0
        )
        measured[rate] = (updates.p95, upd_lock, read_lock)
        table.add(rate, share, updates.p95, upd_lock, read_lock,
                  committed, len(nc) - committed, gate)
    save_table("c6_noncommuting", table)

    # Zero NC traffic -> exactly zero lock waits anywhere.
    assert measured[0.0][1] == 0.0
    assert measured[0.0][2] == 0.0
    # Reads never take locks regardless of the mix.
    for rate, (_p95, _upd_lock, read_lock) in measured.items():
        assert read_lock == 0.0, rate
    # Lock waiting grows with the non-commuting share.
    assert measured[5.0][1] > measured[0.1][1]
