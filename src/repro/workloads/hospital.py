"""The hospital billing scenario (Section 1's motivating example).

"Consider a large hospital with multiple departments ... A visit by a
patient results in charges from several departments."  Departments are
database nodes; patients are entities; a *visit* is a well-behaved
recording transaction that records procedures and increments the balance
due in each department the visit touched; an *inquiry* reads the patient's
total charges across departments; a *statement audit* reads many patients
for billing.

This module gives the generic recording workload hospital vocabulary plus
a ready-made scenario builder used by the quickstart example and the F1
benchmark.
"""

from __future__ import annotations

import typing

from repro.sim.distributions import RngRegistry
from repro.workloads.recording import (
    RecordingConfig,
    RecordingWorkload,
    balance_key,
)

#: Default department names (database nodes).
DEPARTMENTS = (
    "radiology",
    "pediatrics",
    "cardiology",
    "pharmacy",
    "laboratory",
    "surgery",
)


class HospitalWorkload(RecordingWorkload):
    """Recording workload with hospital naming."""

    def make_visit(self, index: int):
        """A patient visit: charges in every department the patient uses."""
        return self.make_recording(index)

    def make_balance_inquiry(self, index: int):
        """A patient asking for their balance due."""
        return self.make_inquiry(index)

    def make_statement_run(self, index: int):
        """Monthly statement generation over a sample of patients."""
        return self.make_audit(index)

    def make_billing_adjustment(self, index: int, value=None):
        """A manual correction that overwrites a balance (non-commuting)."""
        return self.make_correction(index, value)

    def patient_departments(self, patient: int) -> typing.List[str]:
        return self.entity_nodes[patient]

    def patient_balance_key(self, patient: int):
        return balance_key(patient)


def hospital_workload(
    departments: typing.Sequence[str] = DEPARTMENTS,
    patients: int = 100,
    departments_per_visit: int = 2,
    seed: int = 0,
    amount_mode: str = "money",
    abort_fraction: float = 0.0,
) -> HospitalWorkload:
    """Build a hospital workload with sensible defaults."""
    config = RecordingConfig(
        nodes=list(departments),
        entities=patients,
        span=departments_per_visit,
        amount_mode=amount_mode,
        charge_low=25.0,
        charge_high=2500.0,
        abort_fraction=abort_fraction,
    )
    return HospitalWorkload(config, RngRegistry(seed))
