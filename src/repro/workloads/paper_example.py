"""The paper's running example (Section 2.3, Table 1, Figure 2).

Three sites ``p``, ``q``, ``s`` hold items A, B (at p), D, E (at q), and F
(at s).  Two update transactions (``i``, version 1, and ``j``, version 2),
two read transactions (``x``, ``y``), and one version advancement interleave
so that every interesting case of the 3V protocol occurs:

* ``jp`` (a version-2 descendant) reaches ``p`` before the advancement
  notice — ``p`` infers the advancement from the subtransaction's version;
* ``iq`` (a version-1 descendant) reaches ``q`` after ``q`` advanced — it
  must dual-write D into versions 1 *and* 2, but writes E only at version 1
  because no version-2 copy of E exists;
* reads ``x`` and ``y`` use version 0 throughout;
* after all counters match, the coordinator advances the read version and
  garbage-collects version 0.

Exact arrival orders are scripted with per-link constant latencies, so a
run is fully deterministic and can be checked step by step against Table 1.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.system import ThreeVSystem
from repro.net.latency import LinkLatency
from repro.sim.distributions import Constant
from repro.storage.values import Increment
from repro.txn.spec import ReadOp, SubtxnSpec, TransactionSpec, WriteOp

#: Initial version-0 values.
INITIAL = {"A": 10, "B": 20, "D": 30, "E": 40, "F": 50}

#: Increment applied by each subtransaction, keyed by (subtxn, item).
DELTAS = {
    ("i", "A"): 1,
    ("iq", "D"): 2,
    ("iq", "E"): 3,
    ("iqp", "B"): 4,
    ("is", "F"): 5,
    ("j", "D"): 7,
    ("jp", "A"): 8,
}

#: Submission times (simulated seconds).
SCHEDULE = {
    "i": 1.0,  # update tx i arrives at node p
    "x": 1.5,  # read tx x arrives at node p
    "advancement": 9.0,  # coordinator begins version advancement
    "j": 10.5,  # update tx j arrives at node q (already advanced)
    "y": 16.0,  # read tx y arrives at node q
}


def transaction_i() -> TransactionSpec:
    """Update transaction i: root at p, children iq (at q) and is (at s);
    iq spawns iqp back at p — the multi-visit tree of Section 2.3."""
    return TransactionSpec(
        name="i",
        root=SubtxnSpec(
            node="p",
            ops=[WriteOp("A", Increment(DELTAS[("i", "A")]))],
            children=[
                SubtxnSpec(
                    node="q",
                    label="q",
                    ops=[
                        WriteOp("D", Increment(DELTAS[("iq", "D")])),
                        WriteOp("E", Increment(DELTAS[("iq", "E")])),
                    ],
                    children=[
                        SubtxnSpec(
                            node="p",
                            label="p",
                            ops=[WriteOp("B", Increment(DELTAS[("iqp", "B")]))],
                        )
                    ],
                ),
                SubtxnSpec(
                    node="s",
                    label="s",
                    ops=[WriteOp("F", Increment(DELTAS[("is", "F")]))],
                ),
            ],
        ),
    )


def transaction_j() -> TransactionSpec:
    """Update transaction j: root at q, child jp back at p."""
    return TransactionSpec(
        name="j",
        root=SubtxnSpec(
            node="q",
            ops=[WriteOp("D", Increment(DELTAS[("j", "D")]))],
            children=[
                SubtxnSpec(
                    node="p",
                    label="p",
                    ops=[WriteOp("A", Increment(DELTAS[("jp", "A")]))],
                )
            ],
        ),
    )


def read_x() -> TransactionSpec:
    """Read transaction x at p (reads A)."""
    return TransactionSpec(
        name="x", root=SubtxnSpec(node="p", ops=[ReadOp("A")])
    )


def read_y() -> TransactionSpec:
    """Read transaction y at q (reads D)."""
    return TransactionSpec(
        name="y", root=SubtxnSpec(node="q", ops=[ReadOp("D")])
    )


def scripted_latencies() -> LinkLatency:
    """Per-link delays that reproduce Table 1's event ordering."""
    return LinkLatency(
        links={
            # The advancement notice is slow to reach p ...
            ("coordinator", "p"): Constant(6.0),
            ("coordinator", "q"): Constant(1.0),
            ("coordinator", "s"): Constant(1.0),
            # ... while j's child jp overtakes it,
            ("q", "p"): Constant(1.2),
            # and i's child iq is slow enough to find q already advanced.
            ("p", "q"): Constant(11.0),
            ("p", "s"): Constant(1.0),
        },
        default=Constant(1.0),
    )


@dataclasses.dataclass
class PaperExampleRun:
    """Everything a test or benchmark needs to inspect the replay."""

    system: ThreeVSystem
    snapshots: typing.Dict[str, typing.Dict[str, typing.Dict[int, typing.Any]]]


def build_system() -> ThreeVSystem:
    system = ThreeVSystem(
        ["p", "q", "s"],
        seed=0,
        latency=scripted_latencies(),
        poll_interval=0.5,
    )
    for key in ("A", "B"):
        system.load("p", key, INITIAL[key])
    for key in ("D", "E"):
        system.load("q", key, INITIAL[key])
    system.load("s", "F", INITIAL["F"])
    return system


def run_example(
    snapshot_times: typing.Sequence[typing.Tuple[str, float]] = (),
) -> PaperExampleRun:
    """Run the full Table 1 scenario.

    Args:
        snapshot_times: ``(name, time)`` pairs at which to capture the
            union of all nodes' stores (for Figure 2 comparisons).

    Returns:
        The finished system plus the requested snapshots.
    """
    system = build_system()
    system.submit_at(SCHEDULE["i"], transaction_i())
    system.submit_at(SCHEDULE["x"], read_x())
    system.sim.schedule(
        SCHEDULE["advancement"] - system.sim.now, system.advance_versions
    )
    system.submit_at(SCHEDULE["j"], transaction_j())
    system.submit_at(SCHEDULE["y"], read_y())

    snapshots: typing.Dict[str, dict] = {}
    for name, time in snapshot_times:
        system.sim.schedule(
            time - system.sim.now, _capture, system, snapshots, name
        )
    system.run_until_quiet()
    return PaperExampleRun(system=system, snapshots=snapshots)


def _capture(system: ThreeVSystem, snapshots: dict, name: str) -> None:
    merged: typing.Dict[str, typing.Dict[int, typing.Any]] = {}
    for node in system.nodes.values():
        merged.update(node.store.snapshot())
    snapshots[name] = merged


def expected_final_state() -> typing.Dict[str, typing.Dict[int, int]]:
    """Ground truth for the end of the scenario (Figure 2, last panel),
    derived from the protocol rules — see the module docstring."""
    a0, b0, d0, e0, f0 = (INITIAL[k] for k in ("A", "B", "D", "E", "F"))
    return {
        "A": {
            1: a0 + DELTAS[("i", "A")],
            2: a0 + DELTAS[("i", "A")] + DELTAS[("jp", "A")],
        },
        "B": {1: b0 + DELTAS[("iqp", "B")]},
        "D": {
            1: d0 + DELTAS[("iq", "D")],
            2: d0 + DELTAS[("iq", "D")] + DELTAS[("j", "D")],
        },
        "E": {1: e0 + DELTAS[("iq", "E")]},
        "F": {1: f0 + DELTAS[("is", "F")]},
    }
