"""Workload generators: generic data recording plus three domain skins."""

from repro.workloads.arrivals import drive, poisson_arrivals, uniform_arrivals
from repro.workloads.hospital import (
    DEPARTMENTS,
    HospitalWorkload,
    hospital_workload,
)
from repro.workloads.recording import (
    RecordingConfig,
    RecordingWorkload,
    balance_key,
    log_key,
)
from repro.workloads.retail import RetailWorkload, retail_workload, store_names
from repro.workloads.runner import (
    PROTOCOLS,
    ExperimentResult,
    build_system,
    default_latency,
    run_recording_experiment,
)
from repro.workloads.telecom import TelecomWorkload, switch_names, telecom_workload

__all__ = [
    "DEPARTMENTS",
    "ExperimentResult",
    "HospitalWorkload",
    "PROTOCOLS",
    "RecordingConfig",
    "RecordingWorkload",
    "RetailWorkload",
    "TelecomWorkload",
    "balance_key",
    "build_system",
    "default_latency",
    "drive",
    "hospital_workload",
    "log_key",
    "poisson_arrivals",
    "retail_workload",
    "run_recording_experiment",
    "store_names",
    "switch_names",
    "telecom_workload",
    "uniform_arrivals",
]
