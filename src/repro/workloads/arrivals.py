"""Arrival processes for driving open-loop workloads.

Transactions arrive according to a Poisson process (exponential
inter-arrival times) — the standard open-loop model for data recording
systems, where calls/sales/observations arrive regardless of how the
database is doing.  Arrival times come from a named RNG stream, so two
systems driven with the same seed see identical workloads
(paired-comparison benchmarking).

Two driving modes share the same sampled process:

* :func:`drive` pre-schedules every arrival (simple, but heap residency
  and transaction-spec memory are O(arrivals) up front).
* :func:`drive_streaming` walks the lazy :func:`poisson_arrival_times`
  generator with a self-rescheduling simulator callback: exactly one
  pending arrival per transaction class at any instant, so a
  million-transaction run never materializes its workload.  Each class
  draws from its own stream, so laziness cannot change the sampled
  times — only *when* specs are built.
"""

from __future__ import annotations

import typing

from repro.sim.distributions import RngRegistry


def poisson_arrival_times(
    rngs: RngRegistry,
    stream: str,
    rate: float,
    duration: float,
    start: float = 0.0,
) -> typing.Iterator[float]:
    """Lazily sample a Poisson arrival process.

    Args:
        rngs: RNG registry.
        stream: Stream name (distinct per transaction class).
        rate: Mean arrivals per time unit.
        duration: Length of the arrival window.
        start: Window start time.

    Yields:
        Sorted arrival times within ``[start, start + duration)``.
    """
    if rate <= 0:
        return
    rng = rngs.stream(stream)
    t = start
    while True:
        t += rng.expovariate(rate)
        if t >= start + duration:
            return
        yield t


def poisson_arrivals(
    rngs: RngRegistry,
    stream: str,
    rate: float,
    duration: float,
    start: float = 0.0,
) -> typing.List[float]:
    """Materialized :func:`poisson_arrival_times` (same samples)."""
    return list(poisson_arrival_times(rngs, stream, rate, duration, start))


def uniform_arrivals(
    rate: float, duration: float, start: float = 0.0
) -> typing.List[float]:
    """Deterministic, evenly spaced arrivals (for exactly scripted tests)."""
    if rate <= 0:
        return []
    step = 1.0 / rate
    times = []
    t = start + step
    while t < start + duration:
        times.append(t)
        t += step
    return times


def drive(system, arrivals: typing.Iterable[float], make_spec) -> int:
    """Schedule one transaction per arrival time.

    Args:
        system: Any system with ``submit_at``.
        arrivals: Arrival times.
        make_spec: ``make_spec(index) -> TransactionSpec``.

    Returns:
        Number of transactions scheduled.
    """
    count = 0
    for index, time in enumerate(arrivals):
        system.submit_at(time, make_spec(index))
        count += 1
    return count


class StreamingDriver:
    """Submits one transaction class from a lazy arrival iterator.

    Holds exactly one pending simulator event: when it fires, the next
    spec is built *at its own arrival time* and submitted, and the
    following arrival is scheduled.  Workload memory is O(1) in run
    length; ``count`` reports how many transactions were submitted.
    """

    __slots__ = ("_sim", "_system", "_arrivals", "_make_spec", "count")

    def __init__(self, system, arrivals: typing.Iterator[float], make_spec):
        self._sim = system.sim
        self._system = system
        self._arrivals = iter(arrivals)
        self._make_spec = make_spec
        self.count = 0
        self._schedule_next()

    def _schedule_next(self) -> None:
        time = next(self._arrivals, None)
        if time is not None:
            self._sim.schedule_at(time, self._fire)

    def _fire(self) -> None:
        self._system.submit(self._make_spec(self.count))
        self.count += 1
        self._schedule_next()


def drive_streaming(system, arrivals: typing.Iterator[float],
                    make_spec) -> StreamingDriver:
    """Schedule a transaction class lazily, one arrival at a time.

    The streaming counterpart of :func:`drive`: same
    ``make_spec(index) -> TransactionSpec`` contract, but specs are built
    on demand as the simulation reaches each arrival.  Read
    ``driver.count`` after the run for the number submitted.
    """
    return StreamingDriver(system, arrivals, make_spec)
