"""Arrival processes for driving open-loop workloads.

Transactions arrive according to a Poisson process (exponential
inter-arrival times) — the standard open-loop model for data recording
systems, where calls/sales/observations arrive regardless of how the
database is doing.  Arrival times are pre-sampled from a named RNG stream,
so two systems driven with the same seed see identical workloads
(paired-comparison benchmarking).
"""

from __future__ import annotations

import typing

from repro.sim.distributions import RngRegistry


def poisson_arrivals(
    rngs: RngRegistry,
    stream: str,
    rate: float,
    duration: float,
    start: float = 0.0,
) -> typing.List[float]:
    """Sample a Poisson arrival process.

    Args:
        rngs: RNG registry.
        stream: Stream name (distinct per transaction class).
        rate: Mean arrivals per time unit.
        duration: Length of the arrival window.
        start: Window start time.

    Returns:
        Sorted arrival times within ``[start, start + duration)``.
    """
    if rate <= 0:
        return []
    rng = rngs.stream(stream)
    times = []
    t = start
    while True:
        t += rng.expovariate(rate)
        if t >= start + duration:
            return times
        times.append(t)


def uniform_arrivals(
    rate: float, duration: float, start: float = 0.0
) -> typing.List[float]:
    """Deterministic, evenly spaced arrivals (for exactly scripted tests)."""
    if rate <= 0:
        return []
    step = 1.0 / rate
    times = []
    t = start + step
    while t < start + duration:
        times.append(t)
        t += step
    return times


def drive(system, arrivals: typing.Iterable[float], make_spec) -> int:
    """Schedule one transaction per arrival time.

    Args:
        system: Any system with ``submit_at``.
        arrivals: Arrival times.
        make_spec: ``make_spec(index) -> TransactionSpec``.

    Returns:
        Number of transactions scheduled.
    """
    count = 0
    for index, time in enumerate(arrivals):
        system.submit_at(time, make_spec(index))
        count += 1
    return count
