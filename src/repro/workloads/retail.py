"""The point-of-sale inventory scenario (Section 1: "inventory management
in a 'point-of-sale' system").

Stores (or regional warehouses) are database nodes; products are entities
whose stock and revenue summaries are spread over the stores that carry
them.  A *sale* records the line items and adjusts stock/revenue — stock
decrements and revenue increments commute, so sales are well-behaved.  A
*stock inquiry* reads one product across its stores; an *inventory audit*
reads many.  A *stock take* (physical recount) *overwrites* the stock
level: the canonical non-commuting correction that needs NC3V.
"""

from __future__ import annotations

import typing

from repro.sim.distributions import RngRegistry
from repro.workloads.recording import RecordingConfig, RecordingWorkload


def store_names(count: int) -> typing.List[str]:
    return [f"store{index:02d}" for index in range(count)]


class RetailWorkload(RecordingWorkload):
    """Recording workload with retail naming.

    Sales *increment* the per-store product summary with a negative amount
    when viewed as stock, or a positive amount when viewed as revenue; the
    generic workload's single summary per (product, store) stands in for
    both, which preserves the commutativity structure that matters here.
    """

    def make_sale(self, index: int):
        return self.make_recording(index)

    def make_stock_inquiry(self, index: int):
        return self.make_inquiry(index)

    def make_inventory_audit(self, index: int):
        return self.make_audit(index)

    def make_stock_take(self, index: int, counted: typing.Optional[int] = None):
        """A physical recount overwriting the stock level (non-commuting)."""
        return self.make_correction(index, counted)


def retail_workload(
    stores: int = 6,
    products: int = 200,
    stores_per_product: int = 3,
    seed: int = 0,
    amount_mode: str = "money",
) -> RetailWorkload:
    """Build a point-of-sale workload."""
    config = RecordingConfig(
        nodes=store_names(stores),
        entities=products,
        span=stores_per_product,
        amount_mode=amount_mode,
        charge_low=1.0,
        charge_high=200.0,
        audit_entities=40,
    )
    return RetailWorkload(config, RngRegistry(seed))
