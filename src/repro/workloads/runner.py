"""One-call experiment runner used by benchmarks, examples, and tests.

``run_recording_experiment`` builds a system of the requested protocol,
installs a recording workload, drives Poisson arrivals for a simulated
duration, drains, and returns everything the analysis package needs.  The
same seed produces the *identical* arrival sequence and transaction mix on
every protocol, so cross-protocol comparisons are paired.

With ``stream=1`` the run switches to bounded-memory mode: arrivals are
walked lazily (one pending event per transaction class), the history is a
:class:`~repro.txn.history.StreamingHistory` that folds each transaction
into O(1) aggregates at retirement, a rolling serializability spot-check
replaces the post-hoc audit, and an optional ``trace_path`` spills the
full per-transaction trace to disk instead of RAM.  Peak memory is then
independent of how many transactions the run processes.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.net.latency import LatencyModel, UniformLatency
from repro.runtime.config import NodeConfig
from repro.runtime.registry import PROTOCOLS
from repro.sim.distributions import Constant, RngRegistry, Uniform
from repro.txn.history import StreamingHistory
from repro.workloads.arrivals import (
    drive,
    drive_streaming,
    poisson_arrival_times,
    poisson_arrivals,
)
from repro.workloads.recording import RecordingConfig, RecordingWorkload

__all__ = [
    "PROTOCOLS",
    "ExperimentResult",
    "build_system",
    "default_latency",
    "run_recording_experiment",
]

# ``PROTOCOLS`` is re-exported here for the historic import path
# (``from repro.workloads import PROTOCOLS``); it is the live registry, so
# iteration / membership / ``', '.join(...)`` keep working as they did on
# the old hand-maintained tuple, and newly registered protocols appear
# automatically.


def default_latency(jitter: float = 1.0) -> LatencyModel:
    """A mildly variable LAN: mean 1.0, enough jitter to reorder messages.

    ``jitter`` is the width of the uniform window around the mean:
    ``1.0`` (the default) is the historic ``Uniform(0.5, 1.5)`` model,
    ``0.0`` degenerates to a constant 1.0 — the regime where same-tick
    delivery batching has waves to coalesce.
    """
    if jitter < 0:
        raise ValueError(f"latency jitter must be >= 0: {jitter}")
    if jitter == 0.0:
        from repro.net.latency import constant_latency

        return constant_latency(1.0)
    return UniformLatency(Uniform(1.0 - jitter / 2, 1.0 + jitter / 2))


@dataclasses.dataclass
class ExperimentResult:
    """Everything measured in one run."""

    protocol: str
    system: typing.Any
    workload: RecordingWorkload
    duration: float
    submitted: int
    #: Rolling serializability auditor (streaming runs with detail only);
    #: ``auditor.report()`` replaces the post-hoc ``analysis.audit``.
    auditor: typing.Any = None

    @property
    def history(self):
        return self.system.history

    @property
    def network(self):
        return self.system.network


def build_system(
    protocol: str,
    node_ids: typing.Sequence[str],
    seed: int = 0,
    latency: typing.Optional[LatencyModel] = None,
    advancement_period: float = 10.0,
    safety_delay: float = 5.0,
    allow_noncommuting: bool = False,
    detail: bool = True,
    op_service: float = 0.001,
    executor_capacity: int = 1,
    poll_interval: float = 0.5,
    faults=None,
    batch_delivery: bool = False,
    latency_jitter: float = 1.0,
    history=None,
    placement=None,
):
    """Instantiate any registered protocol behind a uniform interface.

    ``latency_jitter`` shapes the default latency model and is ignored
    when an explicit ``latency`` is supplied.  ``history`` injects a
    pre-built recording surface (a :class:`StreamingHistory` for
    bounded-memory runs); ``None`` keeps the materialized default.
    ``placement`` injects a :class:`repro.placement.PlacementState` for
    replicated runs; ``None`` (always the case at rf=1) keeps the
    unreplicated hot paths bit-identical.
    """
    if latency is None:
        latency = default_latency(latency_jitter)
    config = NodeConfig(
        op_service=Constant(op_service),
        executor_capacity=executor_capacity,
    )
    return PROTOCOLS.build(
        protocol, node_ids, seed=seed, latency=latency, node_config=config,
        detail=detail, advancement_period=advancement_period,
        safety_delay=safety_delay, poll_interval=poll_interval,
        allow_noncommuting=allow_noncommuting, faults=faults,
        batch_delivery=batch_delivery, history=history,
        placement=placement,
    )


def run_recording_experiment(
    protocol: str,
    nodes: int = 4,
    duration: float = 60.0,
    update_rate: float = 5.0,
    inquiry_rate: float = 2.0,
    audit_rate: float = 0.2,
    correction_rate: float = 0.0,
    entities: int = 50,
    span: int = 2,
    seed: int = 0,
    latency: typing.Optional[LatencyModel] = None,
    advancement_period: float = 10.0,
    safety_delay: float = 5.0,
    amount_mode: str = "bitmask",
    abort_fraction: float = 0.0,
    detail: bool = True,
    drop_rate: float = 0.0,
    dup_rate: float = 0.0,
    crash_count: int = 0,
    fault_seed: int = 0,
    partition_count: int = 0,
    coordinator_crashes: int = 0,
    stall_budget: float = 0.0,
    drain_limit: float = 100000.0,
    stream: int = 0,
    zipf: float = 0.0,
    with_observations: int = 1,
    trace_path=None,
    stream_aggregates: bool = True,
    replication_factor: int = 1,
    refresh_delay: float = 2.0,
    **system_kwargs,
) -> ExperimentResult:
    """Run one full recording experiment on the chosen protocol.

    Arrival processes and workload composition are derived from ``seed``
    only, independent of the protocol under test.  The fault axes
    (``drop_rate``/``dup_rate``/``crash_count``/``partition_count``,
    scheduled from ``fault_seed``) build a :class:`repro.faults.FaultPlan`
    storm; with all of them at zero no fault machinery is attached at all,
    keeping the seed path bit-identical.

    ``coordinator_crashes`` adds that many deterministic mid-wave crash /
    recover cycles of the protocol's advancement coordinator (one and a
    half time units after each of the first N periodic wave starts, down
    for 2.5).  Protocols without a registered coordinator ignore the axis
    entirely.  ``stall_budget`` is analysis-side only (the liveness
    watchdog's budget, consumed by :func:`repro.exp.summarize`); it is
    accepted here so spec ``run_kwargs`` round-trip.

    ``replication_factor`` places each (entity, slot) record on that many
    replica nodes and attaches a :class:`repro.placement.PlacementState`
    (read-one routing, write-all-available fan-out, recovery-readability
    with ``refresh_delay`` between a node's recovery and its refresh
    request).  At the default ``1`` no placement state is attached and
    the run is bit-identical to a pre-replication run.

    ``stream=1`` selects the bounded-memory mode (lazy arrivals +
    streaming history + rolling audit; see the module docstring).
    ``stream_aggregates=False`` is the differential-oracle hook: it keeps
    the lazy arrival scheduling of ``stream=1`` but materializes the full
    history, so tests can compare streamed aggregates bit-for-bit against
    exact end-of-run computation over the *same* trace.
    """
    del stall_budget  # analysis-side knob; accepted for spec round-trips
    node_ids = [f"n{index:02d}" for index in range(nodes)]
    span = min(span, nodes)
    entry = PROTOCOLS.get(protocol)
    coordinator_id = getattr(entry, "coordinator", None)
    wanted_coordinator_crashes = (
        coordinator_crashes if coordinator_id is not None else 0
    )
    faults = system_kwargs.pop("faults", None)
    if faults is None and (drop_rate or dup_rate or crash_count
                           or partition_count or wanted_coordinator_crashes):
        from repro.faults import CrashEvent, FaultPlan

        faults = FaultPlan.storm(
            node_ids, drop_rate=drop_rate, dup_rate=dup_rate,
            crash_count=crash_count, fault_seed=fault_seed,
            duration=duration, partition_count=partition_count,
        )
        if wanted_coordinator_crashes:
            # Deterministic mid-wave coordinator crashes: the periodic
            # policy starts wave i+1 at advancement_period * (i+1), so a
            # crash 1.5 later lands inside the wave by construction (and
            # is trivially repeatable for the same spec).
            extra = tuple(
                CrashEvent(
                    node=coordinator_id,
                    at=advancement_period * (index + 1) + 1.5,
                    down_for=2.5,
                )
                for index in range(wanted_coordinator_crashes)
            )
            faults = dataclasses.replace(
                faults, crashes=faults.crashes + extra
            )
    stream_mode = bool(stream)
    history = None
    if stream_mode and stream_aggregates:
        # The reservoir stream draws from seed + 3: seeds +1/+2 already
        # name the workload and arrival registries.
        history = StreamingHistory(detail=bool(detail), stats_seed=seed + 3)
    placement = system_kwargs.pop("placement", None)
    if placement is None and replication_factor > 1:
        from repro.placement import PlacementState

        placement = PlacementState(refresh_delay=refresh_delay)
    system = build_system(
        protocol, node_ids, seed=seed, latency=latency,
        advancement_period=advancement_period, safety_delay=safety_delay,
        allow_noncommuting=correction_rate > 0, detail=detail,
        faults=faults, history=history, placement=placement,
        **system_kwargs,
    )
    workload_config = RecordingConfig(
        nodes=node_ids, entities=entities, span=span,
        amount_mode=amount_mode, abort_fraction=abort_fraction,
        with_observations=bool(with_observations), zipf=zipf,
        replication_factor=replication_factor,
    )
    # The workload draws from its own registry so every protocol sees the
    # same transaction mix regardless of how the system consumes its RNG.
    workload = RecordingWorkload(workload_config, RngRegistry(seed + 1))
    workload.install(system)

    auditor = None
    tracer = None
    if stream_mode and stream_aggregates:
        if detail:
            # Imported lazily: repro.analysis never imports repro.workloads,
            # so the late edge cannot cycle.
            from repro.analysis.rolling import RollingAuditor

            check_snapshots = protocol == "3v" and amount_mode == "bitmask"
            auditor = RollingAuditor(
                history, workload, check_snapshots=check_snapshots
            )
            history.add_retire_sink(auditor.on_retire)
            # Ground-truth amounts are consumed as updates retire; without
            # the snapshot oracle they would only accumulate.
            workload.track_amounts = check_snapshots
        else:
            workload.track_amounts = False
        if trace_path is not None:
            from repro.analysis.tracefile import TraceStreamWriter

            tracer = TraceStreamWriter(trace_path)
            history.add_retire_sink(tracer.on_retire)

    arrival_rngs = RngRegistry(seed + 2)
    classes = [
        ("arrivals.update", update_rate, workload.make_recording),
        ("arrivals.inquiry", inquiry_rate, workload.make_inquiry),
        ("arrivals.audit", audit_rate, workload.make_audit),
    ]
    if correction_rate > 0:
        classes.append(
            ("arrivals.correction", correction_rate, workload.make_correction)
        )
    submitted = 0
    drivers = []
    for stream_name, rate, make_spec in classes:
        if stream_mode:
            drivers.append(drive_streaming(
                system,
                poisson_arrival_times(arrival_rngs, stream_name, rate,
                                      duration),
                make_spec,
            ))
        else:
            submitted += drive(
                system,
                poisson_arrivals(arrival_rngs, stream_name, rate, duration),
                make_spec,
            )

    system.run(until=duration)
    system.stop_policy()
    system.run_until_quiet(limit=drain_limit)
    submitted += sum(driver.count for driver in drivers)
    if tracer is not None:
        tracer.close(history)
    if trace_path is not None and tracer is None:
        from repro.analysis.tracefile import export_history

        export_history(system.history, trace_path)
    return ExperimentResult(
        protocol=protocol, system=system, workload=workload,
        duration=duration, submitted=submitted, auditor=auditor,
    )
