"""The generic data-recording workload (Section 6).

Data recording systems "record data by inserting new data observations into
a database, and simultaneously update summaries ... derived from the
recorded data".  This module generates exactly that shape:

* **Recording transactions** (well-behaved updates): for one *entity*
  (a patient, a phone account, a SKU), insert an observation into the
  entity's per-slot log and increment the entity's per-slot summary, on
  every replica of every slot — a multi-node transaction tree rooted at one
  of the entity's nodes.
* **Inquiry transactions** (read-only): read the entity's summary for every
  slot (the "customer enquiry" that must never see a partial visit).
* **Audit transactions** (read-only): read the summaries of many entities
  (the "bookkeeping" query).
* **Correction transactions** (non-commuting, optional): overwrite an
  entity's summaries on all replicas — the non-well-behaved updates NC3V
  exists for.

Two orthogonal placement axes — do not confuse them:

* ``span`` spreads **distinct records** (slots) of one entity across
  different nodes: slot 0 and slot 1 are *different* data items, and a
  span-2 entity has its visit recorded in two places that must be read
  together.  Span is about distribution of load and multi-node trees.
* ``replication_factor`` makes **copies** of each record: every (entity,
  slot) data item lives on ``rf`` replica nodes that must converge to the
  same value.  Replication is about availability — rf=1 (the default)
  reproduces the historic single-owner placement bit for bit, while rf>1
  fans writes out write-all-available and serves reads from any readable
  replica (see :mod:`repro.placement`).

Amount modes:

* ``"money"`` — realistic uniformly sampled charges (benchmark runs).
* ``"bitmask"`` — each recording transaction adds a distinct power of two
  to every summary it touches.  The amount doubles as a *transaction id
  embedded in the data*: any later read's value decomposes uniquely into
  the set of transactions it reflects, which gives the analysis package an
  exact fractured-read and snapshot-consistency oracle (see
  :mod:`repro.analysis.serializability`).
"""

from __future__ import annotations

import bisect
import dataclasses
import typing

from repro.errors import ReproError
from repro.placement import ReplicaMap
from repro.sim.distributions import RngRegistry
from repro.storage.values import Assign, Increment, Record
from repro.txn.spec import ReadOp, SubtxnSpec, TransactionSpec, WriteOp


def balance_key(entity: int, slot: typing.Optional[int] = None):
    """Summary data item of an entity.

    Unreplicated data keeps the historic unqualified key (one record per
    entity-slot, but the same key string on each of the entity's nodes).
    Replicated data qualifies the key with its slot so that two slots of
    one entity can host replicas on the same node without colliding.
    """
    if slot is None:
        return f"bal:{entity}"
    return f"bal:{entity}#{slot}"


def log_key(entity: int, slot: typing.Optional[int] = None):
    """Observation log data item of an entity (slot-qualified when rf>1)."""
    if slot is None:
        return f"log:{entity}"
    return f"log:{entity}#{slot}"


@dataclasses.dataclass
class RecordingConfig:
    """Shape of a data-recording workload.

    Attributes:
        nodes: Database nodes.
        entities: Number of distinct entities.
        span: Slots per entity — how many *distinct* records an entity
            spreads across different nodes.  Orthogonal to replication.
        replication_factor: Copies of every record.  ``1`` (default) is
            the historic single-owner placement, bit-identical to runs
            that predate the replication axis; ``rf > 1`` places each
            (entity, slot) record on ``rf`` distinct replica nodes.
        amount_mode: ``"money"`` or ``"bitmask"`` (see module docstring).
        charge_low/charge_high: Charge range for ``"money"`` mode.
        with_observations: Also insert :class:`Record` observations (doubles
            the write ops per node).
        audit_entities: Entities read by one audit transaction.
        abort_fraction: Fraction of recording transactions that abort at
            their last subtransaction (exercises compensation).
        zipf: Hot-key skew exponent.  ``0`` keeps the historic uniform
            entity choice (bit-identical to older runs); ``s > 0`` draws
            entity ``e`` with probability proportional to ``1/(e+1)**s``
            (entity 0 hottest) — the realistic shape for volume runs,
            where a few accounts absorb most traffic.
    """

    nodes: typing.Sequence[str]
    entities: int = 50
    span: int = 2
    amount_mode: str = "money"
    charge_low: float = 5.0
    charge_high: float = 500.0
    with_observations: bool = True
    audit_entities: int = 10
    abort_fraction: float = 0.0
    zipf: float = 0.0
    replication_factor: int = 1

    def __post_init__(self):
        if self.span < 1 or self.span > len(self.nodes):
            raise ReproError(
                f"entity span {self.span} invalid for {len(self.nodes)} nodes"
            )
        if not 1 <= self.replication_factor <= len(self.nodes):
            raise ReproError(
                f"replication_factor {self.replication_factor} invalid for "
                f"{len(self.nodes)} node(s): replicas are copies of one "
                f"record and must land on distinct nodes (use span to "
                f"spread distinct records instead)"
            )
        if self.amount_mode not in ("money", "bitmask"):
            raise ReproError(f"unknown amount mode: {self.amount_mode!r}")
        if self.zipf < 0:
            raise ReproError(f"zipf exponent must be >= 0: {self.zipf}")

    @property
    def replicated(self) -> bool:
        return self.replication_factor > 1


class RecordingWorkload:
    """Generator of recording/inquiry/audit/correction transactions."""

    def __init__(self, config: RecordingConfig, rngs: RngRegistry):
        self.config = config
        self.rngs = rngs
        self._rng = rngs.stream("workload.recording")
        #: Deterministic (entity, slot) -> ordered replica list placement.
        #: Consumes one ``randrange`` per entity — the exact draw sequence
        #: the pre-replication workload used for its single-owner map.
        self.placement_map = ReplicaMap.generate(
            config.nodes, config.entities, config.span,
            config.replication_factor, self._rng,
        )
        #: entity -> ordered list of slot *homes* (each slot's primary).
        #: At rf=1 this is the complete placement; at rf>1 each slot has
        #: ``rf - 1`` further replicas behind its home.
        self.entity_homes: typing.Dict[int, typing.List[str]] = {
            entity: self.placement_map.homes(entity)
            for entity in range(config.entities)
        }
        #: Cumulative Zipf weights over entities (None when uniform).
        self._zipf_cumulative: typing.Optional[typing.List[float]] = None
        if config.zipf > 0:
            total = 0.0
            cumulative = []
            for entity in range(config.entities):
                total += 1.0 / (entity + 1) ** config.zipf
                cumulative.append(total)
            self._zipf_cumulative = cumulative
        #: per-entity counter for bitmask amounts.
        self._entity_txn_counter: typing.Dict[int, int] = {}
        #: Whether to retain per-update ground truth.  The rolling auditor
        #: consumes entries as updates retire; with no auditor attached a
        #: streaming run sets this False so the dict cannot grow with run
        #: length.
        self.track_amounts = True
        #: (name) -> (entity, amount) for ground-truth bookkeeping.
        self.update_amounts: typing.Dict[str, typing.Tuple[int, int]] = {}
        #: correction name -> entity it overwrote.  Corrected entities no
        #: longer decompose as bitmasks, so the snapshot oracle skips them.
        self.correction_entities: typing.Dict[str, int] = {}

    @property
    def entity_nodes(self) -> typing.Dict[int, typing.List[str]]:
        """Compatibility alias for :attr:`entity_homes` (the historic name,
        from before replication distinguished a slot's home from its other
        replicas)."""
        return self.entity_homes

    # ------------------------------------------------------------------
    # Key helpers (slot-qualified only under replication)
    # ------------------------------------------------------------------

    def _bal(self, entity: int, slot: int):
        return balance_key(entity, slot if self.config.replicated else None)

    def _log(self, entity: int, slot: int):
        return log_key(entity, slot if self.config.replicated else None)

    def replica_groups(self):
        """Iterate ``(entity, slot, balance_key, replicas)`` over every
        record — the cross-replica agreement surface the chaos harness
        checks at quiescence."""
        for entity, slot, replicas in self.placement_map.slot_items():
            yield entity, slot, self._bal(entity, slot), replicas

    # ------------------------------------------------------------------
    # Initial data
    # ------------------------------------------------------------------

    def install(self, system) -> None:
        """Load zero balances and empty logs on every replica."""
        for entity, slot, replicas in self.placement_map.slot_items():
            for node in replicas:
                system.load(node, self._bal(entity, slot), 0)
                system.load(node, self._log(entity, slot), ())

    # ------------------------------------------------------------------
    # Transaction builders
    # ------------------------------------------------------------------

    def _pick_entity(self) -> int:
        if self._zipf_cumulative is None:
            return self._rng.randrange(self.config.entities)
        target = self._rng.random() * self._zipf_cumulative[-1]
        index = bisect.bisect_right(self._zipf_cumulative, target)
        return min(index, self.config.entities - 1)

    def _amount(self, entity: int):
        if self.config.amount_mode == "bitmask":
            k = self._entity_txn_counter.get(entity, 0)
            self._entity_txn_counter[entity] = k + 1
            return 1 << k
        return round(self._rng.uniform(self.config.charge_low,
                                       self.config.charge_high), 2)

    def _write_groups(self, entity: int, make_ops) -> typing.Dict[str, list]:
        """Group one entity's per-record writes by target node.

        Iterates slots in order and each slot's replicas in placement
        order, calling ``make_ops(slot, node)`` for every copy; the
        node's ops accumulate in first-appearance order.  At rf=1 the
        replica list collapses to the slot home, reproducing the historic
        one-group-per-span-node trees exactly.
        """
        groups: typing.Dict[str, list] = {}
        for slot in range(self.config.span):
            for node in self.placement_map.replicas(entity, slot):
                groups.setdefault(node, []).extend(make_ops(slot, node))
        return groups

    def make_recording(self, index: int) -> TransactionSpec:
        """A well-behaved multi-node recording transaction.

        Under replication every replica of every slot receives its own
        copy of the commuting increment (write-all-available fan-out);
        the observation payload records the *slot* rather than the node
        so replica copies stay byte-identical.
        """
        entity = self._pick_entity()
        amount = self._amount(entity)
        name = f"rec-{index}"
        if self.track_amounts:
            self.update_amounts[name] = (entity, amount)
        abort = (
            self.config.abort_fraction > 0
            and self._rng.random() < self.config.abort_fraction
        )
        replicated = self.config.replicated

        def ops(slot: int, node: str) -> list:
            result = [WriteOp(self._bal(entity, slot), Increment(amount))]
            if self.config.with_observations:
                tag = slot if replicated else node
                result.append(
                    WriteOp(self._log(entity, slot), Record((name, tag)))
                )
            return result

        groups = self._write_groups(entity, ops)
        targets = list(groups)
        children = [
            SubtxnSpec(node=node, ops=groups[node]) for node in targets[1:]
        ]
        if abort and children:
            children[-1].abort_here = True
        root = SubtxnSpec(
            node=targets[0], ops=groups[targets[0]], children=children
        )
        if abort and not children:
            root.abort_here = True
        return TransactionSpec(name=name, root=root)

    def make_inquiry(self, index: int) -> TransactionSpec:
        """Read one entity's summary for every slot (read-one per record).

        Each slot is read at its home replica; under replication the spec
        carries the slot's other replicas as ``alternates`` so the
        placement layer can re-point the read at any readable copy.
        """
        entity = self._pick_entity()
        name = f"inq-{index}:{entity}"
        if not self.config.replicated:
            nodes = self.entity_homes[entity]
            children = [
                SubtxnSpec(node=node, ops=[ReadOp(balance_key(entity))])
                for node in nodes[1:]
            ]
            root = SubtxnSpec(
                node=nodes[0], ops=[ReadOp(balance_key(entity))],
                children=children,
            )
            return TransactionSpec(name=name, root=root)
        specs = [
            SubtxnSpec(
                node=replicas[0],
                ops=[ReadOp(self._bal(entity, slot))],
                alternates=replicas[1:],
                label=f"s{slot}",
            )
            for slot, replicas in (
                (s, self.placement_map.replicas(entity, s))
                for s in range(self.config.span)
            )
        ]
        root = specs[0]
        root.children = specs[1:]
        return TransactionSpec(name=name, root=root)

    def make_audit(self, index: int) -> TransactionSpec:
        """Read the summaries of several entities (fans out wide)."""
        count = min(self.config.audit_entities, self.config.entities)
        entities = self._rng.sample(range(self.config.entities), count)
        name = f"aud-{index}"
        if not self.config.replicated:
            # Group reads by node; root at the busiest node.
            by_node: typing.Dict[str, list] = {}
            for entity in entities:
                for node in self.entity_homes[entity]:
                    by_node.setdefault(node, []).append(
                        ReadOp(balance_key(entity))
                    )
            nodes_sorted = sorted(
                by_node, key=lambda n: len(by_node[n]), reverse=True
            )
            root_node = nodes_sorted[0]
            children = [
                SubtxnSpec(node=node, ops=by_node[node])
                for node in nodes_sorted[1:]
            ]
            root = SubtxnSpec(
                node=root_node, ops=by_node[root_node], children=children
            )
            return TransactionSpec(name=name, root=root)
        # Replicated: one read per record at its home, alternates attached,
        # so each record independently falls back to a readable replica.
        specs = []
        for entity in entities:
            for slot in range(self.config.span):
                replicas = self.placement_map.replicas(entity, slot)
                specs.append(
                    SubtxnSpec(
                        node=replicas[0],
                        ops=[ReadOp(self._bal(entity, slot))],
                        alternates=replicas[1:],
                        label=f"e{entity}s{slot}",
                    )
                )
        root = specs[0]
        root.children = specs[1:]
        return TransactionSpec(name=name, root=root)

    def make_correction(self, index: int, value: typing.Optional[int] = None
                        ) -> TransactionSpec:
        """A non-commuting overwrite of one entity's summaries (NC3V).

        Corrections write *all* replicas and do not skip unavailable ones:
        a non-commuting assign cannot be replayed out of order, so the
        two-phase engine simply blocks on a down replica until it
        recovers — the availability contrast with write-all-available
        commuting updates is the point of the comparison.
        """
        entity = self._pick_entity()
        new_value = value if value is not None else round(
            self._rng.uniform(0.0, 100.0), 2
        )

        def ops(slot: int, node: str) -> list:
            return [WriteOp(self._bal(entity, slot), Assign(new_value))]

        groups = self._write_groups(entity, ops)
        targets = list(groups)
        children = [
            SubtxnSpec(node=node, ops=groups[node]) for node in targets[1:]
        ]
        root = SubtxnSpec(
            node=targets[0], ops=groups[targets[0]], children=children
        )
        self.correction_entities[f"cor-{index}"] = entity
        return TransactionSpec(name=f"cor-{index}", root=root)

    # ------------------------------------------------------------------
    # Oracles (used by the analysis package)
    # ------------------------------------------------------------------

    def entity_of_inquiry(self, name: str) -> int:
        """Recover the entity an inquiry transaction targeted."""
        return int(name.rsplit(":", 1)[1])

    def committed_mask(self, history, entity: int,
                       max_version: typing.Optional[int] = None) -> int:
        """Bitmask of committed recording transactions on ``entity``
        (optionally only those with version <= ``max_version``)."""
        mask = 0
        for name, (ent, amount) in self.update_amounts.items():
            if ent != entity:
                continue
            record = history.txns.get(name)
            if record is None or record.aborted:
                continue
            if max_version is not None and (
                record.version is None or record.version > max_version
            ):
                continue
            mask |= amount
        return mask
