"""The generic data-recording workload (Section 6).

Data recording systems "record data by inserting new data observations into
a database, and simultaneously update summaries ... derived from the
recorded data".  This module generates exactly that shape:

* **Recording transactions** (well-behaved updates): for one *entity*
  (a patient, a phone account, a SKU), insert an observation into the
  entity's per-node log and increment the entity's per-node summary, on
  every node the entity spans — a multi-node transaction tree rooted at one
  of the entity's nodes.
* **Inquiry transactions** (read-only): read the entity's summary on every
  node it spans (the "customer enquiry" that must never see a partial
  visit).
* **Audit transactions** (read-only): read the summaries of many entities
  (the "bookkeeping" query).
* **Correction transactions** (non-commuting, optional): overwrite an
  entity's summary on its nodes — the non-well-behaved updates NC3V exists
  for.

Amount modes:

* ``"money"`` — realistic uniformly sampled charges (benchmark runs).
* ``"bitmask"`` — each recording transaction adds a distinct power of two
  to every summary it touches.  The amount doubles as a *transaction id
  embedded in the data*: any later read's value decomposes uniquely into
  the set of transactions it reflects, which gives the analysis package an
  exact fractured-read and snapshot-consistency oracle (see
  :mod:`repro.analysis.serializability`).
"""

from __future__ import annotations

import bisect
import dataclasses
import typing

from repro.errors import ReproError
from repro.sim.distributions import RngRegistry
from repro.storage.values import Assign, Increment, Record
from repro.txn.spec import ReadOp, SubtxnSpec, TransactionSpec, WriteOp


def balance_key(entity: int):
    """Summary data item of an entity (same key string on each node)."""
    return f"bal:{entity}"


def log_key(entity: int):
    """Observation log data item of an entity."""
    return f"log:{entity}"


@dataclasses.dataclass
class RecordingConfig:
    """Shape of a data-recording workload.

    Attributes:
        nodes: Database nodes.
        entities: Number of distinct entities.
        span: Nodes per entity (the multi-node fan-out of its records).
        amount_mode: ``"money"`` or ``"bitmask"`` (see module docstring).
        charge_low/charge_high: Charge range for ``"money"`` mode.
        with_observations: Also insert :class:`Record` observations (doubles
            the write ops per node).
        audit_entities: Entities read by one audit transaction.
        abort_fraction: Fraction of recording transactions that abort at
            their last subtransaction (exercises compensation).
        zipf: Hot-key skew exponent.  ``0`` keeps the historic uniform
            entity choice (bit-identical to older runs); ``s > 0`` draws
            entity ``e`` with probability proportional to ``1/(e+1)**s``
            (entity 0 hottest) — the realistic shape for volume runs,
            where a few accounts absorb most traffic.
    """

    nodes: typing.Sequence[str]
    entities: int = 50
    span: int = 2
    amount_mode: str = "money"
    charge_low: float = 5.0
    charge_high: float = 500.0
    with_observations: bool = True
    audit_entities: int = 10
    abort_fraction: float = 0.0
    zipf: float = 0.0

    def __post_init__(self):
        if self.span < 1 or self.span > len(self.nodes):
            raise ReproError(
                f"entity span {self.span} invalid for {len(self.nodes)} nodes"
            )
        if self.amount_mode not in ("money", "bitmask"):
            raise ReproError(f"unknown amount mode: {self.amount_mode!r}")
        if self.zipf < 0:
            raise ReproError(f"zipf exponent must be >= 0: {self.zipf}")


class RecordingWorkload:
    """Generator of recording/inquiry/audit/correction transactions."""

    def __init__(self, config: RecordingConfig, rngs: RngRegistry):
        self.config = config
        self.rngs = rngs
        self._rng = rngs.stream("workload.recording")
        #: entity -> ordered list of nodes its records live on.
        self.entity_nodes: typing.Dict[int, typing.List[str]] = {}
        nodes = list(config.nodes)
        for entity in range(config.entities):
            start = self._rng.randrange(len(nodes))
            self.entity_nodes[entity] = [
                nodes[(start + i) % len(nodes)] for i in range(config.span)
            ]
        #: Cumulative Zipf weights over entities (None when uniform).
        self._zipf_cumulative: typing.Optional[typing.List[float]] = None
        if config.zipf > 0:
            total = 0.0
            cumulative = []
            for entity in range(config.entities):
                total += 1.0 / (entity + 1) ** config.zipf
                cumulative.append(total)
            self._zipf_cumulative = cumulative
        #: per-entity counter for bitmask amounts.
        self._entity_txn_counter: typing.Dict[int, int] = {}
        #: Whether to retain per-update ground truth.  The rolling auditor
        #: consumes entries as updates retire; with no auditor attached a
        #: streaming run sets this False so the dict cannot grow with run
        #: length.
        self.track_amounts = True
        #: (name) -> (entity, amount) for ground-truth bookkeeping.
        self.update_amounts: typing.Dict[str, typing.Tuple[int, int]] = {}
        #: correction name -> entity it overwrote.  Corrected entities no
        #: longer decompose as bitmasks, so the snapshot oracle skips them.
        self.correction_entities: typing.Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Initial data
    # ------------------------------------------------------------------

    def install(self, system) -> None:
        """Load zero balances and empty logs for every entity."""
        for entity, nodes in self.entity_nodes.items():
            for node in nodes:
                system.load(node, balance_key(entity), 0)
                system.load(node, log_key(entity), ())

    # ------------------------------------------------------------------
    # Transaction builders
    # ------------------------------------------------------------------

    def _pick_entity(self) -> int:
        if self._zipf_cumulative is None:
            return self._rng.randrange(self.config.entities)
        target = self._rng.random() * self._zipf_cumulative[-1]
        index = bisect.bisect_right(self._zipf_cumulative, target)
        return min(index, self.config.entities - 1)

    def _amount(self, entity: int):
        if self.config.amount_mode == "bitmask":
            k = self._entity_txn_counter.get(entity, 0)
            self._entity_txn_counter[entity] = k + 1
            return 1 << k
        return round(self._rng.uniform(self.config.charge_low,
                                       self.config.charge_high), 2)

    def make_recording(self, index: int) -> TransactionSpec:
        """A well-behaved multi-node recording transaction."""
        entity = self._pick_entity()
        nodes = self.entity_nodes[entity]
        amount = self._amount(entity)
        name = f"rec-{index}"
        if self.track_amounts:
            self.update_amounts[name] = (entity, amount)
        abort = (
            self.config.abort_fraction > 0
            and self._rng.random() < self.config.abort_fraction
        )

        def ops(node: str) -> list:
            result = [WriteOp(balance_key(entity), Increment(amount))]
            if self.config.with_observations:
                result.append(
                    WriteOp(log_key(entity), Record((name, node)))
                )
            return result

        children = [
            SubtxnSpec(node=node, ops=ops(node)) for node in nodes[1:]
        ]
        if abort and children:
            children[-1].abort_here = True
        root = SubtxnSpec(node=nodes[0], ops=ops(nodes[0]), children=children)
        if abort and not children:
            root.abort_here = True
        return TransactionSpec(name=name, root=root)

    def make_inquiry(self, index: int) -> TransactionSpec:
        """Read one entity's summary on every node it spans."""
        entity = self._pick_entity()
        nodes = self.entity_nodes[entity]
        children = [
            SubtxnSpec(node=node, ops=[ReadOp(balance_key(entity))])
            for node in nodes[1:]
        ]
        root = SubtxnSpec(
            node=nodes[0], ops=[ReadOp(balance_key(entity))], children=children
        )
        return TransactionSpec(name=f"inq-{index}:{entity}", root=root)

    def make_audit(self, index: int) -> TransactionSpec:
        """Read the summaries of several entities (fans out wide)."""
        count = min(self.config.audit_entities, self.config.entities)
        entities = self._rng.sample(range(self.config.entities), count)
        # Group reads by node; root at the busiest node.
        by_node: typing.Dict[str, list] = {}
        for entity in entities:
            for node in self.entity_nodes[entity]:
                by_node.setdefault(node, []).append(
                    ReadOp(balance_key(entity))
                )
        nodes_sorted = sorted(
            by_node, key=lambda n: len(by_node[n]), reverse=True
        )
        root_node = nodes_sorted[0]
        children = [
            SubtxnSpec(node=node, ops=by_node[node])
            for node in nodes_sorted[1:]
        ]
        root = SubtxnSpec(
            node=root_node, ops=by_node[root_node], children=children
        )
        return TransactionSpec(name=f"aud-{index}", root=root)

    def make_correction(self, index: int, value: typing.Optional[int] = None
                        ) -> TransactionSpec:
        """A non-commuting overwrite of one entity's summaries (NC3V)."""
        entity = self._pick_entity()
        nodes = self.entity_nodes[entity]
        new_value = value if value is not None else round(
            self._rng.uniform(0.0, 100.0), 2
        )
        children = [
            SubtxnSpec(node=node,
                       ops=[WriteOp(balance_key(entity), Assign(new_value))])
            for node in nodes[1:]
        ]
        root = SubtxnSpec(
            node=nodes[0],
            ops=[WriteOp(balance_key(entity), Assign(new_value))],
            children=children,
        )
        self.correction_entities[f"cor-{index}"] = entity
        return TransactionSpec(name=f"cor-{index}", root=root)

    # ------------------------------------------------------------------
    # Oracles (used by the analysis package)
    # ------------------------------------------------------------------

    def entity_of_inquiry(self, name: str) -> int:
        """Recover the entity an inquiry transaction targeted."""
        return int(name.rsplit(":", 1)[1])

    def committed_mask(self, history, entity: int,
                       max_version: typing.Optional[int] = None) -> int:
        """Bitmask of committed recording transactions on ``entity``
        (optionally only those with version <= ``max_version``)."""
        mask = 0
        for name, (ent, amount) in self.update_amounts.items():
            if ent != entity:
                continue
            record = history.txns.get(name)
            if record is None or record.aborted:
                continue
            if max_version is not None and (
                record.version is None or record.version > max_version
            ):
                continue
            mask |= amount
        return mask
