"""The telephone call-recording scenario (the paper's original motivation).

"AT&T's call recording system records several million calls every hour" —
switches (database nodes) record call detail observations and update
account summaries (minutes used, balance due).  A call between two parties
on different switches is a multi-node recording transaction; a customer
balance check is an inquiry; fraud sweeps are audits.

The distinguishing knobs versus the hospital scenario: many more entities,
smaller per-transaction amounts, and a high update-to-read ratio — the
regime where the paper says global concurrency control is impractical.
"""

from __future__ import annotations

import typing

from repro.sim.distributions import RngRegistry
from repro.workloads.recording import RecordingConfig, RecordingWorkload


def switch_names(count: int) -> typing.List[str]:
    """Generate switch node ids (``sw00``, ``sw01``, ...)."""
    return [f"sw{index:02d}" for index in range(count)]


class TelecomWorkload(RecordingWorkload):
    """Recording workload with telephony naming."""

    def make_call(self, index: int):
        """Record one call: detail record + summary update per switch."""
        return self.make_recording(index)

    def make_balance_check(self, index: int):
        return self.make_inquiry(index)

    def make_fraud_sweep(self, index: int):
        return self.make_audit(index)

    def make_rebill(self, index: int, value=None):
        """A rebilling correction (non-commuting overwrite)."""
        return self.make_correction(index, value)


def telecom_workload(
    switches: int = 8,
    accounts: int = 500,
    switches_per_call: int = 2,
    seed: int = 0,
    amount_mode: str = "money",
) -> TelecomWorkload:
    """Build a call-recording workload."""
    config = RecordingConfig(
        nodes=switch_names(switches),
        entities=accounts,
        span=switches_per_call,
        amount_mode=amount_mode,
        charge_low=0.05,
        charge_high=25.0,
        audit_entities=25,
    )
    return TelecomWorkload(config, RngRegistry(seed))
