"""Entry point for ``python -m repro``.

The ``__name__`` guard is load-bearing: the fleet's spawn-based workers
re-import the parent's main module, and an unguarded ``main()`` here
would recursively re-run the CLI inside every worker.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
