"""Reference pure-heap scheduler — the correctness oracle for the kernel.

:class:`ReferenceSimulator` is the original (seed) implementation of
:class:`repro.sim.simulator.Simulator`: *every* callback, zero-delay or not,
goes through a single binary heap ordered by ``(time, sequence)``.  It is
kept verbatim for two jobs:

* **Differential testing** — ``tests/test_scheduler_equivalence.py`` runs
  randomized schedules through both schedulers and asserts identical
  callback orderings and final clocks, which is what licenses the optimized
  simulator's zero-delay FIFO fast path.
* **Benchmarking** — ``benchmarks/bench_hotpath.py`` runs the end-to-end 3V
  workload on both kernels to report the fast path's speedup
  (``kernel_speedup_vs_reference`` in ``BENCH_hotpath.json``).

It is intentionally *not* optimized.  It shares the :class:`Event` /
:class:`Process` machinery with the real simulator, so it implements the
same scheduling interface (including :meth:`schedule_now`, which here is
just ``schedule(0.0, ...)`` — the seed behaviour).
"""

from __future__ import annotations

import heapq
import typing

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process


class ReferenceSimulator:
    """The seed pure-heap scheduler (see module docstring)."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._sequence = 0

    # ------------------------------------------------------------------
    # Scheduling primitives (same interface as Simulator)
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback, *args) -> None:
        """Run ``callback(*args)`` after ``delay`` units of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, callback, args))

    def schedule_now(self, callback, *args) -> None:
        """Seed semantics: a zero-delay heap entry at ``(now, sequence)``."""
        self._sequence += 1
        heapq.heappush(self._heap, (self.now, self._sequence, callback, args))

    def schedule_at(self, time: float, callback, *args) -> None:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"schedule_at time {time!r} is in the past ({self.now!r})"
            )
        self._sequence += 1
        heapq.heappush(self._heap, (time, self._sequence, callback, args))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value=None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Execution (verbatim seed implementation)
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback; ``False`` when drained."""
        if not self._heap:
            return False
        time, _seq, callback, args = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("event heap time went backwards")
        self.now = time
        callback(*args)
        return True

    def run(self, until: typing.Optional[float] = None) -> None:
        """Run until the heap drains or the clock reaches ``until``."""
        if until is None:
            while self.step():
                pass
            return
        if until < self.now:
            raise SimulationError(f"run until {until!r} is in the past ({self.now!r})")
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self.now = until

    def run_until_triggered(self, event: Event, limit: float = float("inf")) -> None:
        """Run until ``event`` triggers (seed error semantics)."""
        while not event.triggered:
            if not self._heap:
                raise SimulationError("simulation drained before event triggered")
            if self._heap[0][0] > limit:
                raise SimulationError(f"event not triggered by time limit {limit!r}")
            self.step()

    def peek_time(self) -> typing.Optional[float]:
        """Simulated time of the next scheduled callback (``None`` if idle)."""
        return self._heap[0][0] if self._heap else None

    @property
    def pending_count(self) -> int:
        return len(self._heap)

    @property
    def scheduled_count(self) -> int:
        return self._sequence
