"""Events for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.  Events
follow a small subset of the SimPy protocol: an event is created untriggered,
is eventually *succeeded* (with an optional value) or *failed* (with an
exception), and then runs its callbacks exactly once.  Waiting on an already
triggered event resumes the waiter immediately (at the current simulation
time, in deterministic FIFO order).

All event classes declare ``__slots__``: events are the single most
frequently allocated object in a simulation (every message hand-off, timer,
and process resume creates at least one), and slotted instances both
allocate faster and make the attribute loads in the trigger path cheaper.
"""

from __future__ import annotations

import typing

from repro._accel import mypyc_attr
from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator

__all__ = ["Event", "Timeout", "Condition", "AllOf", "AnyOf"]

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING: typing.Final[object] = object()


@mypyc_attr(allow_interpreted_subclasses=True)
class Event:
    """A one-shot occurrence in simulated time.

    Interpreted code subclasses Event even under a fully compiled build:
    the pure body of :mod:`repro.sim.process` always executes (its accel
    hook runs last), so ``class Process(Event)`` sees whatever Event the
    already-swapped events namespace exports — the ``mypyc_attr`` escape
    hatch keeps that legal when it is the compiled one.  Timeout,
    Condition, AllOf, and AnyOf have no interpreted subclasses (their
    only subclasses live in this module, defined before any swap), so
    they stay fully native.

    Args:
        sim: The owning simulator.

    Attributes:
        callbacks: Functions invoked with the event once it triggers.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_scheduled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: typing.List[typing.Callable[["Event"], None]] = []
        self._value: typing.Any = _PENDING
        self._exception: typing.Optional[BaseException] = None
        self._scheduled: bool = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been succeeded or failed."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def ok(self) -> bool:
        """Whether the event triggered successfully (no exception)."""
        return self._value is not _PENDING and self._exception is None

    @property
    def exception(self) -> typing.Optional[BaseException]:
        """The exception the event failed with (``None`` otherwise).

        Lets a waiter that caught an exception at its ``yield`` tell
        whether it came from the awaited event's failure (instance
        identity) or was thrown into the waiter itself (e.g. its own
        ``kill()``).
        """
        return self._exception

    @property
    def value(self):
        """The value the event succeeded with.

        Raises:
            SimulationError: If the event has not triggered yet.
        """
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value=None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._value is not _PENDING or self._exception is not None:
            raise SimulationError("event succeeded twice")
        self._value = value
        if not self._scheduled:
            self._scheduled = True
            self.sim.schedule_now(self._run_callbacks)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, raised in each waiter."""
        if self._value is not _PENDING or self._exception is not None:
            raise SimulationError("event failed after trigger")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        if not self._scheduled:
            self._scheduled = True
            self.sim.schedule_now(self._run_callbacks)
        return self

    def _schedule(self) -> None:
        """Queue callback execution at the current simulation time."""
        if not self._scheduled:
            self._scheduled = True
            self.sim.schedule_now(self._run_callbacks)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(
        self, callback: typing.Callable[["Event"], None]
    ) -> None:
        """Register ``callback(event)``; runs now if already triggered."""
        if (
            self._scheduled
            and not self.callbacks
            and (self._value is not _PENDING or self._exception is not None)
        ):
            # Already dispatched: schedule the late-comer at the current time
            # so ordering stays deterministic.
            self.sim.schedule_now(callback, self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers automatically after a simulated delay."""

    __slots__ = ("_delay",)

    def __init__(self, sim: "Simulator", delay: float, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self._delay = delay
        sim.schedule(delay, self._fire, value)

    def _fire(self, value) -> None:
        self._value = value
        self._scheduled = True
        self._run_callbacks()


class Condition(Event):
    """Base for composite events built from several child events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: typing.Sequence["Event"]):
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        if not self._events:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: "Event") -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when every child event has triggered.

    Succeeds with the list of child values (in construction order); fails as
    soon as any child fails.
    """

    __slots__ = ()

    def _on_child(self, event: "Event") -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child.value for child in self._events])


class AnyOf(Condition):
    """Triggers as soon as any child event triggers.

    Succeeds with the first triggered child event itself, so the waiter can
    inspect which one fired.
    """

    __slots__ = ()

    def _on_child(self, event: "Event") -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)
            return
        self.succeed(event)


# --- accelerated-build hook (stripped from compiled mirrors) ----------
from repro._accel import install as _accel_install  # noqa: E402

_accel_install(globals())
# --- end accelerated-build hook ---------------------------------------
