"""Generator-coroutine processes for the simulation kernel.

A process wraps a Python generator.  The generator yields :class:`Event`
instances; the process suspends until the event triggers, then resumes with
the event's value (or the event's exception raised at the yield point).  A
process is itself an :class:`Event` that triggers when the generator returns,
so processes can wait on each other.
"""

from __future__ import annotations

import typing

from repro.errors import ProcessKilled, SimulationError
from repro.sim.events import _PENDING, Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator

__all__ = ["Process"]


class Process(Event):
    """A running simulated activity driven by a generator.

    Args:
        sim: The owning simulator.
        generator: A generator yielding :class:`Event` objects.
        name: Optional label used in error messages and tracing.
    """

    __slots__ = ("name", "_generator", "_waiting_on", "_killed")

    def __init__(self, sim: "Simulator", generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: typing.Optional[Event] = None
        self._killed = False
        # Kick off at the current simulation time.
        sim.schedule_now(self._resume, None, None)

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return not self.triggered

    def kill(self) -> None:
        """Forcibly terminate the process.

        The generator receives :class:`ProcessKilled` at its current yield
        point, giving ``finally`` blocks a chance to run.  Killing a finished
        process is a no-op.
        """
        if self.triggered or self._killed:
            return
        self._killed = True
        self.sim.schedule_now(self._resume, None, ProcessKilled(self.name))

    def _on_event(self, event: Event) -> None:
        if event is not self._waiting_on:
            return  # Stale callback from an event we gave up on (kill()).
        self._waiting_on = None
        if event._exception is None:
            self._resume(event._value, None)
        else:
            self._resume(None, event._exception)

    def _resume(self, value, exception: typing.Optional[BaseException]) -> None:
        if self._value is not _PENDING or self._exception is not None:
            return  # Already finished (e.g. killed while a resume was queued).
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except ProcessKilled as killed:
            self.fail(killed)
            return
        except BaseException as exc:
            # Crash loudly: an unhandled error inside a simulated process is
            # a bug in the model, not a simulation outcome.
            self.fail(exc)
            raise
        if not isinstance(target, Event):
            self._generator.close()
            error = SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event"
            )
            self.fail(error)
            raise error
        self._waiting_on = target
        target.add_callback(self._on_event)


# --- accelerated-build hook (stripped from compiled mirrors) ----------
from repro._accel import install as _accel_install  # noqa: E402

_accel_install(globals())
# --- end accelerated-build hook ---------------------------------------
