"""Shared resources for simulated processes.

Two primitives cover everything the library needs:

* :class:`Resource` — a counted semaphore with FIFO queuing, used to model a
  node's local executor (capacity = multiprogramming level).
* :class:`Store` — an unbounded FIFO queue of items with blocking ``get``,
  used as a process mailbox for network message delivery.
"""

from __future__ import annotations

import collections
import typing

from repro.errors import SimulationError
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


class Resource:
    """A counted, FIFO-fair resource.

    Args:
        sim: The owning simulator.
        capacity: Number of simultaneous holders allowed.

    Statistics:
        ``total_waits`` counts requests that could not be granted immediately,
        and ``total_wait_time`` accumulates their queueing delay — the raw
        material for the paper's "never delayed" claims.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_queue", "total_waits",
                 "total_wait_time")

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._queue: collections.deque = collections.deque()
        self.total_waits = 0
        self.total_wait_time = 0.0

    @property
    def in_use(self) -> int:
        """Number of currently granted (unreleased) requests."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for capacity."""
        return len(self._queue)

    def request(self) -> Event:
        """Ask for one unit of capacity.

        Returns:
            An event that triggers when the unit is granted.  The caller must
            eventually call :meth:`release`.
        """
        event = Event(self.sim)
        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
            event.succeed()
        else:
            self.total_waits += 1
            self._queue.append((event, self.sim.now))
        return event

    def release(self) -> None:
        """Return one unit of capacity, waking the longest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._queue:
            event, enqueued_at = self._queue.popleft()
            self.total_wait_time += self.sim.now - enqueued_at
            event.succeed()
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO queue with blocking ``get`` — a process mailbox."""

    __slots__ = ("sim", "_items", "_getters", "total_puts", "_frozen")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._items: collections.deque = collections.deque()
        self._getters: collections.deque = collections.deque()
        self.total_puts = 0
        self._frozen = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> None:
        """Stop handing items to getters; ``put`` queues silently.

        Used to model a crashed node: its mailbox keeps accepting messages
        (so no message is ever lost by the transport), but the node's main
        loop is starved until :meth:`thaw`.  Killing the loop process
        instead would strand its pending getter event, which would swallow
        the next ``put`` — freezing avoids that hazard entirely.
        """
        self._frozen = True

    def thaw(self) -> None:
        """Resume delivery, re-pairing queued items with waiting getters."""
        self._frozen = False
        while self._items and self._getters:
            self._getters.popleft().succeed(self._items.popleft())

    def put(self, item) -> None:
        """Deposit an item; wakes the oldest waiting getter if any."""
        self.total_puts += 1
        if self._getters and not self._frozen:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Take the oldest item, waiting if the store is empty.

        Returns:
            An event whose value is the retrieved item.
        """
        event = Event(self.sim)
        if self._items and not self._frozen:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def abandon_getters(self) -> None:
        """Discard every waiting getter (their events never trigger).

        The teardown primitive for killing a consumer process: a killed
        process's pending getter would otherwise stay queued and swallow
        the next ``put`` — the item would succeed a dead event and be lost.
        Callers kill the consumer, abandon its getters, and (typically)
        freeze the store until a successor takes over.
        """
        self._getters.clear()

    def take_nowait(self):
        """Take the oldest queued item without blocking.

        Returns:
            The item, or ``None`` when the store is empty (or frozen).
            This is the mailbox-drain primitive for batched delivery: a
            consumer that just woke from :meth:`get` empties the backlog
            synchronously instead of paying one event + one scheduled
            callback per queued item.
        """
        if self._items and not self._frozen:
            return self._items.popleft()
        return None

    def drain(self) -> list:
        """Remove and return all currently queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items
