"""The discrete-event simulator core.

:class:`Simulator` owns the virtual clock and the event queues.  Everything
in the library — network delivery, transaction execution, version
advancement — runs as callbacks or generator processes scheduled here, which
makes every simulation single-threaded, deterministic, and reproducible from
a seed.

Two queues, one ordering
------------------------

Callbacks are logically ordered by ``(time, sequence_number)``: ties at the
same simulated time are broken by scheduling order, never by hash or
identity.  Physically the simulator keeps two structures:

* a binary heap for callbacks scheduled with a *positive* delay, and
* a plain FIFO deque for *zero-delay* callbacks (the overwhelmingly common
  case: every event trigger, process resume, and mailbox hand-off is a
  ``schedule(0.0, ...)``).

The split is an optimization only — it cannot change execution order.  A
zero-delay callback enters the deque at the current time with a fresh
(maximal) sequence number, and the clock never advances while the deque is
non-empty, so every deque entry's timestamp is exactly ``now``.  The only
candidates that could legally run before the deque head are heap entries
at the same time with a *smaller* sequence number (scheduled earlier with a
positive delay that has just come due); :meth:`step` checks exactly that.
``tests/test_scheduler_equivalence.py`` differential-tests this against a
reference pure-heap scheduler (:class:`repro.sim.reference.ReferenceSimulator`)
on randomized schedules.
"""

from __future__ import annotations

import typing
from collections import deque
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator.

    Scheduled callbacks are ordered by ``(time, sequence_number)`` so ties are
    broken by scheduling order, never by hash or identity.

    Example:
        >>> sim = Simulator()
        >>> def hello():
        ...     yield sim.timeout(5.0)
        ...     return sim.now
        >>> proc = sim.process(hello())
        >>> sim.run()
        >>> proc.value
        5.0
    """

    __slots__ = ("now", "_heap", "_fifo", "_sequence")

    def __init__(self):
        self.now: float = 0.0
        #: (time, sequence, callback, args) entries with time > scheduling now.
        self._heap: typing.List[tuple] = []
        #: (sequence, callback, args) entries due at the current time.
        self._fifo: typing.Deque[tuple] = deque()
        self._sequence: int = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback, *args) -> None:
        """Run ``callback(*args)`` after ``delay`` units of simulated time."""
        if delay <= 0.0:
            if delay < 0.0:
                raise SimulationError(f"negative delay: {delay!r}")
            self._sequence += 1
            self._fifo.append((self._sequence, callback, args))
            return
        self._sequence += 1
        heappush(self._heap, (self.now + delay, self._sequence, callback, args))

    def schedule_now(self, callback, *args) -> None:
        """Run ``callback(*args)`` at the current time, after already pending
        same-time callbacks (identical to ``schedule(0.0, ...)``, minus the
        delay check)."""
        self._sequence += 1
        self._fifo.append((self._sequence, callback, args))

    def schedule_at(self, time: float, callback, *args) -> None:
        """Run ``callback(*args)`` at absolute simulated ``time``.

        Equivalent to ``schedule(time - now, ...)`` but without the
        float round-trip: the heap entry carries ``time`` exactly, so a
        caller keying state on a delivery timestamp (the network's batch
        coalescing) sees the identical value when the callback fires.
        """
        if time <= self.now:
            if time < self.now:
                raise SimulationError(
                    f"schedule_at time {time!r} is in the past ({self.now!r})"
                )
            self._sequence += 1
            self._fifo.append((self._sequence, callback, args))
            return
        self._sequence += 1
        heappush(self._heap, (time, self._sequence, callback, args))

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value=None) -> Timeout:
        """Create an event that triggers after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator, name: str = "") -> Process:
        """Start a generator as a simulated process."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` triggers."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback.

        Returns:
            ``False`` if nothing was left to simulate.
        """
        fifo = self._fifo
        heap = self._heap
        if fifo:
            # Every fifo entry is due at exactly `now`; a heap entry beats it
            # only when due at the same time with an older sequence number.
            if heap:
                head = heap[0]
                if head[0] <= self.now and head[1] < fifo[0][0]:
                    heappop(heap)
                    head[2](*head[3])
                    return True
            _seq, callback, args = fifo.popleft()
            callback(*args)
            return True
        if not heap:
            return False
        time, _seq, callback, args = heappop(heap)
        if time < self.now:
            raise SimulationError("event heap time went backwards")
        self.now = time
        callback(*args)
        return True

    def run(self, until: typing.Optional[float] = None) -> None:
        """Run until the queues drain or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, mirroring SimPy semantics.
        """
        # The body inlines step() with the queues and heap functions bound to
        # locals: this loop is the single hottest path of every simulation.
        fifo = self._fifo
        heap = self._heap
        fifo_pop = fifo.popleft
        if until is None:
            while True:
                if fifo:
                    if heap:
                        head = heap[0]
                        if head[0] <= self.now and head[1] < fifo[0][0]:
                            heappop(heap)
                            head[2](*head[3])
                            continue
                    _seq, callback, args = fifo_pop()
                    callback(*args)
                elif heap:
                    time, _seq, callback, args = heappop(heap)
                    if time < self.now:
                        raise SimulationError("event heap time went backwards")
                    self.now = time
                    callback(*args)
                else:
                    return
        if until < self.now:
            raise SimulationError(f"run until {until!r} is in the past ({self.now!r})")
        while True:
            if fifo:
                if heap:
                    head = heap[0]
                    if head[0] <= self.now and head[1] < fifo[0][0]:
                        heappop(heap)
                        head[2](*head[3])
                        continue
                _seq, callback, args = fifo_pop()
                callback(*args)
            elif heap and heap[0][0] <= until:
                time, _seq, callback, args = heappop(heap)
                if time < self.now:
                    raise SimulationError("event heap time went backwards")
                self.now = time
                callback(*args)
            else:
                break
        self.now = until

    def run_until_triggered(self, event: Event, limit: float = float("inf")) -> None:
        """Run until ``event`` triggers.

        Args:
            event: The event to wait for.
            limit: Safety bound on simulated time.  When the next scheduled
                callback lies beyond ``limit``, the clock is advanced to
                exactly ``limit`` (consistent with ``run(until=...)``) and a
                :class:`SimulationError` reporting the pending callback count
                is raised.

        Raises:
            SimulationError: If the queues drain or ``limit`` passes first.
        """
        while not event.triggered:
            if not self._fifo:
                if not self._heap:
                    raise SimulationError(
                        "simulation drained before event triggered"
                    )
                if self._heap[0][0] > limit:
                    if limit > self.now:
                        self.now = limit
                    raise SimulationError(
                        f"event not triggered by time limit {limit!r} "
                        f"({self.pending_count} callbacks pending)"
                    )
            self.step()

    def peek_time(self) -> typing.Optional[float]:
        """Simulated time of the next scheduled callback (``None`` if idle)."""
        if self._fifo:
            return self.now
        if self._heap:
            return self._heap[0][0]
        return None

    @property
    def pending_count(self) -> int:
        """Number of callbacks currently scheduled."""
        return len(self._heap) + len(self._fifo)

    @property
    def scheduled_count(self) -> int:
        """Total callbacks ever scheduled — the benchmarks' event counter."""
        return self._sequence


# --- accelerated-build hook (stripped from compiled mirrors) ----------
from repro._accel import install as _accel_install  # noqa: E402

_accel_install(globals())
# --- end accelerated-build hook ---------------------------------------
