"""The discrete-event simulator core.

:class:`Simulator` owns the virtual clock and the event heap.  Everything in
the library — network delivery, transaction execution, version advancement —
runs as callbacks or generator processes scheduled here, which makes every
simulation single-threaded, deterministic, and reproducible from a seed.
"""

from __future__ import annotations

import heapq
import typing

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process


class Simulator:
    """A deterministic discrete-event simulator.

    Scheduled callbacks are ordered by ``(time, sequence_number)`` so ties are
    broken by scheduling order, never by hash or identity.

    Example:
        >>> sim = Simulator()
        >>> def hello():
        ...     yield sim.timeout(5.0)
        ...     return sim.now
        >>> proc = sim.process(hello())
        >>> sim.run()
        >>> proc.value
        5.0
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._sequence = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback, *args) -> None:
        """Run ``callback(*args)`` after ``delay`` units of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, callback, args))

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value=None) -> Timeout:
        """Create an event that triggers after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator, name: str = "") -> Process:
        """Start a generator as a simulated process."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` triggers."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback.

        Returns:
            ``False`` if the heap was empty (nothing left to simulate).
        """
        if not self._heap:
            return False
        time, _seq, callback, args = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("event heap time went backwards")
        self.now = time
        callback(*args)
        return True

    def run(self, until: typing.Optional[float] = None) -> None:
        """Run until the heap drains or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, mirroring SimPy semantics.
        """
        if until is None:
            while self.step():
                pass
            return
        if until < self.now:
            raise SimulationError(f"run until {until!r} is in the past ({self.now!r})")
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self.now = until

    def run_until_triggered(self, event: Event, limit: float = float("inf")) -> None:
        """Run until ``event`` triggers.

        Args:
            event: The event to wait for.
            limit: Safety bound on simulated time.

        Raises:
            SimulationError: If the heap drains or ``limit`` passes first.
        """
        while not event.triggered:
            if not self._heap:
                raise SimulationError("simulation drained before event triggered")
            if self._heap[0][0] > limit:
                raise SimulationError(f"event not triggered by time limit {limit!r}")
            self.step()

    @property
    def pending_count(self) -> int:
        """Number of callbacks currently scheduled."""
        return len(self._heap)
