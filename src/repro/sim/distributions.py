"""Seeded random distributions and named RNG streams.

Every stochastic choice in a simulation draws from a named stream derived
from the experiment's master seed, so adding a new source of randomness does
not perturb the draws of existing ones — a prerequisite for meaningful
paired comparisons between protocols on "the same" workload.
"""

from __future__ import annotations

import math
import random
import typing
import zlib

from repro.errors import SimulationError


class Distribution:
    """A positive-valued random distribution bound to an RNG stream."""

    def sample(self, rng: random.Random) -> float:  # pragma: no cover
        raise NotImplementedError

    def mean(self) -> float:  # pragma: no cover
        raise NotImplementedError


class Constant(Distribution):
    """Always returns the same value (degenerate distribution)."""

    def __init__(self, value: float):
        if value < 0:
            raise SimulationError(f"constant distribution must be >= 0: {value}")
        self.value = float(value)

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.value})"


class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise SimulationError(f"invalid uniform bounds: [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class Exponential(Distribution):
    """Exponential with the given mean (memoryless; Poisson inter-arrivals)."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise SimulationError(f"exponential mean must be > 0: {mean}")
        self._mean = float(mean)

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean})"


class LogNormal(Distribution):
    """Log-normal parameterised by its own mean and sigma of ``log(X)``.

    Heavy-tailed; a good model for wide-area message latencies where
    occasional stragglers matter (they exercise the paper's dual-write path).
    """

    def __init__(self, mean: float, sigma: float = 0.5):
        if mean <= 0:
            raise SimulationError(f"lognormal mean must be > 0: {mean}")
        if sigma <= 0:
            raise SimulationError(f"lognormal sigma must be > 0: {sigma}")
        self._mean = float(mean)
        self.sigma = float(sigma)
        # Solve E[X] = exp(mu + sigma^2/2) for mu.
        self.mu = math.log(mean) - sigma * sigma / 2.0

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"LogNormal(mean={self._mean}, sigma={self.sigma})"


class RngRegistry:
    """A registry of independent, named ``random.Random`` streams.

    Each stream's seed is derived from the master seed and the stream name
    via CRC32, so streams are stable across runs and independent of the
    order in which they are first requested.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: typing.Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream with the given name."""
        if name not in self._streams:
            derived = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def sample(self, name: str, distribution: Distribution) -> float:
        """Draw one sample from ``distribution`` using the named stream."""
        return distribution.sample(self.stream(name))
