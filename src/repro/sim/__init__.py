"""Deterministic discrete-event simulation kernel.

This subpackage is a small, self-contained simulation framework in the style
of SimPy: a :class:`~repro.sim.simulator.Simulator` owns the virtual clock,
generator-based :class:`~repro.sim.process.Process` objects model concurrent
activities, and :class:`~repro.sim.resources.Resource`/:class:`~repro.sim.resources.Store`
model contention and mailboxes.  All randomness flows through named
:class:`~repro.sim.distributions.RngRegistry` streams for reproducibility.
"""

from repro.sim.distributions import (
    Constant,
    Distribution,
    Exponential,
    LogNormal,
    RngRegistry,
    Uniform,
)
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.reference import ReferenceSimulator
from repro.sim.resources import Resource, Store
from repro.sim.simulator import Simulator

__all__ = [
    "AllOf",
    "AnyOf",
    "Constant",
    "Distribution",
    "Event",
    "Exponential",
    "LogNormal",
    "Process",
    "ReferenceSimulator",
    "Resource",
    "RngRegistry",
    "Simulator",
    "Store",
    "Timeout",
    "Uniform",
]
