"""Runtime checks for the paper's Section 4.4 properties.

These are executable versions of the correctness properties the paper
states for the 3V algorithm.  The invariant checker can be called at any
instant of a simulation (tests sprinkle it densely; benchmarks sample it),
and raises :class:`~repro.errors.InvariantViolation` with a precise
description when a property fails.

Checked properties:

1. While no advancement runs: exactly the steady-state version layout —
   at most two versions per item, identical ``vr`` everywhere, identical
   ``vu`` everywhere.
2. While an advancement runs: at most three versions per item; two nodes
   differing on ``vu`` agree on ``vr`` and vice versa.
3. Always: ``vr < vu <= vr + 2`` on every node.
"""

from __future__ import annotations

import typing

from repro.errors import InvariantViolation

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import ThreeVSystem


def check_version_bounds(system: "ThreeVSystem") -> None:
    """Property 3: ``vr < vu <= vr + 2`` on every node."""
    for node in system.nodes.values():
        if not (node.vr < node.vu <= node.vr + 2):
            raise InvariantViolation(
                f"node {node.node_id}: version bound violated "
                f"(vr={node.vr}, vu={node.vu})"
            )


def check_version_counts(system: "ThreeVSystem") -> None:
    """Properties 1a / 2a: never more than three live versions per item
    (and never more than two outside advancement)."""
    limit = 3 if system.coordinator.running else 2
    for node in system.nodes.values():
        for key in node.store.keys():
            versions = node.store.versions(key)
            if len(versions) > limit:
                raise InvariantViolation(
                    f"node {node.node_id}: item {key!r} has "
                    f"{len(versions)} live versions {versions} "
                    f"(limit {limit}, advancement "
                    f"{'running' if system.coordinator.running else 'idle'})"
                )
        if node.store.max_live_versions > 3:
            raise InvariantViolation(
                f"node {node.node_id}: version high-water mark "
                f"{node.store.max_live_versions} exceeds 3"
            )


def check_version_agreement(system: "ThreeVSystem") -> None:
    """Properties 1b / 1c / 2b: version-number agreement across nodes."""
    nodes = list(system.nodes.values())
    if not system.coordinator.running:
        read_versions = {node.vr for node in nodes}
        update_versions = {node.vu for node in nodes}
        if len(read_versions) > 1:
            raise InvariantViolation(
                f"read versions differ outside advancement: "
                f"{ {n.node_id: n.vr for n in nodes} }"
            )
        if len(update_versions) > 1:
            raise InvariantViolation(
                f"update versions differ outside advancement: "
                f"{ {n.node_id: n.vu for n in nodes} }"
            )
        return
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            if a.vu != b.vu and a.vr != b.vr:
                raise InvariantViolation(
                    f"nodes {a.node_id}/{b.node_id} differ on both vu "
                    f"({a.vu} vs {b.vu}) and vr ({a.vr} vs {b.vr})"
                )


def check_all(system: "ThreeVSystem") -> None:
    """Run every instantaneous invariant check."""
    check_version_bounds(system)
    check_version_counts(system)
    check_version_agreement(system)


class InvariantMonitor:
    """A process that runs :func:`check_all` on a fixed cadence.

    Attach one in tests and long benchmarks to turn a silent protocol bug
    into an immediate, located failure.
    """

    def __init__(self, system: "ThreeVSystem", every: float = 0.25):
        self.system = system
        self.every = every
        self.checks_run = 0
        self._process = system.sim.process(self._run(), name="invariant-monitor")

    def _run(self):
        while True:
            yield self.system.sim.timeout(self.every)
            check_all(self.system)
            self.checks_run += 1

    def stop(self) -> None:
        self._process.kill()
