"""Version advancement and garbage collection (Section 4.3).

The coordinator advances versions in four phases, all asynchronous with
user transactions:

1. **Switching to a new update version** — broadcast ``start-advancement``
   with ``vu_new = vu_old + 1``; every node advances ``vu`` and acks.
2. **Updates phase-out** — poll the request/completion counters of
   ``vu_old`` until they match for every node pair.
3. **Switching to a new read version** — broadcast ``read-advance`` with
   ``vr_new = vr_old + 1``; every node advances ``vr`` and acks.
4. **Garbage collection** — poll the counters of ``vr_old`` until the old
   queries drain, then broadcast ``garbage-collect``.

Quiescence detection
--------------------

The paper's counters are read "in an asynchronous manner", citing the
stable-property detection literature [Chandy-Lamport 85, Helary et al. 87,
Chandy-Misra 86].  A single interleaved read of ``R`` and ``C`` is *not*
sound: between reading ``R`` at one node and ``C`` at another, a new
request can be issued and completed, making the counters match while an
older subtransaction is still in flight.  The sound rule (Mattern's
four-counter / two-wave method) is implemented by
:class:`TwoWaveDetector`: read **all completion counters first**, then all
request counters; if ``C(wave 1) == R(wave 2)`` per pair, every request
had completed by the end of wave 1 — and because no new root
subtransaction can join an old version once Phase 1 acks are in,
quiescence is a stable property and stays true.

The production two-wave detector reads *aggregate totals* — one scalar
per node per wave ("CT" then "RT") instead of a full per-peer row — and
compares cluster-wide sums (:func:`repro.storage.counters.aggregate_quiescent`),
making each poll O(nodes) instead of O(nodes²).  The ordering argument
carries over unchanged: with completions read first, ``C_pq <= R_pq``
per pair, so the scalar sums match iff every pair matches.
:class:`TwoWaveScanDetector` keeps the original full-row scan as the
debug/differential oracle, and :class:`TwoWaveVerifyDetector` runs both
in one wave pair and cross-checks their verdicts.

The unsound alternatives are provided for the C7 ablation:
:class:`InterleavedDetector` (single combined wave) and
:class:`ActivePollDetector` (the naive "is any transaction running on v?"
check the paper warns about in Section 2.2, blind to in-transit children).
"""

from __future__ import annotations

import typing

from repro.errors import AdvancementInProgress, ProtocolError
from repro.net.message import MessageKind
from repro.net.network import Network
from repro.sim.events import Event
from repro.sim.simulator import Simulator
from repro.storage.counters import aggregate_quiescent, quiescent
from repro.storage.wal import JournaledCoordinatorState
from repro.txn.history import AdvancementRecord, History

COORDINATOR_ID = "coordinator"


class QuiescenceDetector:
    """Strategy deciding when all transactions of a version have finished."""

    name = "abstract"

    def __init__(self, coordinator: "AdvancementCoordinator"):
        self.coordinator = coordinator

    def check(self, version: int):  # generator
        """Yield simulation events; return ``True`` when quiescent."""
        raise NotImplementedError  # pragma: no cover


class TwoWaveDetector(QuiescenceDetector):
    """Sound detector: completions wave strictly before requests wave.

    Production variant: each wave reads one *aggregate total* per node
    ("CT" then "RT") and compares cluster-wide sums — O(nodes) per poll.
    Same message count and wave order as the full-row scan, so it is a
    drop-in sound replacement (see the module docstring for the argument).
    """

    name = "two-wave"

    def check(self, version: int):
        completions = yield from self.coordinator.gather_counters(version, "CT")
        requests = yield from self.coordinator.gather_counters(version, "RT")
        return aggregate_quiescent(requests, completions)


class TwoWaveScanDetector(QuiescenceDetector):
    """Sound detector, full O(nodes²) per-peer row scan.

    The original implementation, retained as the debug/differential
    oracle for :class:`TwoWaveDetector`'s aggregate check.
    """

    name = "two-wave-scan"

    def check(self, version: int):
        completions = yield from self.coordinator.gather_counters(version, "C")
        requests = yield from self.coordinator.gather_counters(version, "R")
        return quiescent(requests, completions)


class TwoWaveVerifyDetector(QuiescenceDetector):
    """Sound detector running the aggregate check *and* the row scan on
    the same wave pair, raising if they ever disagree.

    Each wave carries ``(total, rows)`` per node ("CV" then "RV"); the
    node asserts snapshot consistency (``total == sum(rows)``) is checked
    here too, so a divergence pinpoints whether the incremental totals or
    the aggregation argument broke.  Debug tool — one message per node
    per wave like the others, but with O(nodes²) payload.
    """

    name = "two-wave-verify"

    def check(self, version: int):
        completions = yield from self.coordinator.gather_counters(version, "CV")
        requests = yield from self.coordinator.gather_counters(version, "RV")
        req_totals = {}
        req_rows = {}
        for node_id, (total, rows) in requests.items():
            if total != sum(rows.values()):
                raise ProtocolError(
                    f"node {node_id}: request total {total} != row sum "
                    f"{sum(rows.values())} for version {version}"
                )
            req_totals[node_id] = total
            req_rows[node_id] = rows
        comp_totals = {}
        comp_rows = {}
        for node_id, (total, rows) in completions.items():
            if total != sum(rows.values()):
                raise ProtocolError(
                    f"node {node_id}: completion total {total} != row sum "
                    f"{sum(rows.values())} for version {version}"
                )
            comp_totals[node_id] = total
            comp_rows[node_id] = rows
        aggregate = aggregate_quiescent(req_totals, comp_totals)
        scan = quiescent(req_rows, comp_rows)
        if aggregate != scan:
            raise ProtocolError(
                f"quiescence divergence for version {version}: "
                f"aggregate={aggregate} scan={scan}"
            )
        return aggregate


class InterleavedDetector(QuiescenceDetector):
    """UNSOUND (ablation): reads R and C in a single combined wave, so a
    request can slip between the two reads and hide an in-flight
    subtransaction.  Kept to demonstrate why the wave order matters."""

    name = "interleaved"

    def check(self, version: int):
        requests = yield from self.coordinator.gather_counters(version, "R")
        completions = yield from self.coordinator.gather_counters(version, "C")
        return quiescent(requests, completions)


class ActivePollDetector(QuiescenceDetector):
    """UNSOUND (ablation): Section 2.2's strawman — ask every node whether
    any subtransaction of the version is currently running.  "A
    subtransaction running on version 1 on node p might have sent a child
    subtransaction to node q and committed on node p; while the child is
    in transit, no server may be running any transactions against
    version 1" — this detector declares quiescence in exactly that window.
    """

    name = "active-poll"

    def check(self, version: int):
        active = yield from self.coordinator.gather_counters(version, "ACTIVE")
        return all(count == 0 for row in active.values() for count in row.values())


DETECTORS = {
    TwoWaveDetector.name: TwoWaveDetector,
    TwoWaveScanDetector.name: TwoWaveScanDetector,
    TwoWaveVerifyDetector.name: TwoWaveVerifyDetector,
    InterleavedDetector.name: InterleavedDetector,
    ActivePollDetector.name: ActivePollDetector,
}


class AdvancementCoordinator:
    """Runs the four-phase advancement protocol over the network.

    Args:
        sim: Owning simulator.
        network: Message transport (the coordinator registers its own
            endpoint).
        node_ids: All database nodes.
        history: Where advancement phase timestamps are recorded.
        poll_interval: Delay between quiescence polls in phases 2 and 4.
        detector: Name of the quiescence detector (see :data:`DETECTORS`).
        lease_interval: When > 0, the coordinator broadcasts lease
            heartbeats (half this interval apart) so node-side standby
            monitors can take the role over deterministically when the
            lease lapses; 0 (the default) sends no heartbeat traffic at
            all, keeping default runs event-for-event identical.

    The paper assumes a distributed mutual exclusion mechanism around
    advancement.  The implemented scheme: a single *incarnation* of the
    coordinator role holds the lease at any time, every message it sends
    carries its monotone **advancement epoch**, and both the nodes and the
    coordinator fence anything stamped with an older epoch — so a dead
    incarnation's stragglers can never drive (or confuse) an advancement
    after a restart or a standby takeover.  The role's control record
    (vr, vu, epoch, in-flight wave) is write-ahead journaled via
    :class:`repro.storage.wal.JournaledCoordinatorState`; a successor
    replays it and re-runs the in-flight wave from the top, which is safe
    because every phase is idempotent: version bumps no-op at or below a
    node's current version and the RT/CT quiescence aggregates are
    monotone, so re-gathering never double-counts.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_ids: typing.Sequence[str],
        history: History,
        poll_interval: float = 1.0,
        detector: str = TwoWaveDetector.name,
        lease_interval: float = 0.0,
    ):
        self.sim = sim
        self.network = network
        self.node_ids = list(node_ids)
        self.history = history
        self.poll_interval = poll_interval
        try:
            self.detector: QuiescenceDetector = DETECTORS[detector](self)
        except KeyError:
            raise ProtocolError(f"unknown quiescence detector: {detector!r}")
        if lease_interval < 0:
            raise ProtocolError(
                f"lease_interval must be >= 0: {lease_interval}"
            )
        self.vr = 0
        self.vu = 1
        self.running = False
        self.completed_runs = 0
        #: Monotone incarnation counter stamped on every message; bumped
        #: by each recovery/takeover so stale traffic is fenceable.
        self.epoch = 1
        self.down = False
        self.crashes = 0
        self.recoveries = 0
        self.takeovers = 0
        self.lease_interval = lease_interval
        #: Node currently hosting the role after a takeover (``None``
        #: while the original dedicated endpoint holds it).
        self.host: typing.Optional[str] = None
        self.endpoint = COORDINATOR_ID
        #: Durable control record (vr/vu/epoch/in-flight wave) — what a
        #: successor incarnation replays to resume mid-protocol.
        self._durable = JournaledCoordinatorState()
        self._mailbox = network.register(COORDINATOR_ID)
        #: Drain batched mailbox wakes synchronously (one resume per
        #: batch of same-tick replies instead of one per reply).
        self._drain = network.batch_delivery
        self._process = None
        self._heartbeat_process = None
        if lease_interval > 0:
            self._heartbeat_process = sim.process(
                self._heartbeat(), name="coordinator-heartbeat"
            )

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def advance(self) -> Event:
        """Start one advancement; returns the process (an event).

        Raises:
            AdvancementInProgress: If an advancement is already running
                (the one-wave-at-a-time rule of the mutual exclusion
                scheme; a recovered incarnation resuming its in-flight
                wave counts).
            ProtocolError: If the coordinator is currently down.
        """
        if self.down:
            raise ProtocolError(
                "the advancement coordinator is down (crashed and not yet "
                "recovered or failed over)"
            )
        if self.running:
            raise AdvancementInProgress(
                f"advancement to version {self.vu + 1} already running"
            )
        self.running = True
        self._durable.begin_wave(self.vu + 1)
        self._process = self.sim.process(
            self._advance(self.vu + 1), name="advancement"
        )
        return self._process

    # ------------------------------------------------------------------
    # Crash / recovery / failover (the coordinator as a fault target)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop this incarnation of the coordinator role.

        The in-flight advancement process (if any) is killed, its
        stranded mailbox getter is abandoned (a dead getter would swallow
        the next reply), and the mailbox freezes so stragglers queue
        durably.  The journaled control record survives for the next
        incarnation — :meth:`recover` in place, or :meth:`failover` to a
        standby.
        """
        if self.down:
            raise ProtocolError("the coordinator is already down")
        self.down = True
        self.crashes += 1
        self._halt_incarnation()
        self._mailbox.freeze()

    def recover(self) -> None:
        """Restart the role in place as a new incarnation.

        Replays the durable control record, bumps the epoch (fencing every
        message the dead incarnation left in flight), thaws the mailbox,
        and — if a wave was in flight — re-runs it from the top.  A no-op
        when a standby already took the role over (the scheduled recovery
        of a superseded incarnation must not resurrect it).
        """
        if not self.down:
            return
        self.down = False
        self.recoveries += 1
        self._mailbox.thaw()
        self._resume_from_journal()

    def failover(self, node_id: str) -> None:
        """Deterministic takeover: ``node_id``'s standby assumes the role.

        The lease model is fail-stop: an incarnation that lost its lease
        stops acting, so any still-live process of the old incarnation is
        halted and its endpoint frozen (stale replies addressed to it pile
        up unread; anything re-routed to the new endpoint is fenced by
        epoch).  The new incarnation registers ``coordinator@<node_id>``,
        replays the shared journal, and resumes exactly like an in-place
        recovery.
        """
        self._halt_incarnation()
        if not self._mailbox.frozen:
            self._mailbox.freeze()
        self.down = False
        self.takeovers += 1
        self.host = node_id
        self.endpoint = f"{COORDINATOR_ID}@{node_id}"
        self._mailbox = self.network.register(self.endpoint)
        self._mailbox.thaw()
        self._resume_from_journal()

    def stop_heartbeats(self) -> None:
        """Kill the lease heartbeat process (lets the system drain)."""
        if (self._heartbeat_process is not None
                and self._heartbeat_process.is_alive):
            self._heartbeat_process.kill()
        self._heartbeat_process = None

    def _halt_incarnation(self) -> None:
        """Stop every live process of the current incarnation."""
        if self._process is not None and self._process.is_alive:
            self._process.kill()
        self._process = None
        self.stop_heartbeats()
        self._mailbox.abandon_getters()
        self.running = False

    def _resume_from_journal(self) -> None:
        """Rebuild control state from the journal and restart the wave."""
        self._durable.replay()
        state = self._durable.raw
        self.vr = state.vr
        self.vu = state.vu
        self.epoch = state.epoch + 1
        self._durable.set_epoch(self.epoch)
        if self.lease_interval > 0:
            self._heartbeat_process = self.sim.process(
                self._heartbeat(), name="coordinator-heartbeat"
            )
        if state.in_flight is not None:
            # Re-run the interrupted wave from the top; completed phases
            # degenerate to no-ops (see the class docstring).
            self.running = True
            self._process = self.sim.process(
                self._advance(state.in_flight), name="advancement"
            )

    def _heartbeat(self):
        """Broadcast the lease heartbeat (failover mode only)."""
        while True:
            self.network.broadcast_to(
                self.endpoint, self.node_ids,
                MessageKind.COORDINATOR_HEARTBEAT, (self.epoch,),
            )
            yield self.sim.timeout(self.lease_interval / 2.0)

    # ------------------------------------------------------------------
    # The four phases
    # ------------------------------------------------------------------

    def _advance(self, vu_new: int):
        epoch = self.epoch
        vu_old, vr_new, vr_old = vu_new - 1, vu_new - 1, vu_new - 2
        record = AdvancementRecord(
            new_update_version=vu_new, started=self.sim.now
        )
        self.history.advancements.append(record)
        try:
            # Phase 1: switch every node to the new update version.  A
            # resumed wave whose predecessor already committed the vu bump
            # skips straight to quiescence (phase1_done stays unset on the
            # resume record, so staleness keeps the true close time).
            if self.vu < vu_new:
                self._broadcast(MessageKind.START_ADVANCEMENT, vu_new)
                yield from self._collect_acks(
                    MessageKind.START_ADVANCEMENT_ACK, vu_new
                )
                self.vu = vu_new
                self._durable.set_vu(vu_new)
                record.phase1_done = self.sim.now

            # Phase 2: wait for vu_old to quiesce (always re-checked on a
            # resume — the aggregates are monotone, so this only waits).
            yield from self._await_quiescence(vu_old, record)
            record.phase2_done = self.sim.now

            # Phase 3: make vu_old (= vr_new) readable.
            if self.vr < vr_new:
                self._broadcast(MessageKind.READ_ADVANCE, vr_new)
                yield from self._collect_acks(
                    MessageKind.READ_ADVANCE_ACK, vr_new
                )
                self.vr = vr_new
                self._durable.set_vr(vr_new)
                record.phase3_done = self.sim.now

            # Phase 4: wait for vr_old queries to drain, then collect
            # (node-side GC is idempotent, so a resume redoes it safely).
            yield from self._await_quiescence(vr_old, record)
            self._broadcast(MessageKind.GARBAGE_COLLECT, vr_new)
            yield from self._collect_acks(
                MessageKind.GARBAGE_COLLECT_ACK, vr_new
            )
            record.gc_done = self.sim.now
            self._durable.end_wave()
            self.completed_runs += 1
        finally:
            # Kills are delivered one sim step late, so a crashed
            # incarnation's teardown can run after its successor already
            # restarted the wave — the epoch guard keeps it from
            # clobbering the live incarnation's state.
            if self.epoch == epoch:
                self.running = False
                self._process = None

    def _await_quiescence(self, version: int, record: AdvancementRecord):
        while True:
            record.counter_polls += 1
            done = yield from self.detector.check(version)
            if done:
                return
            yield self.sim.timeout(self.poll_interval)

    # ------------------------------------------------------------------
    # Messaging helpers
    # ------------------------------------------------------------------

    def _broadcast(self, kind: str, version: int) -> None:
        """Broadcast a phase request stamped with the current epoch."""
        self.network.broadcast_to(
            self.endpoint, self.node_ids, kind, (self.epoch, version)
        )

    def _stale(self, message) -> bool:
        """Fence a reply stamped by a dead incarnation.

        Replies carry the epoch of the request they answer as their last
        payload element; anything not matching the live epoch is counted
        and dropped (a resumed wave re-requests everything it needs, so
        dropping is always safe).
        """
        if message.payload[-1] != self.epoch:
            self.network.stats.stale_epoch_dropped += 1
            return True
        return False

    def _receive(self):
        """Take the coordinator's next message (batch-drain aware).

        With batched delivery a wave's same-tick replies land in the
        mailbox together; consuming the backlog via ``take_nowait`` skips
        the event + scheduled resume a blocking ``get`` would cost per
        message.
        """
        if self._drain:
            message = self._mailbox.take_nowait()
            if message is not None:
                return message
        message = yield self._mailbox.get()
        return message

    def _collect_acks(self, kind: str, version: int):
        """Wait until every node acked ``(node_id, version, epoch)``."""
        pending = set(self.node_ids)
        while pending:
            message = yield from self._receive()
            if self._stale(message):
                continue
            if message.kind != kind:
                raise ProtocolError(
                    f"coordinator expected {kind!r}, got {message.kind!r}"
                )
            node_id, acked_version, _epoch = message.payload
            if acked_version != version:
                raise ProtocolError(
                    f"stale ack for version {acked_version} during "
                    f"advancement to {version}"
                )
            pending.discard(node_id)

    def gather_counters(self, version: int, which: str):
        """One asynchronous read wave of all nodes' counters.

        Returns:
            ``{node_id: snapshot}``.  The snapshot shape depends on the
            wave kind: a per-peer row dict for "R"/"C"/"ACTIVE", a scalar
            total for "RT"/"CT", a ``(total, row)`` pair for "RV"/"CV".
        """
        for node_id in self.node_ids:
            self.network.send(
                self.endpoint, node_id, MessageKind.COUNTER_READ,
                (self.epoch, version, which),
            )
        snapshots: typing.Dict[str, typing.Any] = {}
        while len(snapshots) < len(self.node_ids):
            message = yield from self._receive()
            if self._stale(message):
                continue
            if message.kind != MessageKind.COUNTER_READ_REPLY:
                raise ProtocolError(
                    f"coordinator expected counter reply, got {message.kind!r}"
                )
            node_id, reply_version, reply_which, snapshot, _epoch = (
                message.payload
            )
            if reply_version != version or reply_which != which:
                raise ProtocolError(
                    f"stale counter reply ({reply_version}, {reply_which!r}) "
                    f"during wave ({version}, {which!r})"
                )
            snapshots[node_id] = snapshot
        return snapshots
