"""Version advancement and garbage collection (Section 4.3).

The coordinator advances versions in four phases, all asynchronous with
user transactions:

1. **Switching to a new update version** — broadcast ``start-advancement``
   with ``vu_new = vu_old + 1``; every node advances ``vu`` and acks.
2. **Updates phase-out** — poll the request/completion counters of
   ``vu_old`` until they match for every node pair.
3. **Switching to a new read version** — broadcast ``read-advance`` with
   ``vr_new = vr_old + 1``; every node advances ``vr`` and acks.
4. **Garbage collection** — poll the counters of ``vr_old`` until the old
   queries drain, then broadcast ``garbage-collect``.

Quiescence detection
--------------------

The paper's counters are read "in an asynchronous manner", citing the
stable-property detection literature [Chandy-Lamport 85, Helary et al. 87,
Chandy-Misra 86].  A single interleaved read of ``R`` and ``C`` is *not*
sound: between reading ``R`` at one node and ``C`` at another, a new
request can be issued and completed, making the counters match while an
older subtransaction is still in flight.  The sound rule (Mattern's
four-counter / two-wave method) is implemented by
:class:`TwoWaveDetector`: read **all completion counters first**, then all
request counters; if ``C(wave 1) == R(wave 2)`` per pair, every request
had completed by the end of wave 1 — and because no new root
subtransaction can join an old version once Phase 1 acks are in,
quiescence is a stable property and stays true.

The production two-wave detector reads *aggregate totals* — one scalar
per node per wave ("CT" then "RT") instead of a full per-peer row — and
compares cluster-wide sums (:func:`repro.storage.counters.aggregate_quiescent`),
making each poll O(nodes) instead of O(nodes²).  The ordering argument
carries over unchanged: with completions read first, ``C_pq <= R_pq``
per pair, so the scalar sums match iff every pair matches.
:class:`TwoWaveScanDetector` keeps the original full-row scan as the
debug/differential oracle, and :class:`TwoWaveVerifyDetector` runs both
in one wave pair and cross-checks their verdicts.

The unsound alternatives are provided for the C7 ablation:
:class:`InterleavedDetector` (single combined wave) and
:class:`ActivePollDetector` (the naive "is any transaction running on v?"
check the paper warns about in Section 2.2, blind to in-transit children).
"""

from __future__ import annotations

import typing

from repro.errors import AdvancementInProgress, ProtocolError
from repro.net.message import MessageKind
from repro.net.network import Network
from repro.sim.events import Event
from repro.sim.simulator import Simulator
from repro.storage.counters import aggregate_quiescent, quiescent
from repro.txn.history import AdvancementRecord, History

COORDINATOR_ID = "coordinator"


class QuiescenceDetector:
    """Strategy deciding when all transactions of a version have finished."""

    name = "abstract"

    def __init__(self, coordinator: "AdvancementCoordinator"):
        self.coordinator = coordinator

    def check(self, version: int):  # generator
        """Yield simulation events; return ``True`` when quiescent."""
        raise NotImplementedError  # pragma: no cover


class TwoWaveDetector(QuiescenceDetector):
    """Sound detector: completions wave strictly before requests wave.

    Production variant: each wave reads one *aggregate total* per node
    ("CT" then "RT") and compares cluster-wide sums — O(nodes) per poll.
    Same message count and wave order as the full-row scan, so it is a
    drop-in sound replacement (see the module docstring for the argument).
    """

    name = "two-wave"

    def check(self, version: int):
        completions = yield from self.coordinator.gather_counters(version, "CT")
        requests = yield from self.coordinator.gather_counters(version, "RT")
        return aggregate_quiescent(requests, completions)


class TwoWaveScanDetector(QuiescenceDetector):
    """Sound detector, full O(nodes²) per-peer row scan.

    The original implementation, retained as the debug/differential
    oracle for :class:`TwoWaveDetector`'s aggregate check.
    """

    name = "two-wave-scan"

    def check(self, version: int):
        completions = yield from self.coordinator.gather_counters(version, "C")
        requests = yield from self.coordinator.gather_counters(version, "R")
        return quiescent(requests, completions)


class TwoWaveVerifyDetector(QuiescenceDetector):
    """Sound detector running the aggregate check *and* the row scan on
    the same wave pair, raising if they ever disagree.

    Each wave carries ``(total, rows)`` per node ("CV" then "RV"); the
    node asserts snapshot consistency (``total == sum(rows)``) is checked
    here too, so a divergence pinpoints whether the incremental totals or
    the aggregation argument broke.  Debug tool — one message per node
    per wave like the others, but with O(nodes²) payload.
    """

    name = "two-wave-verify"

    def check(self, version: int):
        completions = yield from self.coordinator.gather_counters(version, "CV")
        requests = yield from self.coordinator.gather_counters(version, "RV")
        req_totals = {}
        req_rows = {}
        for node_id, (total, rows) in requests.items():
            if total != sum(rows.values()):
                raise ProtocolError(
                    f"node {node_id}: request total {total} != row sum "
                    f"{sum(rows.values())} for version {version}"
                )
            req_totals[node_id] = total
            req_rows[node_id] = rows
        comp_totals = {}
        comp_rows = {}
        for node_id, (total, rows) in completions.items():
            if total != sum(rows.values()):
                raise ProtocolError(
                    f"node {node_id}: completion total {total} != row sum "
                    f"{sum(rows.values())} for version {version}"
                )
            comp_totals[node_id] = total
            comp_rows[node_id] = rows
        aggregate = aggregate_quiescent(req_totals, comp_totals)
        scan = quiescent(req_rows, comp_rows)
        if aggregate != scan:
            raise ProtocolError(
                f"quiescence divergence for version {version}: "
                f"aggregate={aggregate} scan={scan}"
            )
        return aggregate


class InterleavedDetector(QuiescenceDetector):
    """UNSOUND (ablation): reads R and C in a single combined wave, so a
    request can slip between the two reads and hide an in-flight
    subtransaction.  Kept to demonstrate why the wave order matters."""

    name = "interleaved"

    def check(self, version: int):
        requests = yield from self.coordinator.gather_counters(version, "R")
        completions = yield from self.coordinator.gather_counters(version, "C")
        return quiescent(requests, completions)


class ActivePollDetector(QuiescenceDetector):
    """UNSOUND (ablation): Section 2.2's strawman — ask every node whether
    any subtransaction of the version is currently running.  "A
    subtransaction running on version 1 on node p might have sent a child
    subtransaction to node q and committed on node p; while the child is
    in transit, no server may be running any transactions against
    version 1" — this detector declares quiescence in exactly that window.
    """

    name = "active-poll"

    def check(self, version: int):
        active = yield from self.coordinator.gather_counters(version, "ACTIVE")
        return all(count == 0 for row in active.values() for count in row.values())


DETECTORS = {
    TwoWaveDetector.name: TwoWaveDetector,
    TwoWaveScanDetector.name: TwoWaveScanDetector,
    TwoWaveVerifyDetector.name: TwoWaveVerifyDetector,
    InterleavedDetector.name: InterleavedDetector,
    ActivePollDetector.name: ActivePollDetector,
}


class AdvancementCoordinator:
    """Runs the four-phase advancement protocol over the network.

    Args:
        sim: Owning simulator.
        network: Message transport (the coordinator registers its own
            endpoint).
        node_ids: All database nodes.
        history: Where advancement phase timestamps are recorded.
        poll_interval: Delay between quiescence polls in phases 2 and 4.
        detector: Name of the quiescence detector (see :data:`DETECTORS`).

    A distributed mutual exclusion mechanism is assumed by the paper; here
    a simple "one advancement at a time" guard plays that role.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_ids: typing.Sequence[str],
        history: History,
        poll_interval: float = 1.0,
        detector: str = TwoWaveDetector.name,
    ):
        self.sim = sim
        self.network = network
        self.node_ids = list(node_ids)
        self.history = history
        self.poll_interval = poll_interval
        try:
            self.detector: QuiescenceDetector = DETECTORS[detector](self)
        except KeyError:
            raise ProtocolError(f"unknown quiescence detector: {detector!r}")
        self.vr = 0
        self.vu = 1
        self.running = False
        self.completed_runs = 0
        self._mailbox = network.register(COORDINATOR_ID)
        #: Drain batched mailbox wakes synchronously (one resume per
        #: batch of same-tick replies instead of one per reply).
        self._drain = network.batch_delivery

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def advance(self) -> Event:
        """Start one advancement; returns the process (an event).

        Raises:
            AdvancementInProgress: If an advancement is already running
                (the paper assumes distributed mutual exclusion here).
        """
        if self.running:
            raise AdvancementInProgress(
                f"advancement to version {self.vu + 1} already running"
            )
        self.running = True
        return self.sim.process(self._advance(), name="advancement")

    # ------------------------------------------------------------------
    # The four phases
    # ------------------------------------------------------------------

    def _advance(self):
        vu_old, vr_old = self.vu, self.vr
        vu_new, vr_new = vu_old + 1, vr_old + 1
        record = AdvancementRecord(
            new_update_version=vu_new, started=self.sim.now
        )
        self.history.advancements.append(record)
        try:
            # Phase 1: switch every node to the new update version.
            self.network.broadcast_to(
                COORDINATOR_ID, self.node_ids,
                MessageKind.START_ADVANCEMENT, vu_new,
            )
            yield from self._collect_acks(
                MessageKind.START_ADVANCEMENT_ACK, vu_new
            )
            self.vu = vu_new
            record.phase1_done = self.sim.now

            # Phase 2: wait for vu_old to quiesce.
            yield from self._await_quiescence(vu_old, record)
            record.phase2_done = self.sim.now

            # Phase 3: make vu_old (= vr_new) readable.
            self.network.broadcast_to(
                COORDINATOR_ID, self.node_ids, MessageKind.READ_ADVANCE, vr_new
            )
            yield from self._collect_acks(MessageKind.READ_ADVANCE_ACK, vr_new)
            self.vr = vr_new
            record.phase3_done = self.sim.now

            # Phase 4: wait for vr_old queries to drain, then collect.
            yield from self._await_quiescence(vr_old, record)
            self.network.broadcast_to(
                COORDINATOR_ID, self.node_ids,
                MessageKind.GARBAGE_COLLECT, vr_new,
            )
            yield from self._collect_acks(
                MessageKind.GARBAGE_COLLECT_ACK, vr_new
            )
            record.gc_done = self.sim.now
            self.completed_runs += 1
        finally:
            self.running = False

    def _await_quiescence(self, version: int, record: AdvancementRecord):
        while True:
            record.counter_polls += 1
            done = yield from self.detector.check(version)
            if done:
                return
            yield self.sim.timeout(self.poll_interval)

    # ------------------------------------------------------------------
    # Messaging helpers
    # ------------------------------------------------------------------

    def _receive(self):
        """Take the coordinator's next message (batch-drain aware).

        With batched delivery a wave's same-tick replies land in the
        mailbox together; consuming the backlog via ``take_nowait`` skips
        the event + scheduled resume a blocking ``get`` would cost per
        message.
        """
        if self._drain:
            message = self._mailbox.take_nowait()
            if message is not None:
                return message
        message = yield self._mailbox.get()
        return message

    def _collect_acks(self, kind: str, version: int):
        """Wait until every node acked ``(node_id, version)`` with ``kind``."""
        pending = set(self.node_ids)
        while pending:
            message = yield from self._receive()
            if message.kind != kind:
                raise ProtocolError(
                    f"coordinator expected {kind!r}, got {message.kind!r}"
                )
            node_id, acked_version = message.payload
            if acked_version != version:
                raise ProtocolError(
                    f"stale ack for version {acked_version} during "
                    f"advancement to {version}"
                )
            pending.discard(node_id)

    def gather_counters(self, version: int, which: str):
        """One asynchronous read wave of all nodes' counters.

        Returns:
            ``{node_id: snapshot}``.  The snapshot shape depends on the
            wave kind: a per-peer row dict for "R"/"C"/"ACTIVE", a scalar
            total for "RT"/"CT", a ``(total, row)`` pair for "RV"/"CV".
        """
        for node_id in self.node_ids:
            self.network.send(
                COORDINATOR_ID, node_id, MessageKind.COUNTER_READ,
                (version, which),
            )
        snapshots: typing.Dict[str, typing.Any] = {}
        while len(snapshots) < len(self.node_ids):
            message = yield from self._receive()
            if message.kind != MessageKind.COUNTER_READ_REPLY:
                raise ProtocolError(
                    f"coordinator expected counter reply, got {message.kind!r}"
                )
            node_id, reply_version, reply_which, snapshot = message.payload
            if reply_version != version or reply_which != which:
                raise ProtocolError(
                    f"stale counter reply ({reply_version}, {reply_which!r}) "
                    f"during wave ({version}, {which!r})"
                )
            snapshots[node_id] = snapshot
        return snapshots
