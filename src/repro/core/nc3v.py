"""NC3V: graceful handling of non-commuting updates (Section 5).

Non-well-behaved transactions (those whose updates do not commute) follow
the classical discipline: non-commuting NR/NW locks under two-phase
locking, plus a global two-phase commitment — while well-behaved and
read-only transactions keep running exactly as in plain 3V (well-behaved
updates additionally take *commuting* CR/CW locks, which never conflict
with each other, so their zero-wait property survives as long as no
non-commuting transaction touches the same records).

The NC3V root algorithm implemented here:

1. ``V(K) := vu`` on arrival.
2. Wait until ``V(K) == vr + 1`` (only untrue mid-advancement), so a
   non-well-behaved transaction never runs while the versions it might
   touch are being phased out.
3. Reads: maximum existing version ``<= V(K)``.
4. Writes: if the item exists in a version ``> V(K)``, **abort** (a newer
   version has already diverged); otherwise create ``x(V(K))`` if needed
   and update exactly that version.
5. Child subtransactions carry ``V(K)``; request counters are incremented
   before each send, exactly as in 3V.
6. Global two-phase commitment; each participant's completion counters
   are incremented atomically with the commit (or abort) decision, so
   version advancement's quiescence check correctly waits for
   non-commuting transactions too.

The 2PL/2PC mechanics — execution reports, prepare/vote and decision/ack
rounds, undo logs, wait-die — are
:class:`~repro.runtime.twophase.TwoPhaseEngine`, shared verbatim with the
2PC baseline; this subclass adds only the version-aware steps above.
"""

from __future__ import annotations

import typing

from repro.runtime.twophase import (
    ParticipantState,
    RootState,
    TwoPhaseEngine,
    UndoEntry,
)
from repro.sim.events import Event
from repro.txn.history import TxnKind, WaitReason, WriteEvent
from repro.txn.runtime import SubtxnInstance
from repro.txn.spec import WriteOp

# Backwards-compatible aliases for the dataclasses that used to live here.
_UndoEntry = UndoEntry
_ParticipantState = ParticipantState
_RootState = RootState


class NC3VManager(TwoPhaseEngine):
    """Per-node driver for non-well-behaved transactions."""

    abort_reason = "nc-abort"

    def __init__(self, node):
        super().__init__(node)
        #: Transactions gated on the ``vu == vr + 1`` condition.
        self._gate_waiters: typing.List[typing.Tuple[int, Event]] = []
        self.aborts_version_conflict = 0

    @property
    def aborts_deadlock(self) -> int:
        """Wait-die aborts (engine counter, kept under the historic name)."""
        return self.deadlock_aborts

    # ------------------------------------------------------------------
    # Root admission (Section 5 steps 1-2)
    # ------------------------------------------------------------------

    def admit_root(self, instance: SubtxnInstance):
        node = self.node
        # Step 1: V(K) := vu.
        instance.version = node.vu
        node.counters.inc_request(instance.version, node.node_id)
        node.history.begin_txn(
            instance.txn.name, TxnKind.NONCOMMUTING, instance.version,
            node.sim.now, node.node_id,
        )
        # Step 2: wait until V(K) == vr + 1.
        if instance.version != node.vr + 1:
            return self._gate(instance)
        return None

    def _gate(self, instance: SubtxnInstance):
        node = self.node
        gate = Event(node.sim)
        self._gate_waiters.append((instance.version, gate))
        gated_at = node.sim.now
        yield gate
        node.history.waited(
            instance.txn.name, WaitReason.VERSION_GATE, node.sim.now - gated_at
        )

    def on_read_advance(self) -> None:
        """Called by the node when ``vr`` changes: re-check gated roots."""
        still_waiting = []
        for version, event in self._gate_waiters:
            if version == self.node.vr + 1:
                event.succeed()
            else:
                still_waiting.append((version, event))
        self._gate_waiters = still_waiting

    # ------------------------------------------------------------------
    # Version-aware engine hooks
    # ------------------------------------------------------------------

    def note_request(self, version, target: str) -> None:
        # Step 5: increment the request counter before each child send.
        self.node.counters.inc_request(version, target)

    def check_version_conflict(self, instance: SubtxnInstance) -> bool:
        # Step 4 version check, before any write.
        node = self.node
        version = instance.version
        for op in instance.spec.ops:
            if isinstance(op, WriteOp) and node.store.exists_above(
                op.key, version
            ):
                self.aborts_version_conflict += 1
                return True
        return False

    def record_undo_event(self, txn_name: str, entry: UndoEntry) -> None:
        node = self.node
        node.history.wrote(
            WriteEvent(
                time=node.sim.now,
                txn=txn_name,
                subtxn="(rollback)",
                node=node.node_id,
                key=entry.key,
                version=entry.version,
                versions_written=1,
                operation=entry.undo,
                compensating=True,
            )
        )

    def after_decision(self, state: ParticipantState) -> None:
        # Completion counters move atomically with the decision (step 6).
        node = self.node
        for sid, source in state.executed:
            node.counters.inc_completion(state.version, source)
