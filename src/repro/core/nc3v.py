"""NC3V: graceful handling of non-commuting updates (Section 5).

Non-well-behaved transactions (those whose updates do not commute) follow
the classical discipline: non-commuting NR/NW locks under two-phase
locking, plus a global two-phase commitment — while well-behaved and
read-only transactions keep running exactly as in plain 3V (well-behaved
updates additionally take *commuting* CR/CW locks, which never conflict
with each other, so their zero-wait property survives as long as no
non-commuting transaction touches the same records).

The NC3V root algorithm implemented here:

1. ``V(K) := vu`` on arrival.
2. Wait until ``V(K) == vr + 1`` (only untrue mid-advancement), so a
   non-well-behaved transaction never runs while the versions it might
   touch are being phased out.
3. Reads: maximum existing version ``<= V(K)``.
4. Writes: if the item exists in a version ``> V(K)``, **abort** (a newer
   version has already diverged); otherwise create ``x(V(K))`` if needed
   and update exactly that version.
5. Child subtransactions carry ``V(K)``; request counters are incremented
   before each send, exactly as in 3V.
6. Global two-phase commitment; each participant's completion counters
   are incremented atomically with the commit (or abort) decision, so
   version advancement's quiescence check correctly waits for
   non-commuting transactions too.

Wait-die (on the root transaction's start timestamp) avoids deadlocks on
the non-commuting locks; a died or version-conflicted subtransaction votes
"no" and the whole transaction rolls back from its undo log.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import DeadlockAbort, ProtocolError
from repro.net.message import Message, MessageKind
from repro.sim.events import Event
from repro.storage.locktable import LockMode
from repro.storage.values import Operation, undo_operation
from repro.txn.history import TxnKind, WaitReason, WriteEvent
from repro.txn.runtime import SubtxnInstance
from repro.txn.spec import ReadOp, WriteOp

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import ThreeVNode


@dataclasses.dataclass
class _UndoEntry:
    key: typing.Hashable
    version: int
    undo: Operation


@dataclasses.dataclass
class _ParticipantState:
    """Per-transaction state on a node that executed NC subtransactions."""

    txn_name: str
    version: int
    undo_log: typing.List[_UndoEntry] = dataclasses.field(default_factory=list)
    #: ``(sid, source_node)`` for every subtransaction executed here.
    executed: typing.List[typing.Tuple[str, str]] = dataclasses.field(
        default_factory=list
    )
    failed: bool = False


@dataclasses.dataclass
class _RootState:
    """Two-phase-commit coordination state at the root node."""

    instance: SubtxnInstance
    #: Subtransaction ids whose execution report is still expected.
    outstanding: typing.Set[str] = dataclasses.field(default_factory=set)
    participants: typing.Set[str] = dataclasses.field(default_factory=set)
    any_failure: bool = False
    reports_done: Event = None
    votes: typing.Set[str] = dataclasses.field(default_factory=set)
    vote_no: bool = False
    votes_done: Event = None
    acks: typing.Set[str] = dataclasses.field(default_factory=set)
    acks_done: Event = None
    expected_voters: typing.Set[str] = dataclasses.field(default_factory=set)
    expected_ackers: typing.Set[str] = dataclasses.field(default_factory=set)


class NC3VManager:
    """Per-node driver for non-well-behaved transactions."""

    _KINDS = frozenset(
        {MessageKind.PREPARE, MessageKind.VOTE, MessageKind.DECISION,
         MessageKind.DECISION_ACK}
    )
    #: payload tag distinguishing execution reports from 2PC votes.
    _EXEC_REPORT = "exec-report"
    _PREPARE_VOTE = "prepare-vote"

    def __init__(self, node: "ThreeVNode"):
        self.node = node
        self._participants: typing.Dict[str, _ParticipantState] = {}
        self._roots: typing.Dict[str, _RootState] = {}
        #: Transactions gated on the ``vu == vr + 1`` condition.
        self._gate_waiters: typing.List[typing.Tuple[int, Event]] = []
        self.aborts_version_conflict = 0
        self.aborts_deadlock = 0
        self.commits = 0

    # ------------------------------------------------------------------
    # Node integration
    # ------------------------------------------------------------------

    def handles(self, kind: str) -> bool:
        return kind in self._KINDS

    def dispatch(self, message: Message) -> None:
        if message.kind == MessageKind.PREPARE:
            self._on_prepare(message)
        elif message.kind == MessageKind.VOTE:
            self._on_vote(message)
        elif message.kind == MessageKind.DECISION:
            self._on_decision(message)
        elif message.kind == MessageKind.DECISION_ACK:
            self._on_decision_ack(message)

    def on_read_advance(self) -> None:
        """Called by the node when ``vr`` changes: re-check gated roots."""
        still_waiting = []
        for version, event in self._gate_waiters:
            if version == self.node.vr + 1:
                event.succeed()
            else:
                still_waiting.append((version, event))
        self._gate_waiters = still_waiting

    # ------------------------------------------------------------------
    # Subtransaction execution
    # ------------------------------------------------------------------

    def run_subtxn(self, instance: SubtxnInstance):
        node = self.node
        txn_name = instance.txn.name
        if instance.is_root:
            # Step 1: V(K) := vu.
            instance.version = node.vu
            node.counters.inc_request(instance.version, node.node_id)
            node.history.begin_txn(
                txn_name, TxnKind.NONCOMMUTING, instance.version,
                node.sim.now, node.node_id,
            )
            # Step 2: wait until V(K) == vr + 1.
            if instance.version != node.vr + 1:
                gate = Event(node.sim)
                self._gate_waiters.append((instance.version, gate))
                gated_at = node.sim.now
                yield gate
                node.history.waited(
                    txn_name, WaitReason.VERSION_GATE, node.sim.now - gated_at
                )

        state = self._participants.get(txn_name)
        if state is None:
            state = _ParticipantState(txn_name=txn_name, version=instance.version)
            self._participants[txn_name] = state

        ok = yield from self._execute_locally(instance, state)

        dispatched: typing.List[str] = []
        if ok:
            for child_sid in instance.index.children[instance.sid]:
                child = instance.child_instance(child_sid, node.node_id)
                target = instance.index.node_of(child_sid)
                node.counters.inc_request(instance.version, target)
                node.network.send(
                    node.node_id, target, MessageKind.SUBTXN_REQUEST, child
                )
                dispatched.append(child_sid)

        if instance.is_root:
            yield from self._coordinate(instance, ok, dispatched)
        else:
            # Report execution outcome (and what was dispatched) to the root.
            root_node = instance.index.node_of(instance.index.root_id)
            node.network.send(
                node.node_id, root_node, MessageKind.VOTE,
                (self._EXEC_REPORT, txn_name, instance.sid, node.node_id,
                 ok, dispatched),
            )

    def _execute_locally(self, instance: SubtxnInstance,
                         state: _ParticipantState):
        """Locks, version check, and writes for one NC subtransaction.

        Returns ``True`` on success, ``False`` if the subtransaction failed
        (wait-die or version conflict) — failure aborts the whole
        transaction at decision time.
        """
        node = self.node
        txn_name = instance.txn.name
        spec = instance.spec
        timestamp = self._root_timestamp(instance)

        # 2PL acquisition (NR/NW), wait-die on conflict.
        for op in spec.ops:
            mode = LockMode.NW if isinstance(op, WriteOp) else LockMode.NR
            queued_at = node.sim.now
            event = node.locks.acquire(op.key, mode, txn_name, timestamp)
            try:
                yield event
            except DeadlockAbort:
                self.aborts_deadlock += 1
                state.failed = True
                state.executed.append((instance.sid, instance.source_node))
                return False
            node.history.waited(
                txn_name, WaitReason.LOCK, node.sim.now - queued_at
            )

        queued_at = node.sim.now
        yield node.executor.request()
        node.history.waited(
            txn_name, WaitReason.EXECUTOR, node.sim.now - queued_at
        )
        try:
            if spec.ops:
                service = node.rngs.sample(
                    "node.service", node.config.op_service
                )
                yield node.sim.timeout(service * len(spec.ops))
            version = instance.version
            # Step 4 version check, before any write.
            for op in spec.ops:
                if isinstance(op, WriteOp) and node.store.exists_above(
                    op.key, version
                ):
                    self.aborts_version_conflict += 1
                    state.failed = True
                    state.executed.append((instance.sid, instance.source_node))
                    return False
            for op in spec.ops:
                if isinstance(op, ReadOp):
                    used = node.store.version_max_leq(op.key, version)
                    value = (
                        node.store.get_exact(op.key, used)
                        if used is not None else None
                    )
                    node.history.read(
                        _read_event(node, instance, op.key, version, used, value)
                    )
                else:
                    node.store.ensure_version(op.key, version)
                    previous = node.store.get_exact(op.key, version)
                    undo = undo_operation(op.operation, previous)
                    node.store.apply_exact(op.key, version, op.operation)
                    state.undo_log.append(_UndoEntry(op.key, version, undo))
                    node.history.wrote(
                        WriteEvent(
                            time=node.sim.now,
                            txn=txn_name,
                            subtxn=instance.sid,
                            node=node.node_id,
                            key=op.key,
                            version=version,
                            versions_written=1,
                            operation=op.operation,
                        )
                    )
        finally:
            node.executor.release()
        state.executed.append((instance.sid, instance.source_node))
        return True

    def _root_timestamp(self, instance: SubtxnInstance) -> float:
        record = self.node.history.txns.get(instance.txn.name)
        if record is not None:
            return record.submit_time
        return instance.txn.priority_hint

    # ------------------------------------------------------------------
    # Two-phase commitment (root side)
    # ------------------------------------------------------------------

    def _coordinate(self, instance: SubtxnInstance, root_ok: bool,
                    dispatched: typing.List[str]):
        node = self.node
        txn_name = instance.txn.name
        state = _RootState(instance=instance)
        state.reports_done = Event(node.sim)
        state.votes_done = Event(node.sim)
        state.acks_done = Event(node.sim)
        state.outstanding = set(dispatched)
        state.participants = {node.node_id}
        state.any_failure = not root_ok
        self._roots[txn_name] = state

        remote_wait_start = node.sim.now
        if state.outstanding:
            yield state.reports_done

        decision_commit = not state.any_failure
        # Sorted: iteration drives message sends (and therefore latency RNG
        # draws), so set order must not leak the per-process hash seed.
        remote_participants = sorted(state.participants - {node.node_id})
        if decision_commit and remote_participants:
            # Prepare round: every remote participant votes.
            state.expected_voters = set(remote_participants)
            for participant in remote_participants:
                node.network.send(
                    node.node_id, participant, MessageKind.PREPARE, txn_name
                )
            yield state.votes_done
            decision_commit = not state.vote_no

        # Decision round.
        self._apply_decision_locally(txn_name, decision_commit)
        if remote_participants:
            state.expected_ackers = set(remote_participants)
            for participant in remote_participants:
                node.network.send(
                    node.node_id, participant, MessageKind.DECISION,
                    (txn_name, decision_commit),
                )
        node.history.waited(
            txn_name, WaitReason.REMOTE, node.sim.now - remote_wait_start
        )
        if decision_commit:
            self.commits += 1
            node.history.locally_committed(txn_name, node.sim.now)
        else:
            node.history.aborted(txn_name, node.sim.now, "nc-abort")
        if remote_participants:
            yield state.acks_done
        node.history.globally_completed(txn_name, node.sim.now)
        del self._roots[txn_name]

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------

    def _on_vote(self, message: Message) -> None:
        tag = message.payload[0]
        if tag == self._EXEC_REPORT:
            _tag, txn_name, sid, participant, ok, dispatched = message.payload
            state = self._roots.get(txn_name)
            if state is None:
                raise ProtocolError(f"exec report for unknown root {txn_name!r}")
            state.outstanding.discard(sid)
            state.outstanding.update(dispatched)
            state.participants.add(participant)
            if not ok:
                state.any_failure = True
            if not state.outstanding and not state.reports_done.triggered:
                state.reports_done.succeed()
        elif tag == self._PREPARE_VOTE:
            _tag, txn_name, participant, vote_yes = message.payload
            state = self._roots.get(txn_name)
            if state is None:
                raise ProtocolError(f"vote for unknown root {txn_name!r}")
            state.votes.add(participant)
            if not vote_yes:
                state.vote_no = True
            if state.votes >= state.expected_voters and not (
                state.votes_done.triggered
            ):
                state.votes_done.succeed()
        else:
            raise ProtocolError(f"unknown vote tag {tag!r}")

    def _on_prepare(self, message: Message) -> None:
        txn_name = message.payload
        state = self._participants.get(txn_name)
        vote_yes = state is not None and not state.failed
        self.node.network.send(
            self.node.node_id, message.src, MessageKind.VOTE,
            (self._PREPARE_VOTE, txn_name, self.node.node_id, vote_yes),
        )

    def _on_decision(self, message: Message) -> None:
        txn_name, commit = message.payload
        self._apply_decision_locally(txn_name, commit)
        self.node.network.send(
            self.node.node_id, message.src, MessageKind.DECISION_ACK,
            (txn_name, self.node.node_id),
        )

    def _on_decision_ack(self, message: Message) -> None:
        txn_name, participant = message.payload
        state = self._roots.get(txn_name)
        if state is None:
            raise ProtocolError(f"decision ack for unknown root {txn_name!r}")
        state.acks.add(participant)
        if state.acks >= state.expected_ackers and not state.acks_done.triggered:
            state.acks_done.succeed()

    def _apply_decision_locally(self, txn_name: str, commit: bool) -> None:
        """Commit or roll back this node's part, release locks, and count
        completions atomically with the decision (Section 5, step 6)."""
        node = self.node
        state = self._participants.pop(txn_name, None)
        if state is None:
            return
        if not commit:
            for entry in reversed(state.undo_log):
                node.store.apply_exact(entry.key, entry.version, entry.undo)
                node.history.wrote(
                    WriteEvent(
                        time=node.sim.now,
                        txn=txn_name,
                        subtxn="(rollback)",
                        node=node.node_id,
                        key=entry.key,
                        version=entry.version,
                        versions_written=1,
                        operation=entry.undo,
                        compensating=True,
                    )
                )
        for sid, source in state.executed:
            node.counters.inc_completion(state.version, source)
        node.locks.release_all(txn_name)
        node.locks.cancel_waits(txn_name)


def _read_event(node, instance, key, version, used, value):
    from repro.txn.history import ReadEvent

    return ReadEvent(
        time=node.sim.now,
        txn=instance.txn.name,
        subtxn=instance.sid,
        node=node.node_id,
        key=key,
        version_requested=version,
        version_used=used,
        value=value,
    )
