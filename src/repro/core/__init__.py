"""The paper's contribution: the 3V protocol, NC3V, and version advancement."""

from repro.core.advancement import (
    COORDINATOR_ID,
    ActivePollDetector,
    AdvancementCoordinator,
    DETECTORS,
    InterleavedDetector,
    TwoWaveDetector,
    TwoWaveScanDetector,
    TwoWaveVerifyDetector,
)
from repro.core.invariants import (
    InvariantMonitor,
    check_all,
    check_version_agreement,
    check_version_bounds,
    check_version_counts,
)
from repro.core.nc3v import NC3VManager
from repro.core.node import NodeConfig, ThreeVNode
from repro.core.policy import (
    AdvancementPolicy,
    CountPolicy,
    DivergencePolicy,
    ManualPolicy,
    PeriodicPolicy,
    TransactionTriggerPolicy,
)
from repro.core.system import ThreeVSystem

__all__ = [
    "COORDINATOR_ID",
    "ActivePollDetector",
    "AdvancementCoordinator",
    "AdvancementPolicy",
    "CountPolicy",
    "DETECTORS",
    "DivergencePolicy",
    "InterleavedDetector",
    "InvariantMonitor",
    "ManualPolicy",
    "NC3VManager",
    "NodeConfig",
    "PeriodicPolicy",
    "ThreeVNode",
    "ThreeVSystem",
    "TransactionTriggerPolicy",
    "TwoWaveDetector",
    "TwoWaveScanDetector",
    "TwoWaveVerifyDetector",
    "check_all",
    "check_version_agreement",
    "check_version_bounds",
    "check_version_counts",
]
