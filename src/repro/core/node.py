"""The 3V database node (Sections 4.1 and 4.2 of the paper).

Each node owns a multi-version store, a request/completion counter table,
its current update version ``vu`` and read version ``vr``, and a local
executor modelling local concurrency control.  The node processes:

* root subtransactions — assigned ``V(T) = vu`` (updates) or ``V(T) = vr``
  (queries) on arrival;
* descendant subtransactions — carrying ``V(T)`` from their root; an update
  descendant with ``V(T) > vu`` acts as an implicit start-advancement
  notification (Section 2.2);
* compensating subtransactions (Section 3.2), which roll back the effects
  of a subtransaction at the transaction's version and propagate along tree
  edges;
* version-advancement control messages from the coordinator (Section 4.3).

The user-visible commitment of a subtransaction happens right after its
local operations and child dispatch (no waiting for anything non-local:
Theorem 4.2).  *Completion* — the counter increment — is hierarchical: a
subtransaction's completion counter is incremented only after all its
descendants complete, matching Table 1 of the paper (the ``C1pq = 1``
increments appear only after the corresponding subtree's completion
notices arrive).  Hierarchical completion keeps the quiescence check
conservative and correct.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import DeadlockAbort, ProtocolError
from repro.net.message import Message, MessageKind
from repro.net.network import Network
from repro.sim.distributions import Constant, Distribution, RngRegistry
from repro.sim.resources import Resource
from repro.sim.simulator import Simulator
from repro.storage.counters import CounterTable
from repro.storage.locktable import LockMode, LockTable
from repro.storage.mvstore import MVStore
from repro.txn.history import (
    History,
    ReadEvent,
    TxnKind,
    WaitReason,
    WriteEvent,
)
from repro.txn.runtime import CompletionNotice, CompletionTracker, SubtxnInstance
from repro.txn.spec import ReadOp, WriteOp


@dataclasses.dataclass
class NodeConfig:
    """Tunables shared by every node in a system.

    Attributes:
        op_service: Distribution of local service time per operation.
        executor_capacity: Multiprogramming level of the local executor
            (1 = fully serial local execution).
        enable_locking: Whether well-behaved transactions take commuting
            locks (needed only when non-commuting transactions are present;
            pure 3V systems leave this off and take no locks at all).
        completion: When the completion counter is incremented.
            ``"hierarchical"`` (default) increments a subtransaction's
            counter only after all its descendants complete — the timing
            the paper's Table 1 shows, which keeps quiescence detection
            conservative.  ``"immediate"`` increments it right after the
            subtransaction dispatches its children and commits — the
            literal Section 4.1 step 6, under which only the two-wave
            counter read is sound (the C7 ablation exploits this).
        store_factory: Constructor for the per-node versioned store —
            :class:`~repro.storage.mvstore.MVStore` (default) or the
            fixed three-slot :class:`~repro.storage.slotstore.SlotStore`
            that reuses version numbers as the paper suggests.
        dual_write: Section 4.1 step 4's "update all versions of x greater
            or equal to version V(T)".  ``False`` is an ABLATION that
            updates only ``x(V(T))``, reintroducing the straggler
            inconsistency the rule exists to fix (a version-``v``
            subtransaction landing on a node that already created the
            ``v+1`` copy leaves that copy permanently short).
        initial_update_version: ``vu`` at startup (the paper starts at 1).
        initial_read_version: ``vr`` at startup (the paper starts at 0).
    """

    op_service: Distribution = dataclasses.field(
        default_factory=lambda: Constant(0.001)
    )
    executor_capacity: int = 1
    enable_locking: bool = False
    completion: str = "hierarchical"
    store_factory: typing.Callable[[], MVStore] = MVStore
    dual_write: bool = True
    initial_update_version: int = 1
    initial_read_version: int = 0


class ThreeVNode:
    """One database node running the 3V protocol."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        history: History,
        config: typing.Optional[NodeConfig] = None,
        rngs: typing.Optional[RngRegistry] = None,
    ):
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.history = history
        self.config = config if config is not None else NodeConfig()
        self.rngs = rngs if rngs is not None else RngRegistry(0)

        self.store = self.config.store_factory()
        self.counters = CounterTable(node_id)
        self.locks = LockTable(sim)
        self.executor = Resource(sim, capacity=self.config.executor_capacity)

        self.vu = self.config.initial_update_version
        self.vr = self.config.initial_read_version
        self.counters.ensure_version(self.vr)
        self.counters.ensure_version(self.vu)

        #: In-flight completion trackers, keyed by instance key.
        self._trackers: typing.Dict[tuple, CompletionTracker] = {}
        #: Subtransactions whose ops ran here (needed by compensation).
        self._executed: typing.Set[tuple] = set()
        #: Compensation that arrived before its target subtransaction.
        self._tombstones: typing.Set[tuple] = set()
        #: Versions for which a start-advancement was already processed.
        self._advanced_to: typing.Set[int] = {self.vu}

        self._mailbox = network.register(node_id)
        self._main = sim.process(self._run(), name=f"node-{node_id}")

        # The service-time stream is drawn from on every subtransaction;
        # binding it once avoids the registry lookup per draw (stream seeds
        # are name-derived, so early binding does not perturb any draws).
        self._service_rng = self.rngs.stream("node.service")

        # Hook the NC3V extension lazily (set by the system when needed).
        self.nc3v = None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _run(self):
        while True:
            message = yield self._mailbox.get()
            self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        kind = message.kind
        if kind == MessageKind.SUBTXN_REQUEST or kind == MessageKind.COMPENSATION:
            instance = message.payload
            self.sim.process(
                self._run_subtxn(instance),
                name=f"{self.node_id}:{instance.sid}",
            )
        elif kind == MessageKind.COMPLETION_NOTICE:
            self._on_completion_notice(message.payload)
        elif kind == MessageKind.START_ADVANCEMENT:
            self._on_start_advancement(message)
        elif kind == MessageKind.COUNTER_READ:
            self._on_counter_read(message)
        elif kind == MessageKind.READ_ADVANCE:
            self._on_read_advance(message)
        elif kind == MessageKind.GARBAGE_COLLECT:
            self._on_garbage_collect(message)
        elif kind == MessageKind.LOCK_RELEASE:
            self.locks.release_all(message.payload)
        elif self.nc3v is not None and self.nc3v.handles(kind):
            self.nc3v.dispatch(message)
        else:
            raise ProtocolError(
                f"node {self.node_id}: unexpected message kind {kind!r}"
            )

    # ------------------------------------------------------------------
    # Submission (client-side entry point; no network hop)
    # ------------------------------------------------------------------

    def submit(self, instance: SubtxnInstance) -> None:
        """Deliver a root subtransaction directly to this node's mailbox."""
        if not instance.is_root:
            raise ProtocolError("submit() is for root subtransactions only")
        self._mailbox.put(
            Message(
                src=self.node_id,
                dst=self.node_id,
                kind=MessageKind.SUBTXN_REQUEST,
                payload=instance,
                sent_at=self.sim.now,
                delivered_at=self.sim.now,
            )
        )

    # ------------------------------------------------------------------
    # Subtransaction execution (Sections 4.1 / 4.2)
    # ------------------------------------------------------------------

    def _classify(self, instance: SubtxnInstance) -> str:
        if instance.txn.is_read_only:
            return TxnKind.READ
        if instance.txn.is_well_behaved:
            return TxnKind.UPDATE
        return TxnKind.NONCOMMUTING

    def _run_subtxn(self, instance: SubtxnInstance):
        kind = self._classify(instance)
        if kind == TxnKind.NONCOMMUTING:
            if self.nc3v is None:
                raise ProtocolError(
                    f"node {self.node_id}: non-commuting transaction "
                    f"{instance.txn.name!r} but NC3V is not enabled"
                )
            yield from self.nc3v.run_subtxn(instance)
            return

        # --- Arrival: version assignment and request accounting -------
        if instance.is_root:
            version = self.vr if kind == TxnKind.READ else self.vu
            instance.version = version
            # Step 1: a root arrival is a request from p to p.
            self.counters.inc_request(version, self.node_id)
            self.history.begin_txn(
                instance.txn.name, kind, version, self.sim.now, self.node_id
            )
        else:
            version = instance.version
            # Step 2: an update descendant from the future is an implicit
            # start-advancement notification.
            if kind == TxnKind.UPDATE and version > self.vu:
                self.advance_update_version(version)

        tracker = CompletionTracker(instance)
        self._trackers[instance.instance_key] = tracker

        # --- Commute locks (only in mixed NC3V deployments) ------------
        if self.config.enable_locking and kind == TxnKind.UPDATE:
            yield from self._acquire_commute_locks(instance)

        # --- Local concurrency control ---------------------------------
        queued_at = self.sim.now
        yield self.executor.request()
        self.history.waited(
            instance.txn.name, WaitReason.EXECUTOR, self.sim.now - queued_at
        )
        try:
            spec = instance.spec
            service = self.config.op_service.sample(self._service_rng)
            if spec.ops:
                yield self.sim.timeout(service * len(spec.ops))
            tombstoned = self._apply_ops(instance, kind)
        finally:
            self.executor.release()

        # --- Scripted abort: roll back and compensate (Section 3.2) ----
        aborting = (
            instance.spec.abort_here and not instance.compensating
            and not tombstoned
        )
        if aborting:
            self._rollback_local(instance)
            self.history.aborted(instance.txn.name, self.sim.now, "requested")
            self.history.compensated(instance.txn.name)

        # --- Dispatch (children, or compensation fan-out) ---------------
        if instance.compensating:
            self._forward_compensation(instance, tracker, tombstoned)
        elif aborting:
            self._spawn_compensators(instance, tracker)
        elif not tombstoned:
            self._dispatch_children(instance, tracker)

        # --- Local commit (user-visible; Theorem 4.2: nothing above
        # waited for any non-local activity) ----------------------------
        if instance.is_root:
            self.history.locally_committed(instance.txn.name, self.sim.now)

        if self.config.completion == "immediate":
            # Section 4.1 step 6, literally: increment C and terminate as
            # soon as the children have been dispatched.
            self.counters.inc_completion(instance.version, instance.source_node)

        tracker.executed = True
        if tracker.complete:
            self._complete_instance(instance)

    def _apply_ops(self, instance: SubtxnInstance, kind: str) -> bool:
        """Execute the instance's local operations.

        Returns:
            ``True`` if the instance was suppressed (tombstoned original, or
            compensation for a subtransaction that never ran here).
        """
        key = instance.instance_key
        original_key = (instance.txn.name, instance.sid, False)
        if instance.compensating:
            if original_key not in self._executed:
                # Compensation overtook the original: leave a tombstone so
                # the original becomes a no-op when it arrives.
                self._tombstones.add(original_key)
                return True
            self._apply_inverses(instance)
            return False
        if original_key in self._tombstones:
            # "A compensating subtransaction causes abort of the
            # corresponding subtransaction if it has not finished."
            return True
        version = instance.version
        # Event objects are built only when the history keeps them; with
        # detail off (large benchmark runs) reads record just their
        # (key, value) and writes record nothing, skipping one dataclass
        # allocation per operation on the hottest loop in the system.
        detail = self.history.detail
        store = self.store
        for op in instance.spec.ops:
            if isinstance(op, ReadOp):
                if detail:
                    used = store.version_max_leq(op.key, version)
                    value = (
                        store.get_exact(op.key, used) if used is not None
                        else None
                    )
                    self.history.read(
                        ReadEvent(
                            time=self.sim.now,
                            txn=instance.txn.name,
                            subtxn=instance.sid,
                            node=self.node_id,
                            key=op.key,
                            version_requested=version,
                            version_used=used,
                            value=value,
                        )
                    )
                else:
                    value = store.read_max_leq(op.key, version, default=None)
                    self.history.note_read(instance.txn.name, op.key, value)
            elif isinstance(op, WriteOp):
                if kind == TxnKind.READ:
                    raise ProtocolError(
                        f"read-only transaction {instance.txn.name!r} "
                        "attempted a write"
                    )
                # Step 4: atomically check/create x(V(T)), then update all
                # versions >= V(T) (the dual-write rule for stragglers).
                store.ensure_version(op.key, version)
                if self.config.dual_write:
                    written = store.apply_geq(op.key, version, op.operation)
                else:
                    store.apply_exact(op.key, version, op.operation)
                    written = (version,)
                if detail:
                    self.history.wrote(
                        WriteEvent(
                            time=self.sim.now,
                            txn=instance.txn.name,
                            subtxn=instance.sid,
                            node=self.node_id,
                            key=op.key,
                            version=version,
                            versions_written=len(written),
                            operation=op.operation,
                            versions=written,
                        )
                    )
        self._executed.add(key)
        return False

    def _apply_inverses(self, instance: SubtxnInstance) -> None:
        """Apply the compensating (inverse) writes of a subtransaction."""
        version = instance.version
        for op in reversed(instance.spec.ops):
            if not isinstance(op, WriteOp):
                continue
            inverse = op.operation.inverse()
            self.store.ensure_version(op.key, version)
            if self.config.dual_write:
                written = self.store.apply_geq(op.key, version, inverse)
            else:
                self.store.apply_exact(op.key, version, inverse)
                written = (version,)
            if not self.history.detail:
                continue
            self.history.wrote(
                WriteEvent(
                    time=self.sim.now,
                    txn=instance.txn.name,
                    subtxn=instance.sid,
                    node=self.node_id,
                    key=op.key,
                    version=version,
                    versions_written=len(written),
                    operation=inverse,
                    compensating=True,
                    versions=written,
                )
            )

    def _rollback_local(self, instance: SubtxnInstance) -> None:
        """An aborting subtransaction rolls back its own local changes."""
        self._apply_inverses(instance)

    def _acquire_commute_locks(self, instance: SubtxnInstance):
        """Take CR/CW locks for every op (Section 5; retry-on-die keeps
        well-behaved transactions abort-free)."""
        spec = instance.spec
        requests = []
        for op in spec.ops:
            if isinstance(op, WriteOp):
                requests.append((op.key, LockMode.CW))
            else:
                requests.append((op.key, LockMode.CR))
        timestamp = self.history.txns[instance.txn.name].submit_time
        for key, mode in requests:
            queued_at = self.sim.now
            while True:
                event = self.locks.acquire(key, mode, instance.txn.name, timestamp)
                try:
                    yield event
                except DeadlockAbort:
                    # Wait-die killed the request; retry after a beat.  The
                    # transaction keeps its other locks (wound-free retry),
                    # and the whole retry loop counts as lock-wait time.
                    yield self.sim.timeout(
                        self.rngs.sample("node.lock-retry", self.config.op_service)
                    )
                    continue
                break
            self.history.waited(
                instance.txn.name, WaitReason.LOCK, self.sim.now - queued_at
            )

    # ------------------------------------------------------------------
    # Dispatch and completion plumbing
    # ------------------------------------------------------------------

    def _dispatch_children(self, instance: SubtxnInstance,
                           tracker: CompletionTracker) -> None:
        for child_sid in instance.index.children[instance.sid]:
            child = instance.child_instance(child_sid, self.node_id)
            child.notify_key = instance.instance_key
            target = instance.index.node_of(child_sid)
            # Step 5: increment the request counter *before* sending.
            self.counters.inc_request(instance.version, target)
            tracker.outstanding_children += 1
            self.network.send(
                self.node_id, target, MessageKind.SUBTXN_REQUEST, child
            )

    def _spawn_compensators(self, instance: SubtxnInstance,
                            tracker: CompletionTracker) -> None:
        """The aborting subtransaction compensates the already-running part
        of the tree: its parent's branch.  (Its own children were never
        dispatched.)"""
        parent_sid = instance.index.parent[instance.sid]
        if parent_sid is None:
            return
        compensator = instance.compensator(parent_sid, self.node_id)
        compensator.notify_key = instance.instance_key
        target = instance.index.node_of(parent_sid)
        self.counters.inc_request(instance.version, target)
        tracker.outstanding_children += 1
        self.network.send(
            self.node_id, target, MessageKind.COMPENSATION, compensator
        )

    def _forward_compensation(self, instance: SubtxnInstance,
                              tracker: CompletionTracker,
                              tombstoned: bool) -> None:
        """Propagate compensation to the other tree neighbours."""
        if tombstoned:
            # The target never ran here, so nothing below it ran either.
            return
        for neighbour_sid in instance.index.neighbours(instance.sid):
            if neighbour_sid == instance.comp_skip:
                continue
            compensator = instance.compensator(neighbour_sid, self.node_id)
            compensator.notify_key = instance.instance_key
            target = instance.index.node_of(neighbour_sid)
            self.counters.inc_request(instance.version, target)
            tracker.outstanding_children += 1
            self.network.send(
                self.node_id, target, MessageKind.COMPENSATION, compensator
            )

    def _complete_instance(self, instance: SubtxnInstance) -> None:
        """Subtree completion: counter increment (hierarchical mode) plus
        the upward completion notice."""
        if self.config.completion != "immediate":
            # Step 6: atomically increment C[V(T)][source] and terminate.
            # In hierarchical mode this happens only once every descendant
            # has completed (Table 1's timing).
            self.counters.inc_completion(instance.version, instance.source_node)
        del self._trackers[instance.instance_key]
        notify_key = instance.notify_key
        if notify_key is None:
            # Root of the tree: the whole transaction is done.
            self.history.globally_completed(instance.txn.name, self.sim.now)
            if self.config.enable_locking and not instance.txn.is_read_only:
                self._release_locks_everywhere(instance)
            return
        parent_node = instance.source_node
        notice = CompletionNotice(
            txn_name=instance.txn.name,
            parent_key=notify_key,
            child_key=instance.instance_key,
        )
        if parent_node == self.node_id:
            self._on_completion_notice(notice)
        else:
            self.network.send(
                self.node_id, parent_node, MessageKind.COMPLETION_NOTICE, notice
            )

    def _on_completion_notice(self, notice: CompletionNotice) -> None:
        tracker = self._trackers.get(notice.parent_key)
        if tracker is None:
            raise ProtocolError(
                f"node {self.node_id}: completion notice for unknown "
                f"instance {notice.parent_key!r}"
            )
        tracker.outstanding_children -= 1
        if tracker.complete:
            self._complete_instance(tracker.instance)

    def _release_locks_everywhere(self, instance: SubtxnInstance) -> None:
        """Asynchronous clean-up phase: release commute locks on every node
        the transaction touched (Section 5)."""
        for node in instance.txn.nodes:
            if node == self.node_id:
                self.locks.release_all(instance.txn.name)
            else:
                self.network.send(
                    self.node_id, node, MessageKind.LOCK_RELEASE,
                    instance.txn.name,
                )

    # ------------------------------------------------------------------
    # Version advancement handlers (node side of Section 4.3)
    # ------------------------------------------------------------------

    def advance_update_version(self, new_version: int) -> None:
        """Advance ``vu`` (explicit notification or inferred from traffic)."""
        if new_version <= self.vu:
            return
        for version in range(self.vu + 1, new_version + 1):
            self.counters.ensure_version(version)
            self._advanced_to.add(version)
        self.vu = new_version

    def _on_start_advancement(self, message: Message) -> None:
        new_version = message.payload
        self.advance_update_version(new_version)
        self.network.send(
            self.node_id, message.src, MessageKind.START_ADVANCEMENT_ACK,
            (self.node_id, new_version),
        )

    def _on_counter_read(self, message: Message) -> None:
        version, which = message.payload
        # Snapshot assembly: the zero-copy views locate the live row, and
        # dict() materializes the point-in-time copy HERE, at the node's
        # read time.  The reply payload must never alias the live row — the
        # two-wave detector's soundness argument pins each wave's values to
        # the moment the node processed the COUNTER_READ (see
        # CounterTable.requests_view).
        if which == "R":
            snapshot = dict(self.counters.requests_view(version))
        elif which == "C":
            snapshot = dict(self.counters.completions_view(version))
        elif which == "ACTIVE":
            # Support for the naive ActivePollDetector ablation: how many
            # subtransactions of this version are *executing right now* —
            # the strawman check of Section 2.2, blind to committed parents
            # whose children are still in transit.
            active = sum(
                1
                for tracker in self._trackers.values()
                if tracker.instance.version == version and not tracker.executed
            )
            snapshot = {self.node_id: active}
        else:
            raise ProtocolError(f"bad counter read request: {which!r}")
        self.network.send(
            self.node_id, message.src, MessageKind.COUNTER_READ_REPLY,
            (self.node_id, version, which, snapshot),
        )

    def _on_read_advance(self, message: Message) -> None:
        new_version = message.payload
        if new_version > self.vr:
            self.vr = new_version
            self.counters.ensure_version(new_version)
            if self.nc3v is not None:
                self.nc3v.on_read_advance()
        self.network.send(
            self.node_id, message.src, MessageKind.READ_ADVANCE_ACK,
            (self.node_id, new_version),
        )

    def _on_garbage_collect(self, message: Message) -> None:
        new_read_version = message.payload
        self.store.collect(new_read_version)
        self.counters.gc_below(new_read_version)
        self.network.send(
            self.node_id, message.src, MessageKind.GARBAGE_COLLECT_ACK,
            (self.node_id, new_read_version),
        )
