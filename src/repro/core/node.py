"""The 3V protocol plugin (Sections 4.1 and 4.2 of the paper).

Each node owns a multi-version store, a request/completion counter table,
its current update version ``vu`` and read version ``vr``, and a local
executor modelling local concurrency control.  The generic node mechanism
(mailbox loop, executor, completion notices, compensation routing) lives
in :mod:`repro.runtime`; this module supplies the 3V policy:

* root subtransactions — assigned ``V(T) = vu`` (updates) or ``V(T) = vr``
  (queries) on arrival;
* descendant subtransactions — carrying ``V(T)`` from their root; an update
  descendant with ``V(T) > vu`` acts as an implicit start-advancement
  notification (Section 2.2);
* request counters incremented before every child/compensator send and
  completion counters incremented per Table 1's hierarchical timing (or
  the literal Section 4.1 step 6 "immediate" timing — an ablation);
* the dual-write rule for straggler subtransactions (Section 4.1 step 4);
* version-advancement control messages from the coordinator (Section 4.3).

The user-visible commitment of a subtransaction happens right after its
local operations and child dispatch (no waiting for anything non-local:
Theorem 4.2).  *Completion* — the counter increment — is hierarchical: a
subtransaction's completion counter is incremented only after all its
descendants complete, matching Table 1 of the paper (the ``C1pq = 1``
increments appear only after the corresponding subtree's completion
notices arrive).  Hierarchical completion keeps the quiescence check
conservative and correct.
"""

from __future__ import annotations

from repro.errors import DeadlockAbort, ProtocolError
from repro.net.message import Message, MessageKind
from repro.runtime.config import NodeConfig
from repro.runtime.node import ProtocolNode
from repro.runtime.plugin import ProtocolPlugin
from repro.storage.counters import CounterTable
from repro.storage.locktable import LockMode
from repro.txn.history import (
    ReadEvent,
    TxnKind,
    WaitReason,
    WriteEvent,
)
from repro.txn.runtime import SubtxnInstance
from repro.txn.spec import ReadOp, WriteOp

#: A 3V node is the shared runtime node; all protocol state the plugin
#: attaches (``counters``, ``vu``, ``vr``, ``nc3v``) lives on it.
ThreeVNode = ProtocolNode

__all__ = ["NodeConfig", "ThreeVNode", "ThreeVPlugin"]


class ThreeVPlugin(ProtocolPlugin):
    """Protocol policy for 3V (and, when enabled, its NC3V extension)."""

    def __init__(self, allow_noncommuting: bool = False):
        super().__init__()
        self.allow_noncommuting = allow_noncommuting

    # ------------------------------------------------------------------
    # System / node integration
    # ------------------------------------------------------------------

    def bind(self, system) -> None:
        super().bind(system)
        if self.allow_noncommuting:
            system.config.enable_locking = True

    def make_store(self, node):
        return node.config.store_factory()

    def init_node(self, node) -> None:
        counters = CounterTable(node.node_id)
        if node.journal is not None:
            # Fault-injected runs: counter mutations are write-ahead
            # journaled alongside the store, so a crash loses no
            # request/completion increments (the paper's Section 6
            # "standard logging techniques" for the counter state the
            # termination-detection proof depends on).
            from repro.storage.wal import JournaledCounters

            node_id = node.node_id
            counters = JournaledCounters(
                counters, lambda: CounterTable(node_id)
            )
            node.journal.attach("counters", counters)
        node.counters = counters
        node.vu = node.config.initial_update_version
        node.vr = node.config.initial_read_version
        node.counters.ensure_version(node.vr)
        node.counters.ensure_version(node.vu)
        #: Versions for which a start-advancement was already processed.
        node._advanced_to = {node.vu}
        #: Highest coordinator epoch witnessed — requests stamped with an
        #: older epoch come from a dead incarnation and are fenced.
        node.coord_epoch = 0
        #: Simulation time of the last coordinator sign of life (any
        #: epoch-stamped request or heartbeat); standby monitors compare
        #: this against the lease to decide on a takeover.
        node._coord_seen = 0.0
        # Hook the NC3V extension (only in mixed deployments).
        if self.allow_noncommuting:
            from repro.core.nc3v import NC3VManager

            node.nc3v = NC3VManager(node)
        else:
            node.nc3v = None

    def on_recover(self, node) -> None:
        # The journal replay restored the counter tables and the store;
        # vu/vr and the advancement bookkeeping are checkpointed control
        # state.  Re-ensure the rows of the active version window
        # (defensive against a crash landing between a version bump and
        # its ensure_version) and re-check NC3V's admission gate so any
        # gated roots re-evaluate against the recovered state.
        for version in range(node.vr, node.vu + 1):
            node.counters.ensure_version(version)
        # Restart the lease clock: the backlog this node is about to drain
        # may be arbitrarily old, and a recovering node must not instantly
        # declare the coordinator dead on stale evidence.
        node._coord_seen = node.sim.now
        if node.nc3v is not None:
            node.nc3v.on_recover()
            node.nc3v.on_read_advance()

    # ------------------------------------------------------------------
    # Lifecycle hooks (Sections 4.1 / 4.2)
    # ------------------------------------------------------------------

    def takeover(self, node, instance: SubtxnInstance, kind: str):
        if kind != TxnKind.NONCOMMUTING:
            return None
        if node.nc3v is None:
            raise ProtocolError(
                f"node {node.node_id}: non-commuting transaction "
                f"{instance.txn.name!r} but NC3V is not enabled"
            )
        return node.nc3v.run_subtxn(instance)

    def admit_root(self, node, instance: SubtxnInstance, kind: str):
        version = node.vr if kind == TxnKind.READ else node.vu
        instance.version = version
        # Step 1: a root arrival is a request from p to p.
        node.counters.inc_request(version, node.node_id)
        node.history.begin_txn(
            instance.txn.name, kind, version, node.sim.now, node.node_id
        )
        return None

    def on_descendant(self, node, instance: SubtxnInstance, kind: str) -> None:
        # Step 2: an update descendant from the future is an implicit
        # start-advancement notification.
        if kind == TxnKind.UPDATE and instance.version > node.vu:
            self.advance_update_version(node, instance.version)

    def pre_execute(self, node, instance: SubtxnInstance, kind: str):
        # Commute locks (only in mixed NC3V deployments).
        if node.config.enable_locking and kind == TxnKind.UPDATE:
            return self._acquire_commute_locks(node, instance)
        return None

    def _acquire_commute_locks(self, node, instance: SubtxnInstance):
        """Take CR/CW locks for every op (Section 5; retry-on-die keeps
        well-behaved transactions abort-free)."""
        spec = instance.spec
        requests = []
        for op in spec.ops:
            if isinstance(op, WriteOp):
                requests.append((op.key, LockMode.CW))
            else:
                requests.append((op.key, LockMode.CR))
        timestamp = node.history.txns[instance.txn.name].submit_time
        for key, mode in requests:
            queued_at = node.sim.now
            while True:
                event = node.locks.acquire(key, mode, instance.txn.name, timestamp)
                try:
                    yield event
                except DeadlockAbort:
                    # Wait-die killed the request; retry after a beat.  The
                    # transaction keeps its other locks (wound-free retry),
                    # and the whole retry loop counts as lock-wait time.
                    yield node.sim.timeout(
                        node.rngs.sample("node.lock-retry", node.config.op_service)
                    )
                    continue
                break
            node.history.waited(
                instance.txn.name, WaitReason.LOCK, node.sim.now - queued_at
            )

    def local_service(self, node, instance: SubtxnInstance):
        spec = instance.spec
        service = node.config.op_service.sample(node._service_rng)
        if spec.ops:
            yield node.sim.timeout(service * len(spec.ops))

    def execute_ops(self, node, instance: SubtxnInstance, kind: str) -> None:
        version = instance.version
        # Event objects are built only when the history keeps them; with
        # detail off (large benchmark runs) reads record just their
        # (key, value) and writes record nothing, skipping one dataclass
        # allocation per operation on the hottest loop in the system.
        detail = node.history.detail
        store = node.store
        for op in instance.spec.ops:
            if isinstance(op, ReadOp):
                if detail:
                    used = store.version_max_leq(op.key, version)
                    value = (
                        store.get_exact(op.key, used) if used is not None
                        else None
                    )
                    node.history.read(
                        ReadEvent(
                            time=node.sim.now,
                            txn=instance.txn.name,
                            subtxn=instance.sid,
                            node=node.node_id,
                            key=op.key,
                            version_requested=version,
                            version_used=used,
                            value=value,
                        )
                    )
                else:
                    value = store.read_max_leq(op.key, version, default=None)
                    node.history.note_read(instance.txn.name, op.key, value)
            elif isinstance(op, WriteOp):
                if kind == TxnKind.READ:
                    raise ProtocolError(
                        f"read-only transaction {instance.txn.name!r} "
                        "attempted a write"
                    )
                # Step 4: atomically check/create x(V(T)), then update all
                # versions >= V(T) (the dual-write rule for stragglers).
                store.ensure_version(op.key, version)
                if node.config.dual_write:
                    written = store.apply_geq(op.key, version, op.operation)
                else:
                    store.apply_exact(op.key, version, op.operation)
                    written = (version,)
                if detail:
                    node.history.wrote(
                        WriteEvent(
                            time=node.sim.now,
                            txn=instance.txn.name,
                            subtxn=instance.sid,
                            node=node.node_id,
                            key=op.key,
                            version=version,
                            versions_written=len(written),
                            operation=op.operation,
                            versions=written,
                        )
                    )

    def apply_inverses(self, node, instance: SubtxnInstance) -> None:
        version = instance.version
        for op in reversed(instance.spec.ops):
            if not isinstance(op, WriteOp):
                continue
            inverse = op.operation.inverse()
            node.store.ensure_version(op.key, version)
            if node.config.dual_write:
                written = node.store.apply_geq(op.key, version, inverse)
            else:
                node.store.apply_exact(op.key, version, inverse)
                written = (version,)
            if not node.history.detail:
                continue
            node.history.wrote(
                WriteEvent(
                    time=node.sim.now,
                    txn=instance.txn.name,
                    subtxn=instance.sid,
                    node=node.node_id,
                    key=op.key,
                    version=version,
                    versions_written=len(written),
                    operation=inverse,
                    compensating=True,
                    versions=written,
                )
            )

    # ------------------------------------------------------------------
    # Counter participation (Section 4.1 steps 5 / 6)
    # ------------------------------------------------------------------

    def note_request(self, node, version, target: str) -> None:
        node.counters.inc_request(version, target)

    def on_subtxn_executed(self, node, instance: SubtxnInstance) -> None:
        if node.config.completion == "immediate":
            # Section 4.1 step 6, literally: increment C and terminate as
            # soon as the children have been dispatched.
            node.counters.inc_completion(instance.version, instance.source_node)

    def on_instance_complete(self, node, instance: SubtxnInstance) -> None:
        if node.config.completion != "immediate":
            # Step 6: atomically increment C[V(T)][source] and terminate.
            # In hierarchical mode this happens only once every descendant
            # has completed (Table 1's timing).
            node.counters.inc_completion(instance.version, instance.source_node)

    def on_root_complete(self, node, instance: SubtxnInstance) -> None:
        if node.config.enable_locking and not instance.txn.is_read_only:
            self._release_locks_everywhere(node, instance)

    def _release_locks_everywhere(self, node, instance: SubtxnInstance) -> None:
        """Asynchronous clean-up phase: release commute locks on every node
        the transaction touched (Section 5)."""
        for target in instance.txn.nodes:
            if target == node.node_id:
                node.locks.release_all(instance.txn.name)
            else:
                node.network.send(
                    node.node_id, target, MessageKind.LOCK_RELEASE,
                    instance.txn.name,
                )

    # ------------------------------------------------------------------
    # Version advancement handlers (node side of Section 4.3)
    # ------------------------------------------------------------------

    def advance_update_version(self, node, new_version: int) -> None:
        """Advance ``vu`` (explicit notification or inferred from traffic)."""
        if new_version <= node.vu:
            return
        for version in range(node.vu + 1, new_version + 1):
            node.counters.ensure_version(version)
            node._advanced_to.add(version)
        node.vu = new_version

    def handle_message(self, node, message: Message) -> None:
        kind = message.kind
        if kind == MessageKind.START_ADVANCEMENT:
            self._on_start_advancement(node, message)
        elif kind == MessageKind.COUNTER_READ:
            self._on_counter_read(node, message)
        elif kind == MessageKind.READ_ADVANCE:
            self._on_read_advance(node, message)
        elif kind == MessageKind.GARBAGE_COLLECT:
            self._on_garbage_collect(node, message)
        elif kind == MessageKind.COORDINATOR_HEARTBEAT:
            self._fence_stale_epoch(node, message.payload[0])
        elif kind == MessageKind.LOCK_RELEASE:
            node.locks.release_all(message.payload)
        elif node.nc3v is not None and node.nc3v.handles(kind):
            node.nc3v.dispatch(message)
        else:
            super().handle_message(node, message)

    def _fence_stale_epoch(self, node, epoch: int) -> bool:
        """Fence a coordinator request from a dead incarnation.

        Returns ``True`` (and counts the drop) when the request's epoch
        is older than the highest this node has witnessed; otherwise
        records the epoch and the coordinator's sign of life and lets the
        request through.  Dropping without a reply is safe because a live
        successor re-runs its wave from the top and re-requests anything
        it still needs.
        """
        if epoch < node.coord_epoch:
            node.network.stats.stale_epoch_dropped += 1
            return True
        node.coord_epoch = epoch
        node._coord_seen = node.sim.now
        return False

    def _on_start_advancement(self, node, message: Message) -> None:
        epoch, new_version = message.payload
        if self._fence_stale_epoch(node, epoch):
            return
        self.advance_update_version(node, new_version)
        node.network.send(
            node.node_id, message.src, MessageKind.START_ADVANCEMENT_ACK,
            (node.node_id, new_version, epoch),
        )

    def _on_counter_read(self, node, message: Message) -> None:
        epoch, version, which = message.payload
        if self._fence_stale_epoch(node, epoch):
            return
        # Snapshot assembly: the zero-copy views locate the live row, and
        # dict() materializes the point-in-time copy HERE, at the node's
        # read time.  The reply payload must never alias the live row — the
        # two-wave detector's soundness argument pins each wave's values to
        # the moment the node processed the COUNTER_READ (see
        # CounterTable.requests_view).
        if which == "RT":
            # Aggregate wave (production two-wave detector): one scalar —
            # the incrementally-maintained total — instead of a row copy.
            snapshot = node.counters.request_total(version)
        elif which == "CT":
            snapshot = node.counters.completion_total(version)
        elif which == "R":
            snapshot = dict(node.counters.requests_view(version))
        elif which == "C":
            snapshot = dict(node.counters.completions_view(version))
        elif which == "RV":
            # Differential-verify wave: total and row from the same
            # atomic moment, so the coordinator can cross-check them.
            snapshot = (
                node.counters.request_total(version),
                dict(node.counters.requests_view(version)),
            )
        elif which == "CV":
            snapshot = (
                node.counters.completion_total(version),
                dict(node.counters.completions_view(version)),
            )
        elif which == "ACTIVE":
            # Support for the naive ActivePollDetector ablation: how many
            # subtransactions of this version are *executing right now* —
            # the strawman check of Section 2.2, blind to committed parents
            # whose children are still in transit.
            active = sum(
                1
                for tracker in node._trackers.values()
                if tracker.instance.version == version and not tracker.executed
            )
            snapshot = {node.node_id: active}
        else:
            raise ProtocolError(f"bad counter read request: {which!r}")
        node.network.send(
            node.node_id, message.src, MessageKind.COUNTER_READ_REPLY,
            (node.node_id, version, which, snapshot, epoch),
        )

    def _on_read_advance(self, node, message: Message) -> None:
        epoch, new_version = message.payload
        if self._fence_stale_epoch(node, epoch):
            return
        if new_version > node.vr:
            node.vr = new_version
            node.counters.ensure_version(new_version)
            if node.nc3v is not None:
                node.nc3v.on_read_advance()
        node.network.send(
            node.node_id, message.src, MessageKind.READ_ADVANCE_ACK,
            (node.node_id, new_version, epoch),
        )

    def _on_garbage_collect(self, node, message: Message) -> None:
        epoch, new_read_version = message.payload
        if self._fence_stale_epoch(node, epoch):
            return
        node.store.collect(new_read_version)
        node.counters.gc_below(new_read_version)
        node.network.send(
            node.node_id, message.src, MessageKind.GARBAGE_COLLECT_ACK,
            (node.node_id, new_read_version, epoch),
        )
