"""Version-advancement trigger policies.

The paper's "desired solution" automates *when* to advance: "we may want to
advance versions every hour, or once a certain number of update
transactions have accumulated, ... or after a particular update transaction
commits".  A policy is a process that watches the system and calls the
coordinator; the protocol itself is policy-agnostic.
"""

from __future__ import annotations

import typing

from repro.errors import AdvancementInProgress, ProcessKilled, ProtocolError
from repro.sim.simulator import Simulator
from repro.txn.history import History, TxnKind

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.advancement import AdvancementCoordinator


def _advance_once(sim, coordinator):
    """Trigger one advancement, robust to coordinator faults.

    Plain ``yield coordinator.advance()`` wedges a policy under fault
    injection two ways: if the coordinator is down (or a recovered
    incarnation is still finishing its resumed wave) the synchronous
    ``advance()`` call raises and kills the whole driver process — no
    later trigger ever fires again; and if the wave process is killed by a
    coordinator crash mid-flight, the raise propagates out of the
    ``yield``.  Policies skip the beat in both cases and try again at
    their next trigger.  Only those two conditions are absorbed: any other
    exception out of the wave is a real protocol bug and re-raises.
    """
    try:
        wave = coordinator.advance()
    except (AdvancementInProgress, ProtocolError):
        return
    try:
        yield wave
    except ProcessKilled as exc:
        # ProcessKilled reaches this yield two ways: the *wave* process
        # was killed (the wave event fails with that exact instance —
        # absorb and retry at the next trigger), or the *policy driver
        # itself* is being killed (e.g. ``stop_policy`` throws a fresh
        # instance in) — that one must propagate or the driver would
        # survive its own kill and keep advancing forever.
        if exc is wave.exception:
            return
        raise


class AdvancementPolicy:
    """Base class: start a driving process against a coordinator."""

    #: Set by :class:`~repro.core.system.ThreeVSystem` before ``start`` so
    #: store-inspecting policies (e.g. :class:`DivergencePolicy`) can read
    #: node state.
    system = None

    def bind(self, system) -> None:
        """Give the policy access to the owning system (optional hook)."""
        self.system = system

    def start(self, sim: Simulator, coordinator: "AdvancementCoordinator",
              history: History):
        raise NotImplementedError  # pragma: no cover


class ManualPolicy(AdvancementPolicy):
    """Never advances on its own; the user calls ``advance_versions()``."""

    def start(self, sim, coordinator, history):
        return None


class PeriodicPolicy(AdvancementPolicy):
    """Advance every ``interval`` time units (the "every hour" trigger).

    A new advancement starts only after the previous one fully completes,
    honouring the protocol's single-advancement assumption.
    """

    def __init__(self, interval: float, start_after: typing.Optional[float] = None):
        if interval <= 0:
            raise ValueError(f"advancement interval must be > 0: {interval}")
        self.interval = interval
        self.start_after = interval if start_after is None else start_after

    def start(self, sim, coordinator, history):
        def driver():
            yield sim.timeout(self.start_after)
            while True:
                yield from _advance_once(sim, coordinator)
                yield sim.timeout(self.interval)

        return sim.process(driver(), name="periodic-advancement")


class CountPolicy(AdvancementPolicy):
    """Advance once ``threshold`` update transactions committed since the
    last advancement (the "once a certain number of update transactions
    have accumulated" trigger).
    """

    def __init__(self, threshold: int, check_interval: float = 0.5):
        if threshold < 1:
            raise ValueError(f"count threshold must be >= 1: {threshold}")
        self.threshold = threshold
        self.check_interval = check_interval

    def start(self, sim, coordinator, history):
        def driver():
            committed_at_last = 0
            while True:
                yield sim.timeout(self.check_interval)
                committed = history.count(TxnKind.UPDATE)
                if committed - committed_at_last >= self.threshold:
                    yield from _advance_once(sim, coordinator)
                    committed_at_last = committed

        return sim.process(driver(), name="count-advancement")


class DivergencePolicy(AdvancementPolicy):
    """Advance once the update version has drifted far enough from the
    read version on watched data items (the paper's "when the difference
    in value of data items in different versions exceeds some threshold").

    Args:
        threshold: Advance when, summed over the watched items, the
            absolute difference between the freshest copy and the copy a
            reader sees exceeds this value.
        watch: ``(node_id, key)`` pairs to monitor; numeric items only.
        check_interval: How often to sample the stores.
    """

    def __init__(self, threshold: float,
                 watch: typing.Sequence[typing.Tuple[str, typing.Hashable]],
                 check_interval: float = 0.5):
        if threshold <= 0:
            raise ValueError(f"divergence threshold must be > 0: {threshold}")
        if not watch:
            raise ValueError("DivergencePolicy needs at least one watched item")
        self.threshold = threshold
        self.watch = list(watch)
        self.check_interval = check_interval

    def divergence(self) -> float:
        total = 0.0
        for node_id, key in self.watch:
            node = self.system.nodes[node_id]
            fresh = node.store.read_max_leq(key, node.vu, default=None)
            visible = node.store.read_max_leq(key, node.vr, default=None)
            if isinstance(fresh, (int, float)) and isinstance(
                visible, (int, float)
            ):
                total += abs(fresh - visible)
        return total

    def start(self, sim, coordinator, history):
        if self.system is None:
            raise ValueError("DivergencePolicy must be bound to a system")

        def driver():
            while True:
                yield sim.timeout(self.check_interval)
                if self.divergence() > self.threshold:
                    yield from _advance_once(sim, coordinator)

        return sim.process(driver(), name="divergence-advancement")


class TransactionTriggerPolicy(AdvancementPolicy):
    """Advance after specific transactions commit (the paper's "after a
    particular update transaction commits" — e.g. an end-of-day marker).

    Args:
        txn_names: Transaction names that each trigger one advancement.
        check_interval: Polling cadence.
    """

    def __init__(self, txn_names: typing.Iterable[str],
                 check_interval: float = 0.25):
        self.txn_names = set(txn_names)
        if not self.txn_names:
            raise ValueError("TransactionTriggerPolicy needs trigger names")
        self.check_interval = check_interval

    def start(self, sim, coordinator, history):
        def driver():
            pending = set(self.txn_names)
            while pending:
                yield sim.timeout(self.check_interval)
                fired = {
                    name for name in pending
                    if name in history.txns
                    and history.txns[name].global_complete_time is not None
                    and not history.txns[name].aborted
                }
                for _name in sorted(fired):
                    yield from _advance_once(sim, coordinator)
                pending -= fired

        return sim.process(driver(), name="txn-trigger-advancement")
