"""`ThreeVSystem` — the façade tying nodes, network, and coordinator together.

This is the main entry point of the library::

    from repro import ThreeVSystem, TransactionSpec, SubtxnSpec, WriteOp, Increment

    system = ThreeVSystem(["radiology", "pediatric"], seed=1)
    system.load("radiology", "balance:alice", 0.0)
    system.load("pediatric", "balance:alice", 0.0)
    visit = TransactionSpec(
        name="visit-1",
        root=SubtxnSpec(
            node="radiology",
            ops=[WriteOp("balance:alice", Increment(120.0))],
            children=[SubtxnSpec(node="pediatric",
                                 ops=[WriteOp("balance:alice", Increment(80.0))])],
        ),
    )
    system.submit(visit)
    system.advance_versions()
    system.run_until_quiet()

Everything is deterministic for a given seed.  The node mechanism and the
``load`` / ``submit`` / ``run*`` surface come from
:class:`repro.runtime.System`; this subclass adds the 3V-specific pieces —
the advancement coordinator, the optional advancement policy, and NC3V
submission checks.
"""

from __future__ import annotations

import typing

from repro.core.advancement import COORDINATOR_ID, AdvancementCoordinator
from repro.core.node import NodeConfig, ThreeVPlugin
from repro.core.policy import AdvancementPolicy
from repro.errors import ProtocolError
from repro.net.latency import LatencyModel
from repro.runtime.registry import PROTOCOLS
from repro.runtime.system import System
from repro.sim.events import Event
from repro.txn.spec import TransactionSpec


class ThreeVSystem(System):
    """A distributed database cluster running the 3V / NC3V protocols.

    Args:
        node_ids: Names of the database nodes.
        seed: Master seed for all randomness (latencies, service times).
        latency: Network latency model (default: constant 1.0).
        node_config: Shared per-node tunables.
        poll_interval: Coordinator quiescence poll interval.
        detector: Quiescence detector name (``"two-wave"`` is the sound
            one; ``"interleaved"`` / ``"active-poll"`` are ablations).
        allow_noncommuting: Enable the NC3V extension (commute locks for
            well-behaved updates, NR/NW + 2PC for non-commuting ones).
        detail: Record per-operation events in the history (turn off for
            very large benchmark runs).
        fifo_links: Enforce per-link FIFO message delivery.
        policy: Optional automatic advancement trigger.
        lease_interval: When > 0, the coordinator heartbeats its lease and
            every node runs a standby monitor; if the lease lapses, the
            lowest-id live node deterministically takes the role over
            (epoch fencing keeps a late-recovering incarnation harmless).
            0 (the default) adds no processes and no messages.
    """

    #: The advancement coordinator is a crashable fault target alongside
    #: the database nodes (``CrashEvent(node="coordinator")``).
    extra_crash_targets = (COORDINATOR_ID,)

    def __init__(
        self,
        node_ids: typing.Sequence[str],
        seed: int = 0,
        latency: typing.Optional[LatencyModel] = None,
        node_config: typing.Optional[NodeConfig] = None,
        poll_interval: float = 1.0,
        detector: str = "two-wave",
        allow_noncommuting: bool = False,
        detail: bool = True,
        fifo_links: bool = False,
        batch_delivery: bool = False,
        policy: typing.Optional[AdvancementPolicy] = None,
        faults=None,
        history=None,
        placement=None,
        lease_interval: float = 0.0,
    ):
        super().__init__(
            node_ids, seed=seed, latency=latency, node_config=node_config,
            detail=detail, fifo_links=fifo_links,
            batch_delivery=batch_delivery,
            plugin=ThreeVPlugin(allow_noncommuting=allow_noncommuting),
            faults=faults, history=history, placement=placement,
        )
        self.coordinator = AdvancementCoordinator(
            self.sim, self.network, list(node_ids), self.history,
            poll_interval=poll_interval, detector=detector,
            lease_interval=lease_interval,
        )
        self.policy = policy
        self._policy_process = None
        self._monitor_processes: typing.List = []
        if lease_interval > 0:
            # Standby monitors: one per node, staggered patience by rank so
            # the lowest-id live node always wins the takeover race.
            for rank, node_id in enumerate(sorted(node_ids)):
                self._monitor_processes.append(self.sim.process(
                    self._standby_monitor(node_id, rank),
                    name=f"coordinator-standby-{node_id}",
                ))
        if policy is not None:
            policy.bind(self)
            self._policy_process = policy.start(
                self.sim, self.coordinator, self.history
            )

    # ------------------------------------------------------------------
    # Inspection and submission
    # ------------------------------------------------------------------

    def current_read_version(self, node) -> int:
        return node.vr

    def submit(self, spec: TransactionSpec) -> None:
        """Submit a transaction now; its root runs at ``spec.root.node``."""
        if not spec.is_well_behaved and not self.config.enable_locking:
            raise ProtocolError(
                f"{spec.name!r} is non-commuting; construct the system with "
                "allow_noncommuting=True to run it (NC3V)"
            )
        super().submit(spec)

    # ------------------------------------------------------------------
    # Version advancement
    # ------------------------------------------------------------------

    def advance_versions(self) -> Event:
        """Manually start one version advancement; returns its process."""
        return self.coordinator.advance()

    @property
    def read_version(self) -> int:
        return self.coordinator.vr

    @property
    def update_version(self) -> int:
        return self.coordinator.vu

    def stop_policy(self) -> None:
        """Kill every automatic driver (policy, heartbeats, standby
        monitors) so the system can drain."""
        if self._policy_process is not None:
            self._policy_process.kill()
            self._policy_process = None
        for process in self._monitor_processes:
            if process.is_alive:
                process.kill()
        self._monitor_processes = []
        self.coordinator.stop_heartbeats()

    # ------------------------------------------------------------------
    # Coordinator fault surface
    # ------------------------------------------------------------------

    def crash_coordinator(self) -> None:
        """Fail-stop the advancement coordinator (see
        :meth:`AdvancementCoordinator.crash`)."""
        self.coordinator.crash()

    def recover_coordinator(self) -> None:
        """Restart the coordinator in place as a new incarnation."""
        self.coordinator.recover()

    def crash(self, node_id: str) -> None:
        # A takeover moves the coordinator role onto a database node, so
        # crashing that node fail-stops the hosted incarnation too.
        super().crash(node_id)
        coordinator = getattr(self, "coordinator", None)
        if (coordinator is not None and coordinator.host == node_id
                and not coordinator.down):
            coordinator.crash()

    def _scheduled_extra_crash(self, event) -> None:
        """Run a planned coordinator crash/recover cycle."""
        if self.coordinator.down:
            return
        self.coordinator.crash()
        self.sim.schedule(event.down_for, self.coordinator.recover)

    def _standby_monitor(self, node_id: str, rank: int):
        """Per-node lease watcher (runs only with ``lease_interval > 0``).

        Patience is ``2 * lease + rank * lease`` with the rank taken in
        sorted node-id order, so the lowest-id live node's monitor always
        fires first — a deterministic election with no extra messages.
        """
        lease = self.coordinator.lease_interval
        patience = 2.0 * lease + rank * lease
        node = self.nodes[node_id]
        while True:
            yield self.sim.timeout(lease / 2.0)
            if node_id in self.down_nodes:
                continue
            coordinator = self.coordinator
            if coordinator.host == node_id and not coordinator.down:
                # This node hosts the live incarnation; its own silence is
                # not evidence of coordinator death.
                node._coord_seen = self.sim.now
                continue
            if self.sim.now - node._coord_seen > patience:
                coordinator.failover(node_id)
                node._coord_seen = self.sim.now


def _build_3v(node_ids, *, seed, latency, node_config, detail,
              advancement_period, safety_delay, poll_interval,
              allow_noncommuting, faults=None, batch_delivery=False,
              history=None, placement=None):
    from repro.core.policy import PeriodicPolicy

    return ThreeVSystem(
        node_ids, seed=seed, latency=latency, node_config=node_config,
        poll_interval=poll_interval, detail=detail,
        allow_noncommuting=allow_noncommuting,
        policy=PeriodicPolicy(advancement_period), faults=faults,
        batch_delivery=batch_delivery, history=history,
        placement=placement,
    )


PROTOCOLS.register(
    "3v", _build_3v, order=0, strict_audit=True,
    coordinator=COORDINATOR_ID,
    description="the paper's 3V multiversioning protocol (NC3V when "
                "corrections are present)",
)
