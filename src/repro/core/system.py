"""`ThreeVSystem` — the façade tying nodes, network, and coordinator together.

This is the main entry point of the library::

    from repro import ThreeVSystem, TransactionSpec, SubtxnSpec, WriteOp, Increment

    system = ThreeVSystem(["radiology", "pediatric"], seed=1)
    system.load("radiology", "balance:alice", 0.0)
    system.load("pediatric", "balance:alice", 0.0)
    visit = TransactionSpec(
        name="visit-1",
        root=SubtxnSpec(
            node="radiology",
            ops=[WriteOp("balance:alice", Increment(120.0))],
            children=[SubtxnSpec(node="pediatric",
                                 ops=[WriteOp("balance:alice", Increment(80.0))])],
        ),
    )
    system.submit(visit)
    system.advance_versions()
    system.run_until_quiet()

Everything is deterministic for a given seed.
"""

from __future__ import annotations

import typing

from repro.core.advancement import AdvancementCoordinator
from repro.core.nc3v import NC3VManager
from repro.core.node import NodeConfig, ThreeVNode
from repro.core.policy import AdvancementPolicy
from repro.errors import ProtocolError
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.sim.distributions import RngRegistry
from repro.sim.events import Event
from repro.sim.simulator import Simulator
from repro.txn.history import History
from repro.txn.runtime import SubtxnInstance, TxnIndex
from repro.txn.spec import TransactionSpec


class ThreeVSystem:
    """A distributed database cluster running the 3V / NC3V protocols.

    Args:
        node_ids: Names of the database nodes.
        seed: Master seed for all randomness (latencies, service times).
        latency: Network latency model (default: constant 1.0).
        node_config: Shared per-node tunables.
        poll_interval: Coordinator quiescence poll interval.
        detector: Quiescence detector name (``"two-wave"`` is the sound
            one; ``"interleaved"`` / ``"active-poll"`` are ablations).
        allow_noncommuting: Enable the NC3V extension (commute locks for
            well-behaved updates, NR/NW + 2PC for non-commuting ones).
        detail: Record per-operation events in the history (turn off for
            very large benchmark runs).
        fifo_links: Enforce per-link FIFO message delivery.
        policy: Optional automatic advancement trigger.
    """

    def __init__(
        self,
        node_ids: typing.Sequence[str],
        seed: int = 0,
        latency: typing.Optional[LatencyModel] = None,
        node_config: typing.Optional[NodeConfig] = None,
        poll_interval: float = 1.0,
        detector: str = "two-wave",
        allow_noncommuting: bool = False,
        detail: bool = True,
        fifo_links: bool = False,
        policy: typing.Optional[AdvancementPolicy] = None,
    ):
        if not node_ids:
            raise ProtocolError("a system needs at least one node")
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        self.network = Network(
            self.sim, rngs=self.rngs, latency=latency, fifo_links=fifo_links
        )
        self.history = History(detail=detail)
        self.config = node_config if node_config is not None else NodeConfig()
        if allow_noncommuting:
            self.config.enable_locking = True
        self.nodes: typing.Dict[str, ThreeVNode] = {}
        for node_id in node_ids:
            node = ThreeVNode(
                self.sim, self.network, node_id, self.history,
                config=self.config, rngs=self.rngs,
            )
            if allow_noncommuting:
                node.nc3v = NC3VManager(node)
            self.nodes[node_id] = node
        self.coordinator = AdvancementCoordinator(
            self.sim, self.network, list(node_ids), self.history,
            poll_interval=poll_interval, detector=detector,
        )
        self.policy = policy
        self._policy_process = None
        if policy is not None:
            policy.bind(self)
            self._policy_process = policy.start(
                self.sim, self.coordinator, self.history
            )
        self._submitted = 0

    # ------------------------------------------------------------------
    # Data loading and inspection
    # ------------------------------------------------------------------

    def load(self, node_id: str, key, value, version: int = 0) -> None:
        """Install an initial value on a node before (or during) a run."""
        self.node(node_id).store.load(key, value, version=version)

    def node(self, node_id: str) -> ThreeVNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ProtocolError(f"unknown node: {node_id!r}") from None

    def value_at(self, node_id: str, key, version: typing.Optional[int] = None):
        """Read a value directly from a node's store (for tests/inspection).

        With ``version=None``, reads at the node's current read version —
        what a freshly arriving query would see.
        """
        node = self.node(node_id)
        bound = node.vr if version is None else version
        return node.store.read_max_leq(key, bound, default=None)

    # ------------------------------------------------------------------
    # Transaction submission
    # ------------------------------------------------------------------

    def submit(self, spec: TransactionSpec) -> None:
        """Submit a transaction now; its root runs at ``spec.root.node``."""
        if not spec.is_well_behaved and not self.config.enable_locking:
            raise ProtocolError(
                f"{spec.name!r} is non-commuting; construct the system with "
                "allow_noncommuting=True to run it (NC3V)"
            )
        index = TxnIndex(spec)
        instance = SubtxnInstance(
            txn=spec,
            index=index,
            sid=index.root_id,
            version=None,
            source_node=spec.root.node,
        )
        self.node(spec.root.node).submit(instance)
        self._submitted += 1

    def submit_at(self, time: float, spec: TransactionSpec) -> None:
        """Schedule a submission at an absolute simulation time."""
        delay = time - self.sim.now
        self.sim.schedule(delay, self.submit, spec)

    @property
    def submitted_count(self) -> int:
        return self._submitted

    # ------------------------------------------------------------------
    # Version advancement
    # ------------------------------------------------------------------

    def advance_versions(self) -> Event:
        """Manually start one version advancement; returns its process."""
        return self.coordinator.advance()

    @property
    def read_version(self) -> int:
        return self.coordinator.vr

    @property
    def update_version(self) -> int:
        return self.coordinator.vu

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, until: typing.Optional[float] = None) -> None:
        """Advance the simulation (see :meth:`repro.sim.Simulator.run`)."""
        self.sim.run(until=until)

    def run_for(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def run_until_quiet(self, limit: float = float("inf")) -> None:
        """Run until no scheduled work remains (needs no periodic policy).

        Blocked mailbox reads don't count as scheduled work, so a system
        with no in-flight transactions or advancement drains naturally.
        """
        while self.sim.pending_count:
            next_time = self.sim.peek_time()
            if next_time is not None and next_time > limit:
                raise ProtocolError(
                    f"system not quiet by simulated time {limit!r}"
                )
            self.sim.step()

    def stop_policy(self) -> None:
        """Kill the automatic advancement policy (to let the system drain)."""
        if self._policy_process is not None:
            self._policy_process.kill()
            self._policy_process = None
