"""Anomaly auditing: one call that scores a finished run.

Combines the serializability oracles and abort accounting into a single
:class:`AnomalyReport`, the unit the C4 correctness benchmark tabulates per
system.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.serializability import (
    Violation,
    atomic_visibility_violations,
    reads_checked,
    snapshot_violations,
)
from repro.txn.history import History, TxnKind


@dataclasses.dataclass
class AnomalyReport:
    """Correctness scorecard for one simulation run."""

    reads_checked: int
    fractured_reads: int
    snapshot_mismatches: int
    aborted_txns: int
    compensated_txns: int
    violations: typing.List[Violation]

    @property
    def clean(self) -> bool:
        """No correctness violations of any kind."""
        return self.fractured_reads == 0 and self.snapshot_mismatches == 0

    @property
    def fractured_rate(self) -> float:
        """Fraction of examined (read, key) pairs that were fractured."""
        if self.reads_checked == 0:
            return 0.0
        return self.fractured_reads / self.reads_checked


def audit(history: History, workload=None,
          check_snapshots: bool = False) -> AnomalyReport:
    """Score a run's history.

    Args:
        history: A *detailed* history (``detail=True``).
        workload: Required for ``check_snapshots``; the
            :class:`~repro.workloads.recording.RecordingWorkload` that
            generated the traffic (must be in ``"bitmask"`` mode).
        check_snapshots: Also run the strict Theorem 4.1 oracle.
    """
    fractured = atomic_visibility_violations(history)
    snapshot: typing.List[Violation] = []
    if check_snapshots:
        if workload is None:
            raise ValueError("snapshot checking requires the workload oracle")
        snapshot = snapshot_violations(history, workload)
    return AnomalyReport(
        reads_checked=reads_checked(history),
        fractured_reads=len(fractured),
        snapshot_mismatches=len(snapshot),
        aborted_txns=history.aborted_count(),
        compensated_txns=history.compensated_count(),
        violations=fractured + snapshot,
    )


def committed_counts(history: History) -> typing.Dict[str, int]:
    """Committed transactions by kind (convenience for tables)."""
    return {
        kind: history.count(kind)
        for kind in (TxnKind.UPDATE, TxnKind.READ, TxnKind.NONCOMMUTING)
    }
