"""Plain-text table rendering for benchmark output.

The benchmark harness prints paper-style tables (one per experiment);
this module keeps the formatting in one place so every table looks alike.
"""

from __future__ import annotations

import typing


def fmt(value, precision: int = 3) -> str:
    """Render one cell: floats get fixed precision, the rest ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


class Table:
    """A fixed-width text table with a title and aligned columns."""

    def __init__(self, title: str, columns: typing.Sequence[str],
                 precision: int = 3):
        self.title = title
        self.columns = list(columns)
        self.precision = precision
        self.rows: typing.List[typing.List[str]] = []

    def add(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([fmt(cell, self.precision) for cell in cells])

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            column.ljust(widths[index])
            for index, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(
                    cell.rjust(widths[index]) for index, cell in enumerate(row)
                )
            )
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - deliberate, reads naturally
        print()
        print(self.render())
        print()
