"""Replication statistics for benchmark tables.

A single seeded run is deterministic but still one draw from the
workload distribution; benchmark conclusions ("3V's goodput is flat in
cluster size") should rest on several seeds.  This module provides the
two tools the harness needs: mean with a Student-t confidence interval,
and Welch's t-test for "is A really faster than B".
"""

from __future__ import annotations

import dataclasses
import math
import typing

from scipy import stats as scipy_stats


@dataclasses.dataclass(frozen=True)
class ConfidenceInterval:
    """A sample mean with its two-sided confidence interval."""

    mean: float
    low: float
    high: float
    n: int
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f}"


def mean_ci(values: typing.Sequence[float],
            confidence: float = 0.95) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of ``values``.

    A single observation gets a degenerate (zero-width) interval.
    """
    if not values:
        raise ValueError("mean_ci of empty sample")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence out of range: {confidence}")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return ConfidenceInterval(mean, mean, mean, 1, confidence)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(variance / n)
    t = scipy_stats.t.ppf((1 + confidence) / 2, df=n - 1)
    return ConfidenceInterval(
        mean=mean, low=mean - t * sem, high=mean + t * sem,
        n=n, confidence=confidence,
    )


def welch_p_value(a: typing.Sequence[float],
                  b: typing.Sequence[float]) -> float:
    """Welch's t-test p-value for mean(a) != mean(b).

    Degenerate samples (all-identical values on both sides) return 0.0
    when the means differ and 1.0 when they coincide.
    """
    if len(a) < 2 or len(b) < 2:
        raise ValueError("welch_p_value needs >= 2 observations per side")
    if max(a) == min(a) and max(b) == min(b):
        return 1.0 if a[0] == b[0] else 0.0
    _stat, p_value = scipy_stats.ttest_ind(a, b, equal_var=False)
    return float(p_value)


def replicate(run: typing.Callable[[int], float],
              seeds: typing.Iterable[int]) -> typing.List[float]:
    """Run ``run(seed)`` for every seed and collect the scalar results."""
    return [run(seed) for seed in seeds]
