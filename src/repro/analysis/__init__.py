"""Analysis: serializability oracles, anomaly audits, metrics, tables."""

from repro.analysis.anomalies import AnomalyReport, audit, committed_counts
from repro.analysis.conflictgraph import (
    ConflictEdge,
    build_serialization_graph,
    equivalent_serial_order,
    is_conflict_serializable,
    serialization_cycles,
)
from repro.analysis.metrics import (
    LatencySummary,
    StallSummary,
    abort_rate,
    advancement_stalls,
    closed_at_from_history,
    latency_summary,
    max_remote_wait,
    percentile,
    staleness_summary,
    throughput,
    wait_summary,
)
from repro.analysis.report import Table, fmt
from repro.analysis.rolling import RollingAuditor
from repro.analysis.stats import (
    ConfidenceInterval,
    mean_ci,
    replicate,
    welch_p_value,
)
from repro.analysis.tracefile import (
    TraceStreamWriter,
    export_history,
    load_txn_records,
)
from repro.analysis.serializability import (
    Violation,
    atomic_visibility_violations,
    reads_checked,
    snapshot_violations,
)

__all__ = [
    "AnomalyReport",
    "ConfidenceInterval",
    "ConflictEdge",
    "LatencySummary",
    "RollingAuditor",
    "StallSummary",
    "Table",
    "TraceStreamWriter",
    "Violation",
    "abort_rate",
    "advancement_stalls",
    "atomic_visibility_violations",
    "audit",
    "build_serialization_graph",
    "closed_at_from_history",
    "committed_counts",
    "equivalent_serial_order",
    "is_conflict_serializable",
    "serialization_cycles",
    "export_history",
    "fmt",
    "load_txn_records",
    "latency_summary",
    "max_remote_wait",
    "mean_ci",
    "percentile",
    "replicate",
    "welch_p_value",
    "reads_checked",
    "snapshot_violations",
    "staleness_summary",
    "throughput",
    "wait_summary",
]
