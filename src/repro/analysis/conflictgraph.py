"""Commutativity-aware conflict-graph serializability checking.

A second, independent correctness instrument alongside the bitmask
oracle: build the serialization graph of a detailed history and test it
for cycles.  Nodes are committed transactions; there is an edge
``T1 -> T2`` whenever ``T1`` performed an operation on some
``(node, key, version)`` copy before a *conflicting* operation of ``T2``
on the same copy.  Two operations conflict unless

* both are reads, or
* both are writes whose operations commute (Definition 3.1 — increments
  against increments produce the same state in either order, so their
  relative order is unobservable and induces no constraint).

Acyclicity of this graph is commutativity-aware conflict
serializability; every conflict-serializable history is serializable in
the classical sense.  The checker is protocol-agnostic: single-version
baselines put everything on version 0; the 3V protocol's dual writes are
expanded to every version they touched (recorded in
``WriteEvent.versions``).

For a fractured read the graph shows a crisp witness: the reader
observed key copies *before* an update on one node and *after* it on
another, producing the two-cycle ``reader -> updater -> reader``.
"""

from __future__ import annotations

import typing

import networkx

from repro.txn.history import History


class ConflictEdge(typing.NamedTuple):
    """Why the graph contains ``src -> dst``."""

    src: str
    dst: str
    node: str
    key: typing.Hashable
    version: typing.Optional[int]
    kinds: str  # "wr", "rw", or "ww"


def _committed(history: History) -> typing.Set[str]:
    return {
        record.name
        for record in history.txns.values()
        if not record.aborted
    }


def _copy_events(history: History):
    """Yield ``(copy, time, txn, kind, operation)`` per touched copy."""
    committed = _committed(history)
    for event in history.read_events:
        if event.txn in committed:
            copy = (event.node, event.key, event.version_used)
            yield copy, event.time, event.txn, "r", None
    for event in history.write_events:
        if event.txn in committed and not event.compensating:
            for version in event.touched_versions:
                copy = (event.node, event.key, version)
                yield copy, event.time, event.txn, "w", event.operation


def _conflicts(kind_a: str, op_a, kind_b: str, op_b) -> bool:
    if kind_a == "r" and kind_b == "r":
        return False
    if kind_a == "w" and kind_b == "w":
        commuting = (
            op_a is not None and op_b is not None
            and op_a.commutes and op_b.commutes
        )
        return not commuting
    return True


def build_serialization_graph(history: History) -> networkx.DiGraph:
    """Construct the commutativity-aware serialization graph.

    Edge data: ``witnesses`` — a list of :class:`ConflictEdge` explaining
    each edge (capped at 5 per edge to bound memory).
    """
    graph = networkx.DiGraph()
    graph.add_nodes_from(_committed(history))
    per_copy: typing.Dict[tuple, list] = {}
    for copy, time, txn, kind, operation in _copy_events(history):
        per_copy.setdefault(copy, []).append((time, txn, kind, operation))
    for copy, events in per_copy.items():
        events.sort(key=lambda item: item[0])
        for index, (_time_a, txn_a, kind_a, op_a) in enumerate(events):
            for _time_b, txn_b, kind_b, op_b in events[index + 1:]:
                if txn_a == txn_b:
                    continue
                if not _conflicts(kind_a, op_a, kind_b, op_b):
                    continue
                node, key, version = copy
                if graph.has_edge(txn_a, txn_b):
                    witnesses = graph[txn_a][txn_b]["witnesses"]
                    if len(witnesses) < 5:
                        witnesses.append(ConflictEdge(
                            txn_a, txn_b, node, key, version,
                            kind_a + kind_b,
                        ))
                else:
                    graph.add_edge(txn_a, txn_b, witnesses=[ConflictEdge(
                        txn_a, txn_b, node, key, version, kind_a + kind_b,
                    )])
    return graph


def serialization_cycles(
    history: History, limit: int = 5
) -> typing.List[typing.List[str]]:
    """Return up to ``limit`` cycles of the serialization graph.

    An empty list certifies commutativity-aware conflict serializability
    of the history.
    """
    graph = build_serialization_graph(history)
    cycles = []
    for cycle in networkx.simple_cycles(graph):
        cycles.append(cycle)
        if len(cycles) >= limit:
            break
    return cycles


def is_conflict_serializable(history: History) -> bool:
    """Convenience wrapper: ``True`` iff the graph is acyclic."""
    return networkx.is_directed_acyclic_graph(
        build_serialization_graph(history)
    )


def equivalent_serial_order(history: History) -> typing.List[str]:
    """A witness serial order (topological sort of the graph).

    Raises:
        networkx.NetworkXUnfeasible: If the history is not serializable.
    """
    return list(networkx.topological_sort(build_serialization_graph(history)))
