"""Serializability and atomic-visibility oracles.

The correctness criterion is global serializability (Section 3.3); for the
3V protocol specifically, Theorem 4.1 says every schedule is equivalent to
the serial order *sorted by version number, updates before reads within a
version*.  Two executable checks cover this:

* :func:`atomic_visibility_violations` — for every committed read
  transaction, each data item read on several nodes must reflect the same
  set of update transactions.  Recording transactions write the *same
  amount* to every node an entity spans, so any divergence between the
  per-node values a single read observed is a fractured read.  Works on
  any workload built by :class:`~repro.workloads.recording.RecordingWorkload`.
* :func:`snapshot_violations` — the strict Theorem 4.1 check, requiring
  the workload's ``"bitmask"`` amount mode: every read with version ``v``
  must see **exactly** the committed recording transactions with version
  ``<= v`` — no partial transactions, nothing newer, nothing missing.

Both return structured :class:`Violation` records so tests can assert on
counts and benchmarks can tabulate anomaly rates.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.txn.history import History, TxnKind


@dataclasses.dataclass(frozen=True)
class Violation:
    """One detected correctness violation."""

    kind: str  # "fractured-read" | "snapshot-mismatch"
    txn: str
    key: typing.Hashable
    details: str


#: Tolerance for comparing float balances across nodes.  Money-mode
#: amounts commute *semantically* but float addition is not associative:
#: the same increments applied in different per-node arrival orders can
#: differ in the last few ULPs.  A real fractured read is off by at
#: least one whole update amount (cents), ~10^7 times this tolerance,
#: so drift never masks a genuine violation.  Bitmask-mode values are
#: ints and always compared exactly.
FLOAT_DRIFT_TOLERANCE = 1e-9


def effectively_distinct(values: typing.Iterable) -> set:
    """The distinct values, treating ULP-drifted floats as equal.

    Non-float values (bitmask ints, ``None``) keep exact set semantics;
    floats are clustered with a relative-and-absolute tolerance of
    :data:`FLOAT_DRIFT_TOLERANCE`.
    """
    exact = set(values)
    floats = sorted(v for v in exact if isinstance(v, float))
    if len(floats) <= 1:
        return exact
    clusters = [floats[0]]
    for value in floats[1:]:
        if not math.isclose(value, clusters[-1],
                            rel_tol=FLOAT_DRIFT_TOLERANCE,
                            abs_tol=FLOAT_DRIFT_TOLERANCE):
            clusters.append(value)
    return {v for v in exact if not isinstance(v, float)} | set(clusters)


def _reads_by_txn_and_key(history: History) -> typing.Dict[
    str, typing.Dict[typing.Hashable, typing.List]
]:
    """Group detailed read events: txn -> key -> [events]."""
    grouped: typing.Dict[str, typing.Dict[typing.Hashable, list]] = {}
    for event in history.read_events:
        record = history.txns.get(event.txn)
        if record is None or record.aborted or record.kind != TxnKind.READ:
            continue
        grouped.setdefault(event.txn, {}).setdefault(event.key, []).append(event)
    return grouped


def atomic_visibility_violations(history: History) -> typing.List[Violation]:
    """Fractured reads: one read transaction, one key, different values on
    different nodes.

    Requires the history to carry detailed read events (``detail=True``).
    """
    violations = []
    for txn, by_key in _reads_by_txn_and_key(history).items():
        for key, events in by_key.items():
            values = {(event.node, event.value) for event in events}
            distinct = effectively_distinct(
                value for _node, value in values)
            if len(distinct) > 1:
                violations.append(
                    Violation(
                        kind="fractured-read",
                        txn=txn,
                        key=key,
                        details=f"per-node values {sorted(values)!r}",
                    )
                )
    return violations


def snapshot_violations(history: History, workload) -> typing.List[Violation]:
    """Theorem 4.1: reads see exactly the committed updates of versions
    ``<= V(read)``, atomically.

    Args:
        history: A detailed history.
        workload: A :class:`~repro.workloads.recording.RecordingWorkload`
            run in ``"bitmask"`` mode (so balances decompose uniquely).
    """
    violations = []
    # A non-commuting correction overwrites a balance wholesale (possibly
    # with a non-integer), so corrected entities no longer decompose as
    # bitmasks; the oracle conservatively skips them.
    corrected = frozenset(
        getattr(workload, "correction_entities", {}).values()
    )
    for txn, by_key in _reads_by_txn_and_key(history).items():
        record = history.txns[txn]
        for key, events in by_key.items():
            if not str(key).startswith("bal:"):
                continue
            # Replicated keys are slot-qualified ("bal:38#0"); the slot
            # never changes which entity's committed mask applies.
            entity = int(str(key).split(":", 1)[1].split("#", 1)[0])
            if entity in corrected:
                continue
            expected = workload.committed_mask(
                history, entity, max_version=record.version
            )
            for event in events:
                observed = event.value if event.value is not None else 0
                if observed != expected:
                    missing = expected & ~observed
                    extra = observed & ~expected
                    violations.append(
                        Violation(
                            kind="snapshot-mismatch",
                            txn=txn,
                            key=key,
                            details=(
                                f"node {event.node}: version {record.version}, "
                                f"missing mask {missing:#x}, "
                                f"extra mask {extra:#x}"
                            ),
                        )
                    )
    return violations


def reads_checked(history: History) -> int:
    """How many (read transaction, key) pairs the oracles examined."""
    return sum(
        len(by_key) for by_key in _reads_by_txn_and_key(history).values()
    )
