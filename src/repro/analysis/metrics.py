"""Latency, throughput, wait, and staleness summaries.

These functions turn a :class:`~repro.txn.history.History` into the numbers
the benchmark tables report.  All of them are protocol-agnostic: the same
summaries are computed for 3V and every baseline, so comparisons are
apples-to-apples.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.txn.history import History, TxnKind


def percentile(values: typing.Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = int(position)
    fraction = position - lower
    if lower + 1 >= len(ordered):
        return ordered[-1]
    return ordered[lower] * (1 - fraction) + ordered[lower + 1] * fraction


@dataclasses.dataclass
class LatencySummary:
    """Distribution summary of one latency population."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, values: typing.Sequence[float]) -> "LatencySummary":
        if not values:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            max=max(values),
        )


def latency_summary(
    history: History,
    kind: typing.Optional[str] = None,
    which: str = "local",
) -> LatencySummary:
    """Latency distribution of committed transactions.

    Args:
        kind: Restrict to one :class:`~repro.txn.history.TxnKind`.
        which: ``"local"`` (user-perceived root commit) or ``"global"``
            (whole tree completed).
    """
    values = []
    for record in history.committed_txns(kind):
        latency = (
            record.local_latency if which == "local" else record.global_latency
        )
        if latency is not None:
            values.append(latency)
    return LatencySummary.of(values)


def throughput(history: History, duration: float,
               kind: typing.Optional[str] = None) -> float:
    """Committed transactions per time unit over ``duration``."""
    if duration <= 0:
        raise ValueError(f"duration must be > 0: {duration}")
    return history.count(kind) / duration


def abort_rate(history: History) -> float:
    """Fraction of all finished transactions that aborted."""
    total = len(history.txns)
    if total == 0:
        return 0.0
    return len(history.aborted_txns()) / total


def wait_summary(history: History, kind: typing.Optional[str] = None
                 ) -> typing.Dict[str, float]:
    """Total wait time per :class:`~repro.txn.history.WaitReason`."""
    totals: typing.Dict[str, float] = {}
    for record in history.committed_txns(kind):
        for reason, duration in record.waits.items():
            totals[reason] = totals.get(reason, 0.0) + duration
    return totals


def max_remote_wait(history: History, kind: typing.Optional[str] = None
                    ) -> float:
    """Largest remote-activity wait any committed transaction suffered —
    Theorem 4.2 says this is exactly 0 for well-behaved 3V traffic."""
    waits = [r.remote_wait for r in history.committed_txns(kind)]
    return max(waits) if waits else 0.0


# ----------------------------------------------------------------------
# Staleness
# ----------------------------------------------------------------------


def closed_at_from_history(history: History) -> typing.Dict[int, float]:
    """When each version stopped accepting new update transactions.

    For 3V this is the end of Phase 1 of the advancement that introduced
    the next update version; version 0 never accepted updates.
    """
    closed = {0: 0.0}
    for record in history.advancements:
        if record.phase1_done is not None:
            closed[record.new_update_version - 1] = record.phase1_done
    return closed


def staleness_summary(
    history: History,
    closed_at: typing.Optional[typing.Dict[int, float]] = None,
) -> LatencySummary:
    """Data staleness of committed reads.

    The staleness of a read is the age of its snapshot when the read was
    submitted: ``submit_time - closed_at[version]``.  A system serving
    fresh data (no versioning) has staleness 0 by construction.
    """
    if closed_at is None:
        closed_at = closed_at_from_history(history)
    values = []
    for record in history.committed_txns(TxnKind.READ):
        if record.version is None:
            values.append(0.0)
            continue
        closed = closed_at.get(record.version)
        if closed is None:
            values.append(0.0)  # version still open: perfectly fresh
        else:
            values.append(max(0.0, record.submit_time - closed))
    return LatencySummary.of(values)
