"""Latency, throughput, wait, and staleness summaries.

These functions turn a :class:`~repro.txn.history.History` into the numbers
the benchmark tables report.  All of them are protocol-agnostic: the same
summaries are computed for 3V and every baseline, so comparisons are
apples-to-apples.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.txn.history import History, TxnKind

# The exact percentile function and the summary container live with the
# streaming statistics (`repro.txn.streamstats`) so the streaming history
# can build summaries without importing the analysis layer; this module
# re-exports them under their historic names.  ``LatencySummary.of`` uses
# ``math.fsum`` for the mean, so materialized and streaming summaries of
# the same population are bit-identical regardless of fold order.
from repro.txn.streamstats import LatencySummary, percentile

__all__ = [
    "LatencySummary",
    "StallSummary",
    "abort_rate",
    "advancement_stalls",
    "closed_at_from_history",
    "latency_summary",
    "max_remote_wait",
    "percentile",
    "staleness_summary",
    "throughput",
    "wait_summary",
]


def latency_summary(
    history: History,
    kind: typing.Optional[str] = None,
    which: str = "local",
) -> LatencySummary:
    """Latency distribution of committed transactions.

    Args:
        kind: Restrict to one :class:`~repro.txn.history.TxnKind`.
        which: ``"local"`` (user-perceived root commit) or ``"global"``
            (whole tree completed).
    """
    if history.streaming:
        return history.latency_stats(kind, which)
    values = []
    for record in history.committed_txns(kind):
        latency = (
            record.local_latency if which == "local" else record.global_latency
        )
        if latency is not None:
            values.append(latency)
    return LatencySummary.of(values)


def throughput(history: History, duration: float,
               kind: typing.Optional[str] = None) -> float:
    """Committed transactions per time unit over ``duration``."""
    if duration <= 0:
        raise ValueError(f"duration must be > 0: {duration}")
    return history.count(kind) / duration


def abort_rate(history: History) -> float:
    """Fraction of all finished transactions that aborted."""
    total = history.total_txns
    if total == 0:
        return 0.0
    return history.aborted_count() / total


def wait_summary(history: History, kind: typing.Optional[str] = None
                 ) -> typing.Dict[str, float]:
    """Total wait time per :class:`~repro.txn.history.WaitReason`."""
    if history.streaming:
        return history.wait_summary(kind)
    totals: typing.Dict[str, float] = {}
    for record in history.committed_txns(kind):
        for reason, duration in record.waits.items():
            totals[reason] = totals.get(reason, 0.0) + duration
    return totals


def max_remote_wait(history: History, kind: typing.Optional[str] = None
                    ) -> float:
    """Largest remote-activity wait any committed transaction suffered —
    Theorem 4.2 says this is exactly 0 for well-behaved 3V traffic."""
    if history.streaming:
        return history.max_remote_wait(kind)
    waits = [r.remote_wait for r in history.committed_txns(kind)]
    return max(waits) if waits else 0.0


# ----------------------------------------------------------------------
# Staleness
# ----------------------------------------------------------------------


def closed_at_from_history(history: History) -> typing.Dict[int, float]:
    """When each version stopped accepting new update transactions.

    For 3V this is the end of Phase 1 of the advancement that introduced
    the next update version; version 0 never accepted updates.
    """
    closed = {0: 0.0}
    for record in history.advancements:
        if record.phase1_done is not None:
            closed[record.new_update_version - 1] = record.phase1_done
    return closed


@dataclasses.dataclass(frozen=True)
class StallSummary:
    """What the advancement liveness watchdog found in one run.

    A *stall* is a span longer than the budget with no read-version
    advancement (no phase-3 completion).  Reads keep being served during
    a stall — at the frozen read version — so the watchdog also reports
    the worst staleness any read submitted inside a stall span suffered
    (graceful degradation made measurable).
    """

    count: int = 0
    total: float = 0.0
    longest: float = 0.0
    staleness_max: float = 0.0
    stalled_at_end: bool = False


def advancement_stalls(
    history: History,
    horizon: float,
    budget: float,
    closed_at: typing.Optional[typing.Dict[int, float]] = None,
) -> StallSummary:
    """Detect advancement liveness stalls over ``[0, horizon]``.

    Advancement progress points are the phase-3 completions (the moments
    the read version actually moved).  Any gap between consecutive
    progress marks — including run start to first advancement, and last
    advancement to ``horizon`` — that exceeds ``budget`` counts as one
    stall, measured from the moment the budget lapsed to the next
    progress mark.  Streaming histories keep no advancement records, so
    the watchdog reports an empty summary there.
    """
    if history.streaming or budget <= 0 or horizon <= 0:
        return StallSummary()
    points = sorted(
        record.phase3_done
        for record in history.advancements
        if record.phase3_done is not None and record.phase3_done <= horizon
    )
    marks = [0.0] + points + [horizon]
    spans = []
    for previous, current in zip(marks, marks[1:]):
        if current - previous > budget:
            spans.append((previous + budget, current))
    if not spans:
        return StallSummary()
    total = sum(end - start for start, end in spans)
    longest = max(end - start for start, end in spans)
    stalled_at_end = spans[-1][1] == horizon
    # Worst staleness suffered by a read submitted during a stall: the
    # cost of serving at the frozen read version while advancement is
    # wedged.  Uses the same closed_at convention as staleness_summary.
    if closed_at is None:
        closed_at = closed_at_from_history(history)
    staleness_max = 0.0
    for record in history.committed_txns(TxnKind.READ):
        if record.version is None:
            continue
        submitted = record.submit_time
        if not any(start <= submitted < end for start, end in spans):
            continue
        closed = closed_at.get(record.version)
        if closed is not None:
            staleness_max = max(staleness_max, submitted - closed)
    return StallSummary(
        count=len(spans), total=total, longest=longest,
        staleness_max=staleness_max, stalled_at_end=stalled_at_end,
    )


def staleness_summary(
    history: History,
    closed_at: typing.Optional[typing.Dict[int, float]] = None,
) -> LatencySummary:
    """Data staleness of committed reads.

    The staleness of a read is the age of its snapshot when the read was
    submitted: ``submit_time - closed_at[version]``.  A system serving
    fresh data (no versioning) has staleness 0 by construction.
    """
    if history.streaming:
        # Streaming histories fold staleness at retirement (eager folding
        # is provably equal to the end-of-run computation); an explicit
        # closed_at override is a materialized-only feature.
        return history.staleness_stats()
    if closed_at is None:
        closed_at = closed_at_from_history(history)
    values = []
    for record in history.committed_txns(TxnKind.READ):
        if record.version is None:
            values.append(0.0)
            continue
        closed = closed_at.get(record.version)
        if closed is None:
            values.append(0.0)  # version still open: perfectly fresh
        else:
            values.append(max(0.0, record.submit_time - closed))
    return LatencySummary.of(values)
