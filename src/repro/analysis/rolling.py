"""Rolling serializability spot-check for streaming histories.

The full oracles in :mod:`repro.analysis.serializability` replay a
materialized history at the end of a run; a streaming run has no
materialized history to replay.  :class:`RollingAuditor` performs the
same two checks *as transactions retire*, holding only a sliding window
of state:

* **Fractured reads** are checked immediately at retirement: a read
  transaction's per-node events are all present on its own record, so
  "same key, different values" needs nothing but the retiring record.
* **Snapshot mismatches** (the Theorem 4.1 bitmask oracle) need the set
  of committed recording transactions with version ``<= V(read)``.  A
  read can retire *before* some update it legitimately observed (update
  trees complete globally later than the read that saw their local
  commits), so retired reads are parked in a pending window and checked
  once their version is **settled**: the version has closed (phase 1 of
  the next advancement finished, so no new update can ever get that
  version) and no in-flight update transaction carries a version ``<=``
  the read's.  At that point the mask accumulated from retired committed
  updates is provably the full committed mask, and the check is exact —
  identical, count for count, to the post-hoc oracle.

Memory is O(entities × versions + pending reads); the pending window is
bounded by the read rate times one or two advancement periods, never by
total transaction count.  ``report()`` drains whatever is still pending
(at end of run every transaction has retired, so the drain is exact) and
returns a standard :class:`~repro.analysis.anomalies.AnomalyReport`.
"""

from __future__ import annotations

import collections
import typing

from repro.analysis.anomalies import AnomalyReport
from repro.analysis.serializability import Violation, effectively_distinct
from repro.txn.history import ReadEvent, StreamingHistory, TxnKind, TxnRecord

#: Evidence cap: counts are exact, but only this many Violation records
#: are retained as examples (the streaming mode must not grow a list
#: proportional to a pathological run's violation count).
MAX_EVIDENCE = 100


class RollingAuditor:
    """Streaming counterpart of :func:`repro.analysis.audit`.

    Attach via ``history.add_retire_sink(auditor.on_retire)``; call
    :meth:`report` after the run has drained.

    Args:
        history: The :class:`StreamingHistory` being audited (used for
            advancement closure and in-flight version tracking).
        workload: The :class:`~repro.workloads.recording.RecordingWorkload`
            that generated the traffic; its ``update_amounts`` entries are
            *consumed* as updates retire (so the bookkeeping dict stays
            bounded) and its ``correction_entities`` marks entities the
            bitmask oracle must skip.
        check_snapshots: Run the strict bitmask oracle (requires the
            workload's ``"bitmask"`` amount mode).
        window: Maximum parked reads awaiting a settled version; beyond
            it the oldest are dropped *unchecked* and counted in
            ``reads_skipped`` (never silently passed).
    """

    def __init__(self, history: StreamingHistory, workload,
                 check_snapshots: bool = False, window: int = 65536):
        self.history = history
        self.workload = workload
        self.check_snapshots = check_snapshots
        self.window = window
        self.reads_checked = 0
        self.fractured_reads = 0
        self.snapshot_mismatches = 0
        self.reads_skipped = 0
        self.violations: typing.Deque[Violation] = collections.deque(
            maxlen=MAX_EVIDENCE
        )
        #: entity -> version -> OR of committed recording amounts.
        self._masks: typing.Dict[int, typing.Dict[
            typing.Optional[int], int]] = {}
        #: Parked committed reads: (record, {key: [bal events]}).
        self._pending: typing.Deque[typing.Tuple[
            TxnRecord, typing.Dict[typing.Hashable,
                                   typing.List[ReadEvent]]]] = (
            collections.deque()
        )
        #: Incremental closure map (mirrors closed_at_from_history).
        self._closed: typing.Dict[int, float] = {0: 0.0}
        self._adv_scan = 0

    # ------------------------------------------------------------------
    # Retirement sink
    # ------------------------------------------------------------------

    def on_retire(self, record: TxnRecord,
                  events: typing.Sequence[ReadEvent]) -> None:
        amounts = getattr(self.workload, "update_amounts", None)
        if amounts is not None and record.name in amounts:
            entity, amount = amounts.pop(record.name)
            if not record.aborted:
                by_version = self._masks.setdefault(entity, {})
                by_version[record.version] = (
                    by_version.get(record.version, 0) | amount
                )
            self._drain()
            return
        if record.aborted or record.kind != TxnKind.READ or not events:
            return
        by_key: typing.Dict[typing.Hashable,
                            typing.List[ReadEvent]] = {}
        for event in events:
            by_key.setdefault(event.key, []).append(event)
        self.reads_checked += len(by_key)
        for key, key_events in by_key.items():
            values = {(event.node, event.value) for event in key_events}
            if len(effectively_distinct(
                    value for _node, value in values)) > 1:
                self.fractured_reads += 1
                self.violations.append(Violation(
                    kind="fractured-read", txn=record.name, key=key,
                    details=f"per-node values {sorted(values)!r}",
                ))
        if not self.check_snapshots:
            return
        bal_events = {
            key: key_events for key, key_events in by_key.items()
            if str(key).startswith("bal:")
        }
        if bal_events:
            self._pending.append((record, bal_events))
            while len(self._pending) > self.window:
                self._pending.popleft()
                self.reads_skipped += 1
            self._drain()

    # ------------------------------------------------------------------
    # Deferred snapshot checking
    # ------------------------------------------------------------------

    def _advance_closed(self) -> None:
        advancements = self.history.advancements
        index = self._adv_scan
        while (index < len(advancements)
               and advancements[index].phase1_done is not None):
            record = advancements[index]
            self._closed[record.new_update_version - 1] = record.phase1_done
            index += 1
        self._adv_scan = index

    def _settled(self, version: typing.Optional[int]) -> bool:
        """No present or future update transaction can carry ``<= version``."""
        if version is None:
            return False  # unversioned reads settle only at report() time
        if version not in self._closed:
            return False
        for record in self.history.txns.values():
            if (record.kind != TxnKind.READ and record.version is not None
                    and record.version <= version):
                return False
        return True

    def _drain(self, force: bool = False) -> None:
        self._advance_closed()
        while self._pending:
            record, bal_events = self._pending[0]
            if not force and not self._settled(record.version):
                return
            self._pending.popleft()
            self._check_snapshot(record, bal_events)

    def _expected_mask(self, entity: int,
                       max_version: typing.Optional[int]) -> int:
        mask = 0
        for version, bits in self._masks.get(entity, {}).items():
            if max_version is not None and (
                version is None or version > max_version
            ):
                continue
            mask |= bits
        return mask

    def _check_snapshot(self, record: TxnRecord, bal_events: typing.Dict[
            typing.Hashable, typing.List[ReadEvent]]) -> None:
        corrected = frozenset(
            getattr(self.workload, "correction_entities", {}).values()
        )
        for key, events in bal_events.items():
            # Replicated keys are slot-qualified ("bal:38#0"); the slot
            # never changes which entity's committed mask applies.
            entity = int(str(key).split(":", 1)[1].split("#", 1)[0])
            if entity in corrected:
                continue
            expected = self._expected_mask(entity, record.version)
            for event in events:
                observed = event.value if event.value is not None else 0
                if observed != expected:
                    missing = expected & ~observed
                    extra = observed & ~expected
                    self.snapshot_mismatches += 1
                    self.violations.append(Violation(
                        kind="snapshot-mismatch", txn=record.name, key=key,
                        details=(
                            f"node {event.node}: version {record.version}, "
                            f"missing mask {missing:#x}, "
                            f"extra mask {extra:#x}"
                        ),
                    ))

    # ------------------------------------------------------------------
    # Final report
    # ------------------------------------------------------------------

    def report(self) -> AnomalyReport:
        """Drain the pending window (exact once the run has retired
        everything) and score the run."""
        self._drain(force=True)
        return AnomalyReport(
            reads_checked=self.reads_checked,
            fractured_reads=self.fractured_reads,
            snapshot_mismatches=self.snapshot_mismatches,
            aborted_txns=self.history.aborted_count(),
            compensated_txns=self.history.compensated_count(),
            violations=list(self.violations),
        )
