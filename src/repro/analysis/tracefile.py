"""Trace export: serialize a run's history to JSON lines.

A finished simulation's :class:`~repro.txn.history.History` can be dumped
to a ``.jsonl`` file (one event per line) for external analysis —
plotting, diffing two runs, or archiving the evidence behind a benchmark
table.  The format is stable and self-describing: every line carries a
``"type"`` field (``txn`` / ``read`` / ``write`` / ``advancement``).

Round-tripping is supported for transaction records so sweeps can be
post-processed without re-running simulations.

Streaming runs, which never materialize a full history, can spill the
same ``txn`` / ``read`` lines *as transactions retire* through
:class:`TraceStreamWriter` — a retirement sink for
:class:`~repro.txn.history.StreamingHistory`.  The on-disk format is the
shared one, so :func:`load_txn_records` reads both kinds of trace.
"""

from __future__ import annotations

import json
import typing

from repro.txn.history import History, ReadEvent, TxnRecord


def _txn_line(record: TxnRecord) -> dict:
    return {
        "type": "txn",
        "name": record.name,
        "kind": record.kind,
        "version": record.version,
        "submit_time": record.submit_time,
        "root_node": record.root_node,
        "local_commit_time": record.local_commit_time,
        "global_complete_time": record.global_complete_time,
        "aborted": record.aborted,
        "abort_reason": record.abort_reason,
        "compensated": record.compensated,
        "waits": record.waits,
    }


def export_history(history: History, path, include_ops: bool = True) -> int:
    """Write the history to ``path`` as JSON lines.

    Args:
        history: A finished run's history.
        path: Output file path (string or ``pathlib.Path``).
        include_ops: Also export per-operation read/write events (only
            present when the history was recorded with ``detail=True``).

    Returns:
        Number of lines written.
    """
    lines = 0
    with open(path, "w") as handle:
        for record in history.txns.values():
            handle.write(json.dumps(_txn_line(record)) + "\n")
            lines += 1
        for advancement in history.advancements:
            handle.write(json.dumps({
                "type": "advancement",
                "new_update_version": advancement.new_update_version,
                "started": advancement.started,
                "phase1_done": advancement.phase1_done,
                "phase2_done": advancement.phase2_done,
                "phase3_done": advancement.phase3_done,
                "gc_done": advancement.gc_done,
                "counter_polls": advancement.counter_polls,
            }) + "\n")
            lines += 1
        if include_ops:
            for event in history.read_events:
                handle.write(json.dumps(_read_line(event)) + "\n")
                lines += 1
            for event in history.write_events:
                handle.write(json.dumps({
                    "type": "write",
                    "time": event.time,
                    "txn": event.txn,
                    "subtxn": event.subtxn,
                    "node": event.node,
                    "key": str(event.key),
                    "version": event.version,
                    "versions_written": event.versions_written,
                    "operation": repr(event.operation),
                    "compensating": event.compensating,
                }) + "\n")
                lines += 1
    return lines


def _read_line(event: ReadEvent) -> dict:
    return {
        "type": "read",
        "time": event.time,
        "txn": event.txn,
        "subtxn": event.subtxn,
        "node": event.node,
        "key": str(event.key),
        "version_requested": event.version_requested,
        "version_used": event.version_used,
        "value": _jsonable(event.value),
    }


class TraceStreamWriter:
    """Spill-to-disk JSONL sink for a :class:`StreamingHistory`.

    Writes each transaction's ``txn`` line (and, when the history records
    detail, its ``read`` lines) at retirement, so disk — not memory —
    holds the full trace of an arbitrarily long run.  ``close()`` appends
    the advancement lines and returns the total line count.

    Usage::

        writer = TraceStreamWriter(path)
        history.add_retire_sink(writer.on_retire)
        ...  # run the experiment
        writer.close(history)
    """

    def __init__(self, path):
        self._handle = open(path, "w")
        self.lines = 0

    def on_retire(self, record: TxnRecord,
                  events: typing.Sequence[ReadEvent]) -> None:
        self._handle.write(json.dumps(_txn_line(record)) + "\n")
        self.lines += 1
        for event in events:
            self._handle.write(json.dumps(_read_line(event)) + "\n")
            self.lines += 1

    def close(self, history: typing.Optional[History] = None) -> int:
        """Flush, optionally appending ``history``'s advancement lines."""
        if history is not None:
            for advancement in history.advancements:
                self._handle.write(json.dumps({
                    "type": "advancement",
                    "new_update_version": advancement.new_update_version,
                    "started": advancement.started,
                    "phase1_done": advancement.phase1_done,
                    "phase2_done": advancement.phase2_done,
                    "phase3_done": advancement.phase3_done,
                    "gc_done": advancement.gc_done,
                    "counter_polls": advancement.counter_polls,
                }) + "\n")
                self.lines += 1
        self._handle.close()
        return self.lines


def _jsonable(value):
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    return repr(value)


def load_txn_records(path) -> typing.List[TxnRecord]:
    """Read back the transaction records from an exported trace."""
    records = []
    with open(path) as handle:
        for line in handle:
            data = json.loads(line)
            if data.get("type") != "txn":
                continue
            record = TxnRecord(
                name=data["name"],
                kind=data["kind"],
                version=data["version"],
                submit_time=data["submit_time"],
                root_node=data["root_node"],
                local_commit_time=data["local_commit_time"],
                global_complete_time=data["global_complete_time"],
                aborted=data["aborted"],
                abort_reason=data["abort_reason"],
                compensated=data["compensated"],
            )
            record.waits = dict(data["waits"])
            records.append(record)
    return records
