"""Grid expansion and per-cell aggregation for multi-parameter studies.

A grid is the cartesian product of one or more axes (any spec field,
including ``protocol``) replicated over ``reps`` seeds.  Task ordering is
deterministic — cells in axis-major order, reps innermost, seed derived
as ``base.seed + rep`` — so the flattened spec list (and therefore every
digest, cache key, and output row) is identical on every host and for
every worker count.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.exp.spec import ExperimentSpec
from repro.exp.summary import ExperimentSummary


@dataclasses.dataclass(frozen=True)
class GridAxis:
    """One swept dimension: a spec field and its values, display-named."""

    flag: str                      # display/CLI name, e.g. "update-rate"
    field: str                     # ExperimentSpec field name
    values: typing.Tuple[typing.Any, ...]


@dataclasses.dataclass
class GridCell:
    """One combination of axis values and its per-rep specs."""

    values: typing.Tuple[typing.Any, ...]   # one per axis, in axis order
    specs: typing.List[ExperimentSpec]      # one per rep, seed-ordered


def expand_grid(
    base: ExperimentSpec,
    axes: typing.Sequence[GridAxis],
    reps: int = 1,
) -> typing.List[GridCell]:
    """All cells of the grid, each carrying ``reps`` seeded specs.

    Replicate seeds are ``base.seed + rep`` — deterministic, contiguous,
    and disjoint across reps so replicate runs are independent draws.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1: {reps}")
    cells = []
    value_lists = [axis.values for axis in axes]
    for combo in itertools.product(*value_lists):
        specs = []
        for rep in range(reps):
            # An explicit ``seed`` axis wins over replicate seeding.
            changes = {"seed": base.seed + rep}
            changes.update(
                (axis.field, value) for axis, value in zip(axes, combo)
            )
            specs.append(base.replace(**changes))
        cells.append(GridCell(values=tuple(combo), specs=specs))
    return cells


def flatten_specs(cells: typing.Sequence[GridCell]
                  ) -> typing.List[ExperimentSpec]:
    """The fleet task list: cell-major, reps innermost."""
    return [spec for cell in cells for spec in cell.specs]


@dataclasses.dataclass(frozen=True)
class CellAggregate:
    """Replicate-aggregated metrics for one grid cell.

    Rates and latencies are means over reps; violation and abort counts
    are totals; ``max_remote_wait`` is the worst replicate (the paper's
    Theorem 4.2 bound must hold for every run, not on average).
    """

    reps: int
    update_throughput: float
    update_p95: float
    read_p95: float
    staleness_mean: float
    fractured_reads: int
    aborted: int
    max_remote_wait: float
    audit_clean: bool

    @classmethod
    def of(cls, summaries: typing.Sequence[ExperimentSummary]
           ) -> "CellAggregate":
        if not summaries:
            raise ValueError("cannot aggregate zero summaries")
        count = len(summaries)
        return cls(
            reps=count,
            update_throughput=sum(
                s.update_throughput for s in summaries) / count,
            update_p95=sum(s.update_p95 for s in summaries) / count,
            read_p95=sum(s.read_p95 for s in summaries) / count,
            staleness_mean=sum(s.staleness_mean for s in summaries) / count,
            fractured_reads=sum(s.fractured_reads for s in summaries),
            aborted=sum(s.aborted for s in summaries),
            max_remote_wait=max(s.max_remote_wait for s in summaries),
            audit_clean=all(s.audit_clean for s in summaries),
        )
