"""`Fleet` — run many independent experiments across processes.

The simulation is single-threaded pure Python, so a 16-core host running
a sweep serially delivers 1-core throughput.  A fleet fans a list of
:class:`~repro.exp.spec.ExperimentSpec` tasks out over a pluggable
backend and returns one :class:`~repro.exp.summary.ExperimentSummary`
per task, **ordered by task index** — so the output (and anything
printed from it) is bit-identical no matter how many workers ran or in
what order they finished.

Backends:

* ``serial`` — run in-process, in order.  The reference semantics, the
  default for ``jobs=1``, and the right choice for wall-clock-timed
  benchmark kernels.
* ``multiprocessing`` — spawn-safe worker pool (``jobs`` processes,
  chunked dispatch, optional per-task timeout).  Workers execute
  :func:`~repro.exp.summary.run_spec`; heavyweight ``System``/``History``
  objects never cross the process boundary, only flat summaries do.

A :class:`~repro.exp.cache.ResultCache` short-circuits tasks whose
summary is already on disk; ``refresh=True`` bypasses and rewrites.
Worker exceptions are captured with their full traceback text and
re-raised in the parent as :class:`FleetTaskError` carrying the task
index and spec.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import math
import multiprocessing
import traceback
import typing

from repro.errors import ReproError

from repro.exp.cache import ResultCache
from repro.exp.spec import ExperimentSpec
from repro.exp.summary import ExperimentSummary, run_spec

#: Valid backend names.
BACKENDS = ("serial", "multiprocessing")


class FleetTaskError(ReproError):
    """One task failed; carries the worker's original traceback."""

    def __init__(self, index: int, spec: ExperimentSpec,
                 traceback_text: str):
        self.index = index
        self.spec = spec
        self.traceback_text = traceback_text
        super().__init__(
            f"fleet task #{index} ({spec.protocol}, seed {spec.seed}) "
            f"failed:\n{traceback_text}"
        )


@dataclasses.dataclass
class FleetStats:
    """What one ``Fleet.run`` call actually did."""

    tasks: int = 0
    executed: int = 0      # ran in a worker (serial or subprocess)
    cached: int = 0        # served from the result cache


_Task = typing.Tuple[int, ExperimentSpec]
_TaskResult = typing.Tuple[int, bool, typing.Any]


def _run_chunk(chunk: typing.Sequence[_Task]) -> typing.List[_TaskResult]:
    """Worker entry point: run a chunk of tasks, never raise.

    Exceptions are returned as ``(index, False, traceback_text)`` so the
    original worker-side traceback survives the process boundary intact.
    """
    results: typing.List[_TaskResult] = []
    for index, spec in chunk:
        try:
            results.append((index, True, run_spec(spec)))
        except Exception:
            results.append((index, False, traceback.format_exc()))
    return results


def _chunked(tasks: typing.Sequence[_Task], chunksize: int
             ) -> typing.List[typing.List[_Task]]:
    return [list(tasks[i:i + chunksize])
            for i in range(0, len(tasks), chunksize)]


class Fleet:
    """Runs batches of experiment specs; see the module docstring.

    Args:
        jobs: Worker processes for the multiprocessing backend (and the
            backend selector: ``jobs <= 1`` defaults to serial).
        backend: ``"serial"`` or ``"multiprocessing"``; default derived
            from ``jobs``.
        cache: A :class:`ResultCache`, or ``None`` to disable caching.
        refresh: Ignore cached entries (but still store fresh results).
        timeout: Optional per-task wall-clock budget in seconds
            (multiprocessing backend only).
        chunksize: Tasks per dispatch unit; default balances IPC overhead
            against load-balance (1 for small batches).
    """

    def __init__(
        self,
        jobs: int = 1,
        backend: typing.Optional[str] = None,
        cache: typing.Optional[ResultCache] = None,
        refresh: bool = False,
        timeout: typing.Optional[float] = None,
        chunksize: typing.Optional[int] = None,
    ):
        if backend is None:
            backend = "multiprocessing" if jobs > 1 else "serial"
        if backend not in BACKENDS:
            raise ReproError(
                f"unknown fleet backend {backend!r}; pick from {BACKENDS}"
            )
        self.jobs = max(1, jobs)
        self.backend = backend
        self.cache = cache
        self.refresh = refresh
        self.timeout = timeout
        self.chunksize = chunksize
        self.stats = FleetStats()

    # ------------------------------------------------------------------

    def run(self, specs: typing.Sequence[ExperimentSpec]
            ) -> typing.List[ExperimentSummary]:
        """Run every spec; returns summaries ordered by task index."""
        specs = list(specs)
        self.stats = FleetStats(tasks=len(specs))
        results: typing.List[typing.Optional[ExperimentSummary]] = (
            [None] * len(specs)
        )
        pending: typing.List[_Task] = []
        for index, spec in enumerate(specs):
            if self.cache is not None and not self.refresh:
                hit = self.cache.get(spec)
                if hit is not None:
                    results[index] = hit
                    self.stats.cached += 1
                    continue
            pending.append((index, spec))

        if pending:
            if self.backend == "serial":
                fresh = self._run_serial(pending)
            else:
                fresh = self._run_multiprocessing(pending)
            for index, summary in fresh:
                results[index] = summary
                if self.cache is not None:
                    self.cache.put(specs[index], summary)
            self.stats.executed += len(pending)

        return typing.cast(typing.List[ExperimentSummary], results)

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------

    def _run_serial(self, pending: typing.Sequence[_Task]
                    ) -> typing.List[typing.Tuple[int, ExperimentSummary]]:
        out = []
        for index, ok, payload in _run_chunk(pending):
            if not ok:
                raise FleetTaskError(index, dict(pending)[index], payload)
            out.append((index, payload))
        return out

    def _auto_chunksize(self, count: int) -> int:
        if self.chunksize is not None:
            return max(1, self.chunksize)
        # Simulation tasks are seconds-heavy; chunk only when the batch is
        # large enough that per-dispatch IPC would otherwise dominate.
        return max(1, math.ceil(count / (self.jobs * 8)))

    def _run_multiprocessing(
        self, pending: typing.Sequence[_Task]
    ) -> typing.List[typing.Tuple[int, ExperimentSummary]]:
        specs_by_index = dict(pending)
        chunks = _chunked(pending, self._auto_chunksize(len(pending)))
        workers = min(self.jobs, len(chunks))
        # ``spawn`` everywhere: identical semantics on every platform and
        # no forked copies of the parent's simulator state.
        context = multiprocessing.get_context("spawn")
        out: typing.List[typing.Tuple[int, ExperimentSummary]] = []
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = [(chunk, pool.submit(_run_chunk, chunk))
                       for chunk in chunks]
            for chunk, future in futures:
                budget = (
                    self.timeout * len(chunk)
                    if self.timeout is not None else None
                )
                try:
                    chunk_results = future.result(timeout=budget)
                except concurrent.futures.TimeoutError:
                    first_index = chunk[0][0]
                    for _, other in futures:
                        other.cancel()
                    raise FleetTaskError(
                        first_index, specs_by_index[first_index],
                        f"task exceeded per-task timeout "
                        f"({self.timeout:g}s x chunk of {len(chunk)})",
                    ) from None
                for index, ok, payload in chunk_results:
                    if not ok:
                        raise FleetTaskError(
                            index, specs_by_index[index], payload
                        )
                    out.append((index, payload))
        return out
