"""Experiment orchestration: specs, fleets, grids, and the result cache.

``repro.exp`` turns "run one simulation" into "run a fleet of them":

* :class:`ExperimentSpec` — picklable, digestable description of a run;
* :class:`ExperimentSummary` / :func:`run_spec` — the compact worker-side
  result (heavyweight ``System``/``History`` never leave the worker);
* :class:`Fleet` — serial or multiprocessing execution, ordered output;
* :class:`ResultCache` — content-addressed on-disk summary cache;
* :func:`expand_grid` / :class:`CellAggregate` — multi-parameter ×
  multi-seed studies with per-cell aggregation.
"""

from repro.exp.chaos import ChaosReport, chaos_spec, run_chaos, run_chaos_spec
from repro.exp.cache import (
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
    code_fingerprint,
)
from repro.exp.fleet import BACKENDS, Fleet, FleetStats, FleetTaskError
from repro.exp.grid import (
    CellAggregate,
    GridAxis,
    GridCell,
    expand_grid,
    flatten_specs,
)
from repro.exp.spec import (
    PARAMETERS,
    PARAMETERS_BY_FLAG,
    ExperimentSpec,
    Parameter,
    known_protocols,
    parse_parameter_value,
)
from repro.exp.summary import (
    ExperimentSummary,
    audit_result,
    run_spec,
    summarize,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "CellAggregate",
    "ChaosReport",
    "chaos_spec",
    "ExperimentSpec",
    "ExperimentSummary",
    "Fleet",
    "FleetStats",
    "FleetTaskError",
    "GridAxis",
    "GridCell",
    "PARAMETERS",
    "PARAMETERS_BY_FLAG",
    "Parameter",
    "ResultCache",
    "code_fingerprint",
    "expand_grid",
    "flatten_specs",
    "known_protocols",
    "parse_parameter_value",
    "run_chaos",
    "run_chaos_spec",
    "audit_result",
    "run_spec",
    "summarize",
]
