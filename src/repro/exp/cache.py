"""Content-addressed result cache for experiment summaries.

Every finished :class:`~repro.exp.summary.ExperimentSummary` is stored as
one small JSON file under ``.repro-cache/``, keyed by::

    sha256(spec.digest() + ":" + code_fingerprint())

The code fingerprint hashes every ``*.py`` file in the installed
``repro`` package, so any source change — an optimization, a protocol
fix, a new field — invalidates the whole cache automatically.  Because
simulations are deterministic functions of their spec, a hit is exact:
repeated sweeps and CI re-runs cost a file read instead of a simulation.

The cache is an optimization, never a correctness dependency: corrupt or
stale entries are treated as misses, and the directory can be deleted at
any time.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import typing

from repro.exp.spec import ExperimentSpec
from repro.exp.summary import ExperimentSummary

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Default maximum number of cached entries before eviction.
DEFAULT_CAP = 4096

_CACHE_SCHEMA = 1

_fingerprint: typing.Optional[str] = None


def code_fingerprint() -> str:
    """Hex sha256 over the source of the installed ``repro`` package.

    Computed once per process; the file walk is sorted so the fingerprint
    is stable across platforms and filesystems.
    """
    global _fingerprint
    if _fingerprint is None:
        import repro

        package_root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        # Results are digest-identical across builds, but derived fields
        # like wall_seconds are not comparable — keep cache entries from
        # a compiled kernel separate from pure ones.  The backend is mixed
        # in only when it is actually running: a pure run must fingerprint
        # identically whether or not build artifacts happen to sit on disk
        # (accel_backend() reads the manifest unconditionally).
        digest.update(b"\0build:")
        digest.update(repro.build_mode().encode())
        if repro.build_mode() == "accel":
            digest.update((repro.accel_backend() or "").encode())
        _fingerprint = digest.hexdigest()
    return _fingerprint


@dataclasses.dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0


class ResultCache:
    """Filesystem-backed map from :class:`ExperimentSpec` to summary."""

    def __init__(self, root: typing.Union[str, pathlib.Path] = DEFAULT_CACHE_DIR,
                 cap: int = DEFAULT_CAP):
        self.root = pathlib.Path(root)
        self.cap = cap
        self.stats = CacheStats()

    def key(self, spec: ExperimentSpec) -> str:
        material = f"{spec.digest()}:{code_fingerprint()}"
        return hashlib.sha256(material.encode()).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key[:40]}.json"

    def get(self, spec: ExperimentSpec) -> typing.Optional[ExperimentSummary]:
        """The cached summary for ``spec``, or ``None`` on a miss."""
        path = self._path(self.key(spec))
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if document.get("schema") != _CACHE_SCHEMA:
            self.stats.misses += 1
            return None
        try:
            summary = ExperimentSummary.from_dict(document["summary"])
        except (KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return summary

    def put(self, spec: ExperimentSpec, summary: ExperimentSummary) -> None:
        """Store one summary; evicts oldest entries past the cap."""
        self.root.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": _CACHE_SCHEMA,
            "spec_digest": spec.digest(),
            "fingerprint": code_fingerprint(),
            "spec": dataclasses.asdict(spec),
            "summary": summary.to_dict(),
        }
        path = self._path(self.key(spec))
        # Write-then-rename so a crashed run never leaves a torn entry.
        temp = path.with_suffix(f".tmp{os.getpid()}")
        temp.write_text(json.dumps(document, sort_keys=True) + "\n")
        temp.replace(path)
        self.stats.stores += 1
        self._evict()

    def _evict(self) -> None:
        entries = list(self.root.glob("*.json"))
        excess = len(entries) - self.cap
        if excess <= 0:
            return
        entries.sort(key=lambda p: p.stat().st_mtime)
        for stale in entries[:excess]:
            try:
                stale.unlink()
                self.stats.evictions += 1
            except OSError:
                pass

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
