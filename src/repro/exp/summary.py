"""`ExperimentSummary` — the compact, worker-side result of one run.

A full :class:`~repro.workloads.runner.ExperimentResult` drags the whole
``System`` (nodes, stores, network mailboxes, the simulator) and a
detailed ``History`` along with it — megabytes of interlinked objects
that are expensive (and pointless) to pickle across a process boundary.
The fleet therefore reduces each run to this flat, JSON-able scorecard
*inside the worker*: throughput, latency percentiles, staleness, the
anomaly-audit verdict, advancement statistics, message counts, and a
determinism digest of the event/transaction counts.

``run_spec`` is the one function a worker process executes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing

from repro.analysis import (
    advancement_stalls,
    audit,
    latency_summary,
    max_remote_wait,
    staleness_summary,
    throughput,
)
from repro.txn.history import TxnKind

from repro.exp.spec import ExperimentSpec


@dataclasses.dataclass(frozen=True)
class ExperimentSummary:
    """Everything the tables and gates need from one finished run.

    Flat floats/ints only — picklable, JSON round-trippable, and small
    enough that shipping thousands of them between processes is free.
    """

    spec_digest: str
    protocol: str
    nodes: int
    duration: float
    submitted: int
    # committed work, by kind
    committed_updates: int
    committed_reads: int
    committed_noncommuting: int
    aborted: int
    compensated: int
    # rates and latency distribution
    update_throughput: float
    update_mean: float
    update_p50: float
    update_p95: float
    update_p99: float
    update_max: float
    read_mean: float
    read_p95: float
    staleness_mean: float
    staleness_max: float
    # audit verdict
    reads_checked: int
    fractured_reads: int
    snapshot_mismatches: int
    audit_clean: bool
    max_remote_wait: float
    # advancement machinery
    advancement_runs: int
    advancement_counter_polls: int
    # network traffic
    messages_total: int
    messages_user: int
    messages_control: int
    # determinism canaries
    sim_events: int
    txn_count: int
    # fault machinery (all zero on fault-free runs; defaulted so cached
    # summaries from before these fields existed still deserialize)
    retransmits: int = 0
    dup_suppressed: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    crashes: int = 0
    recoveries: int = 0
    # delivery batching (zero unless the spec set batch_delivery)
    delivery_batches: int = 0
    batched_messages: int = 0
    # replication / placement (all zero unless the spec set
    # replication_factor > 1; defaulted so pre-replication summaries
    # still deserialize)
    reads_rerouted: int = 0
    reads_gated: int = 0
    writes_skipped: int = 0
    refresh_ops_applied: int = 0
    refreshes_completed: int = 0
    self_refreshes: int = 0
    unreadable_reads_served: int = 0
    # partition / coordinator-failure machinery (all zero unless the spec
    # enabled those axes; defaulted so cached summaries deserialize)
    partitions_cut: int = 0
    stale_epochs_fenced: int = 0
    coordinator_crashes: int = 0
    coordinator_recoveries: int = 0
    coordinator_takeovers: int = 0
    coordinator_epoch: int = 0
    # advancement liveness watchdog (stalls = budget-exceeding gaps
    # between read-version advancements; zero when no coordinator ran)
    stall_count: int = 0
    stall_time: float = 0.0
    longest_stall: float = 0.0
    stall_staleness_max: float = 0.0
    # worker-side wall-clock of the simulation itself (excluded from the
    # determinism digest: it is the one machine-dependent field, kept so
    # scaling benchmarks can compare configurations through the fleet)
    wall_seconds: float = 0.0
    # peak python heap during the run per tracemalloc, 0 unless the caller
    # asked ``run_spec`` to measure it (machine- and version-dependent, so
    # excluded from the determinism digest like wall_seconds)
    peak_tracemalloc_bytes: int = 0
    # which kernel build produced this summary ("pure" or "accel").  A
    # build property, not a simulation outcome: excluded from the
    # determinism digest, which must be bit-identical across builds.
    build_mode: str = "pure"

    def determinism_digest(self) -> str:
        """Hex digest of the run's discrete counts.

        Depends only on simulation behaviour (never on wall-clock), so it
        must be bit-identical across worker counts, hosts, and backends.
        """
        payload = (
            self.spec_digest, self.sim_events, self.txn_count,
            self.submitted, self.committed_updates, self.committed_reads,
            self.committed_noncommuting, self.aborted,
            self.fractured_reads, self.snapshot_mismatches,
        )
        canonical = json.dumps(payload, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, typing.Any]
                  ) -> "ExperimentSummary":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


def summarize(spec: ExperimentSpec, result, report) -> ExperimentSummary:
    """Reduce a finished run + audit report to a summary."""
    history = result.history
    updates = latency_summary(history, kind="update")
    reads = latency_summary(history, kind="read", which="global")
    staleness = staleness_summary(history)
    stats = result.system.network.stats
    coordinator = getattr(result.system, "coordinator", None)
    if coordinator is not None:
        advancement_runs = coordinator.completed_runs
    else:
        advancement_runs = len(history.advancements)
    counter_polls = sum(a.counter_polls for a in history.advancements)
    placement = getattr(result.system, "placement", None)
    placement_counters = placement.counters() if placement is not None else {}
    # The liveness watchdog only makes sense where an advancement
    # coordinator actually drives vr (the epoch attribute is the
    # duck-typed marker for that — baselines either have no coordinator
    # or an epoch-less one, and a whole-run "stall" there would be
    # noise, not signal).
    stalls = None
    if getattr(coordinator, "epoch", 0) and not history.streaming:
        budget = spec.stall_budget or 2.0 * spec.advancement_period
        stalls = advancement_stalls(history, result.duration, budget)
    from repro import build_mode

    return ExperimentSummary(
        spec_digest=spec.digest(),
        build_mode=build_mode(),
        protocol=spec.protocol,
        nodes=spec.nodes,
        duration=result.duration,
        submitted=result.submitted,
        committed_updates=history.count(TxnKind.UPDATE),
        committed_reads=history.count(TxnKind.READ),
        committed_noncommuting=history.count(TxnKind.NONCOMMUTING),
        aborted=history.aborted_count(),
        compensated=report.compensated_txns,
        update_throughput=throughput(history, result.duration, kind="update"),
        update_mean=updates.mean,
        update_p50=updates.p50,
        update_p95=updates.p95,
        update_p99=updates.p99,
        update_max=updates.max,
        read_mean=reads.mean,
        read_p95=reads.p95,
        staleness_mean=staleness.mean,
        staleness_max=staleness.max,
        reads_checked=report.reads_checked,
        fractured_reads=report.fractured_reads,
        snapshot_mismatches=report.snapshot_mismatches,
        audit_clean=report.clean,
        max_remote_wait=max_remote_wait(history),
        advancement_runs=advancement_runs,
        advancement_counter_polls=counter_polls,
        messages_total=stats.total_sent,
        messages_user=stats.user_messages,
        messages_control=stats.control_messages,
        sim_events=result.system.sim.scheduled_count,
        txn_count=history.total_txns,
        retransmits=stats.retransmits,
        dup_suppressed=stats.dup_suppressed,
        messages_dropped=stats.dropped,
        messages_duplicated=stats.duplicated,
        crashes=getattr(result.system, "crash_count", 0),
        recoveries=getattr(result.system, "recovery_count", 0),
        delivery_batches=stats.batches,
        batched_messages=stats.batched_messages,
        reads_rerouted=placement_counters.get("reads_rerouted", 0),
        reads_gated=placement_counters.get("reads_gated", 0),
        writes_skipped=placement_counters.get("writes_skipped", 0),
        refresh_ops_applied=placement_counters.get("refresh_ops_applied", 0),
        refreshes_completed=placement_counters.get("refreshes_completed", 0),
        self_refreshes=placement_counters.get("self_refreshes", 0),
        unreadable_reads_served=placement_counters.get(
            "unreadable_reads_served", 0),
        partitions_cut=stats.partition_dropped,
        stale_epochs_fenced=stats.stale_epoch_dropped,
        coordinator_crashes=getattr(coordinator, "crashes", 0),
        coordinator_recoveries=getattr(coordinator, "recoveries", 0),
        coordinator_takeovers=getattr(coordinator, "takeovers", 0),
        coordinator_epoch=getattr(coordinator, "epoch", 0),
        stall_count=stalls.count if stalls else 0,
        stall_time=stalls.total if stalls else 0.0,
        longest_stall=stalls.longest if stalls else 0.0,
        stall_staleness_max=stalls.staleness_max if stalls else 0.0,
    )


def audit_result(result, check_snapshots: bool = False):
    """Score a finished :class:`ExperimentResult`, whichever mode ran it.

    Streaming runs are scored by their rolling auditor (already folded at
    retirement; ``report()`` is its final exact drain).  Materialized
    runs get the classic post-hoc :func:`repro.analysis.audit`.
    """
    if result.auditor is not None:
        return result.auditor.report()
    if result.history.streaming:
        # Streaming without detail records no read events: zero checks,
        # exactly like a detail-less materialized audit.
        from repro.analysis import AnomalyReport

        return AnomalyReport(
            reads_checked=0, fractured_reads=0, snapshot_mismatches=0,
            aborted_txns=result.history.aborted_count(),
            compensated_txns=result.history.compensated_count(),
            violations=[],
        )
    return audit(result.history, result.workload,
                 check_snapshots=check_snapshots)


def run_spec(spec: ExperimentSpec,
             measure_memory: bool = False) -> ExperimentSummary:
    """Run one experiment end-to-end and summarize it.

    This is the fleet's worker entry point: heavyweight ``System`` /
    ``History`` objects live and die inside the calling process.

    ``measure_memory=True`` wraps the simulation in ``tracemalloc`` and
    fills ``peak_tracemalloc_bytes`` — the volume benchmark's memory
    gate.  Tracing roughly doubles wall-clock, so throughput cells leave
    it off.
    """
    import time

    from repro.workloads import run_recording_experiment

    if measure_memory:
        import tracemalloc

        tracemalloc.start()
    t0 = time.perf_counter()
    result = run_recording_experiment(spec.protocol, **spec.run_kwargs())
    wall = time.perf_counter() - t0
    peak = 0
    if measure_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    check_snapshots = (
        spec.protocol == "3v" and spec.amount_mode == "bitmask"
        and spec.detail
    )
    report = audit_result(result, check_snapshots=check_snapshots)
    return dataclasses.replace(
        summarize(spec, result, report), wall_seconds=wall,
        peak_tracemalloc_bytes=peak,
    )
