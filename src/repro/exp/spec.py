"""`ExperimentSpec` — the picklable, digestable unit of experiment work.

A spec is a frozen dataclass mirroring the keyword arguments of
:func:`repro.workloads.run_recording_experiment`.  Being frozen and
hashable it can cross a process boundary, key a result cache, and be
compared for equality — three things the CLI's old pattern of mutating a
shared ``argparse.Namespace`` in place could never do.

The module also owns :data:`PARAMETERS`, the single registry of every
sweepable experiment parameter (CLI flag, spec field, exact python type,
default, help text).  ``repro.cli`` builds its argument parsers *and* its
sweep/grid value parsing from this table, so "which parameters exist" is
defined exactly once; integer parameters (``nodes``, ``entities``,
``span``, ``seed``) stay exact ints all the way from the command line to
table output and spec digests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing

from repro.errors import ReproError


@dataclasses.dataclass(frozen=True)
class Parameter:
    """One sweepable experiment parameter, shared by all CLI commands."""

    flag: str                 # CLI name, e.g. "update-rate"
    field: str                # ExperimentSpec field name
    type: type                # int or float — values keep this exact type
    default: typing.Any
    help: str

    @property
    def dest(self) -> str:
        """The argparse destination (``--update-rate`` -> ``update_rate``)."""
        return self.flag.replace("-", "_")


#: Every parameter an experiment accepts, in CLI display order.  ``sweep``
#: and ``grid`` accept any of these by flag name.
PARAMETERS: typing.Tuple[Parameter, ...] = (
    Parameter("nodes", "nodes", int, 4,
              "number of database nodes (default 4)"),
    Parameter("duration", "duration", float, 30.0,
              "simulated seconds of traffic (default 30)"),
    Parameter("update-rate", "update_rate", float, 5.0,
              "recording transactions per second"),
    Parameter("inquiry-rate", "inquiry_rate", float, 3.0,
              "inquiry transactions per second"),
    Parameter("audit-rate", "audit_rate", float, 0.2,
              "audit transactions per second"),
    Parameter("correction-rate", "correction_rate", float, 0.0,
              "non-commuting corrections per second (NC3V)"),
    Parameter("entities", "entities", int, 50,
              "number of entities (patients/accounts/SKUs)"),
    Parameter("span", "span", int, 2,
              "nodes each entity's records span"),
    Parameter("seed", "seed", int, 0,
              "master random seed"),
    Parameter("period", "advancement_period", float, 10.0,
              "advancement/switch period in simulated seconds"),
    Parameter("safety-delay", "safety_delay", float, 5.0,
              "manual versioning's read-switch delay"),
    Parameter("abort-fraction", "abort_fraction", float, 0.0,
              "fraction of recordings that abort (compensation)"),
    Parameter("poll-interval", "poll_interval", float, 0.5,
              "advancement counter poll interval (3V)"),
    Parameter("batch-delivery", "batch_delivery", int, 0,
              "coalesce same-tick same-destination message deliveries "
              "(0=off, 1=on; changes the scheduled-event trace)"),
    Parameter("latency-jitter", "latency_jitter", float, 1.0,
              "width of the uniform latency window around mean 1.0 "
              "(1.0 = the historic Uniform(0.5, 1.5); 0 = constant)"),
    Parameter("stream", "stream", int, 0,
              "bounded-memory mode: lazy arrivals + streaming history + "
              "rolling audit (0=materialized, 1=streaming)"),
    Parameter("zipf", "zipf", float, 0.0,
              "hot-key skew exponent for entity choice (0 = uniform)"),
    Parameter("observations", "with_observations", int, 1,
              "insert per-node observation log records (0=off, 1=on; "
              "volume runs turn this off to keep storage O(entities))"),
    # Fault-injection axes (repro.faults): all-zero means no fault
    # machinery is attached and the run is bit-identical to the seed path.
    Parameter("drop-rate", "drop_rate", float, 0.0,
              "per-link message drop probability (fault injection)"),
    Parameter("dup-rate", "dup_rate", float, 0.0,
              "per-link message duplication probability (fault injection)"),
    Parameter("crash-count", "crash_count", int, 0,
              "crash/recover cycles per node (fault injection)"),
    Parameter("fault-seed", "fault_seed", int, 0,
              "seed for the fault schedule (independent of the workload)"),
    Parameter("partition-count", "partition_count", int, 0,
              "timed network partition/heal cycles (fault injection)"),
    Parameter("coordinator-crashes", "coordinator_crashes", int, 0,
              "mid-wave advancement-coordinator crash/recover cycles "
              "(coordinator-ful protocols only; ignored by baselines)"),
    Parameter("stall-budget", "stall_budget", float, 0.0,
              "advancement liveness budget for the stall watchdog "
              "(0 = twice the advancement period)"),
    # Replication axes (repro.placement): replication-factor 1 means no
    # placement machinery is attached and the run is bit-identical to the
    # single-owner path (digest() also omits both fields then, so specs
    # predating replication keep their content addresses).
    Parameter("replication-factor", "replication_factor", int, 1,
              "replicas per record: read-one / write-all-available "
              "(1 = unreplicated, bit-identical to the historic path)"),
    Parameter("refresh-delay", "refresh_delay", float, 2.0,
              "delay between a replica's recovery and its refresh "
              "request (it serves no reads until refresh completes)"),
)

PARAMETERS_BY_FLAG: typing.Dict[str, Parameter] = {
    p.flag: p for p in PARAMETERS
}


def known_protocols() -> typing.Tuple[str, ...]:
    """The runnable protocol names, from the runtime registry.

    Imported lazily so building/pickling a spec never loads the protocol
    stacks; specs deliberately accept *any* protocol string — an unknown
    one fails at run time in the worker, where the fleet can report it.
    """
    from repro.runtime.registry import PROTOCOLS

    return tuple(PROTOCOLS)


def parse_parameter_value(flag: str, text: str) -> typing.Union[int, float]:
    """Parse one swept value with the parameter's exact type.

    ``nodes 4`` stays ``int(4)`` (never ``4.0``), so digests and table
    cells are exact; a fractional value for an integer parameter is an
    error rather than a silent truncation.
    """
    parameter = PARAMETERS_BY_FLAG.get(flag)
    if parameter is None:
        raise ReproError(
            f"unknown parameter {flag!r}; choose from "
            f"{', '.join(sorted(PARAMETERS_BY_FLAG))}"
        )
    try:
        return parameter.type(text)
    except ValueError:
        raise ReproError(
            f"parameter {flag!r} takes {parameter.type.__name__} values, "
            f"got {text!r}"
        ) from None


_SPEC_DIGEST_VERSION = 1


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """A complete, immutable description of one simulation run.

    Mirrors :func:`repro.workloads.run_recording_experiment`; two specs
    that compare equal produce bit-identical simulations, and
    :meth:`digest` is a stable content address for caching.
    """

    protocol: str
    nodes: int = 4
    duration: float = 30.0
    update_rate: float = 5.0
    inquiry_rate: float = 3.0
    audit_rate: float = 0.2
    correction_rate: float = 0.0
    entities: int = 50
    span: int = 2
    seed: int = 0
    advancement_period: float = 10.0
    safety_delay: float = 5.0
    poll_interval: float = 0.5
    batch_delivery: int = 0
    latency_jitter: float = 1.0
    stream: int = 0
    zipf: float = 0.0
    with_observations: int = 1
    amount_mode: str = "bitmask"
    abort_fraction: float = 0.0
    detail: bool = True
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    crash_count: int = 0
    fault_seed: int = 0
    partition_count: int = 0
    coordinator_crashes: int = 0
    stall_budget: float = 0.0
    replication_factor: int = 1
    refresh_delay: float = 2.0

    def replace(self, **changes) -> "ExperimentSpec":
        """A copy with some fields changed (specs are immutable)."""
        return dataclasses.replace(self, **changes)

    def with_seed(self, seed: int) -> "ExperimentSpec":
        return self.replace(seed=seed)

    def run_kwargs(self) -> typing.Dict[str, typing.Any]:
        """Keyword arguments for ``run_recording_experiment``."""
        kwargs = dataclasses.asdict(self)
        kwargs.pop("protocol")
        return kwargs

    def digest(self) -> str:
        """Stable content hash of the spec (hex sha256).

        Ints and floats hash differently (``json`` renders ``4`` and
        ``4.0`` distinctly), which is exactly right: integer parameters
        must stay exact.
        """
        payload = dataclasses.asdict(self)
        if self.replication_factor == 1:
            # Unreplicated specs hash exactly as they did before the
            # replication axes existed, keeping every cached fleet digest
            # valid; refresh_delay is placement-only so it drops too.
            payload.pop("replication_factor")
            payload.pop("refresh_delay")
        # Same backwards-compatibility rule for the chaos axes added
        # later: each drops from the hash at its default, so pre-existing
        # spec digests (and cached fleet results) stay valid.
        if self.partition_count == 0:
            payload.pop("partition_count")
        if self.coordinator_crashes == 0:
            payload.pop("coordinator_crashes")
        if self.stall_budget == 0.0:
            payload.pop("stall_budget")
        payload["_spec_version"] = _SPEC_DIGEST_VERSION
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    @classmethod
    def from_args(cls, args, protocol: typing.Optional[str] = None
                  ) -> "ExperimentSpec":
        """Build a spec from a parsed CLI namespace (never mutates it)."""
        fields = {
            p.field: getattr(args, p.dest) for p in PARAMETERS
            if hasattr(args, p.dest)
        }
        # amount_mode is a string choice, not a sweepable numeric
        # parameter, so it lives outside the PARAMETERS registry; only
        # the ``run`` command exposes it.
        if hasattr(args, "amount_mode"):
            fields["amount_mode"] = args.amount_mode
        if protocol is None:
            protocol = args.protocol
        return cls(protocol=protocol, **fields)
