"""The deterministic chaos harness (``repro chaos``).

A *chaos run* drives the standard recording workload through a protocol
while a seeded :class:`repro.faults.FaultPlan` storm drops and duplicates
messages and crash/recovers nodes, then audits the wreckage:

* **Convergence** — the system drains to quiescence within the drain
  limit (the reliable-delivery layer never gives up, so a protocol that
  cannot converge under loss hangs the drain and fails here).
* **Store agreement** — after the drain, every entity's summary value is
  identical on every node the entity spans: exactly-once delivery plus
  crash-recovery replay must leave no replica behind.  With
  ``--replication-factor`` > 1 the comparison runs per (entity, slot)
  record across its replica set, and two extra properties apply:
  recovered replicas must serve zero reads before their refresh
  completes, and every recovery must end in a completed refresh.
  Exception: a protocol registered without termination detection (the
  ``manual`` baseline) is *expected* to lose straggler writes once a
  partition delays them past its fixed safety delay — the paper's
  partial-"bill generation" failure mode — so under partition plans its
  disagreements are reported as findings, not failures.
* **Oracle check** — in ``"bitmask"`` mode each replica's final value
  must decompose to exactly the set of committed recording transactions
  (:meth:`RecordingWorkload.committed_mask`): nothing lost, nothing
  applied twice.
* **Audit** — the serializability audit verdict, held to the strict
  standard for protocols registered ``strict_audit``.
* **Repeatability** — an optional second run with the same workload and
  fault seeds must produce a bit-identical determinism digest: the storm
  is part of the simulation, not noise on top of it.
* **Liveness** — when the spec injects control-plane disruptions
  (coordinator crashes and/or partitions), a post-drain probe demands
  that the read version can still advance *after* the last disruption
  healed and that read staleness re-converged: graceful degradation must
  actually end.

Everything reduces to a flat :class:`ChaosReport` per protocol; a run
that violates any property lists human-readable ``failures`` rather than
raising, so ``repro chaos`` can print the whole scorecard before setting
its exit status.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis import audit
from repro.runtime.registry import PROTOCOLS
from repro.workloads.recording import balance_key
from repro.workloads.runner import run_recording_experiment

from repro.exp.spec import ExperimentSpec
from repro.exp.summary import ExperimentSummary, summarize

__all__ = ["ChaosReport", "chaos_spec", "run_chaos", "run_chaos_spec"]

#: Version bound that sees every installed version of a key.
_ANY_VERSION = 1 << 60


@dataclasses.dataclass(frozen=True)
class ChaosReport:
    """Scorecard of one protocol's chaos run."""

    protocol: str
    #: ``None`` only when the run itself raised before completion.
    summary: typing.Optional[ExperimentSummary]
    #: Entity replica groups compared for agreement.
    entities_checked: int
    #: Entities whose replicas disagreed after the drain.
    disagreements: int
    #: Entities whose agreed value did not match the committed-mask
    #: oracle (bitmask mode only; 0 otherwise).
    oracle_mismatches: int
    #: Whether a second identically-seeded run reproduced the digest
    #: (``None`` when repeatability was not verified).
    repeat_identical: typing.Optional[bool]
    #: Human-readable descriptions of every violated property.
    failures: typing.Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


def chaos_spec(
    protocol: str,
    *,
    nodes: int = 3,
    duration: float = 20.0,
    drop_rate: float = 0.05,
    dup_rate: float = 0.02,
    crash_count: int = 1,
    fault_seed: int = 7,
    seed: int = 0,
    update_rate: float = 5.0,
    inquiry_rate: float = 3.0,
    audit_rate: float = 0.2,
    replication_factor: int = 1,
    refresh_delay: float = 2.0,
    partition_count: int = 0,
    coordinator_crashes: int = 0,
    stall_budget: float = 0.0,
) -> ExperimentSpec:
    """The canonical chaos experiment: a storm on the bitmask workload."""
    return ExperimentSpec(
        protocol=protocol, nodes=nodes, duration=duration,
        update_rate=update_rate, inquiry_rate=inquiry_rate,
        audit_rate=audit_rate, amount_mode="bitmask", detail=True,
        seed=seed, drop_rate=drop_rate, dup_rate=dup_rate,
        crash_count=crash_count, fault_seed=fault_seed,
        replication_factor=replication_factor, refresh_delay=refresh_delay,
        partition_count=partition_count,
        coordinator_crashes=coordinator_crashes, stall_budget=stall_budget,
    )


def _committed_bases(history) -> typing.Set[str]:
    """Base names of committed transactions, collapsing retry clones.

    The 2PC baseline resubmits an aborted root as ``name~rK``; for the
    oracle a recording counts as committed when *any* attempt committed.
    """
    return {
        name.split("~r")[0]
        for name, record in history.txns.items()
        if not record.aborted
    }


def _expected_masks(workload, history) -> typing.Dict[int, int]:
    """Per-entity committed-mask oracle (every slot copy must equal it)."""
    committed = _committed_bases(history)
    expected: typing.Dict[int, int] = {}
    for name, (entity, amount) in workload.update_amounts.items():
        if name in committed:
            expected[entity] = expected.get(entity, 0) | amount
    return expected


def _check_stores(result) -> typing.Tuple[int, int, int, typing.List[str]]:
    """Compare every entity's final replicas (and the bitmask oracle).

    Unreplicated runs compare one ``bal:`` value per entity across the
    span nodes (the historic check).  Replicated runs compare each
    (entity, slot) record's copies across its replica set — under
    write-all-available plus refresh, a recovered replica's copy must be
    indistinguishable from one that never crashed.
    """
    workload = result.workload
    history = result.history
    system = result.system
    bitmask = workload.config.amount_mode == "bitmask"
    corrected = set(workload.correction_entities.values())
    expected_masks = _expected_masks(workload, history) if bitmask else {}
    checked = disagreements = mismatches = 0
    failures: typing.List[str] = []

    def check_group(label, key, node_ids, entity) -> None:
        nonlocal checked, disagreements, mismatches
        checked += 1
        values = {
            node_id: system.node(node_id).store.read_max_leq(
                key, _ANY_VERSION, default=None
            )
            for node_id in node_ids
        }
        distinct = set(values.values())
        if len(distinct) > 1:
            disagreements += 1
            if len(failures) < 5:
                failures.append(f"{label} replicas disagree: {values}")
            return
        if bitmask and entity not in corrected:
            expected = expected_masks.get(entity, 0)
            actual = distinct.pop()
            if actual != expected:
                mismatches += 1
                if len(failures) < 5:
                    failures.append(
                        f"{label} final value {actual!r} != "
                        f"committed mask {expected!r}"
                    )

    if workload.config.replicated:
        for entity, slot, key, replicas in workload.replica_groups():
            check_group(f"entity {entity} slot {slot}", key, replicas, entity)
    else:
        for entity, node_ids in sorted(workload.entity_nodes.items()):
            check_group(f"entity {entity}", balance_key(entity), node_ids,
                        entity)
    return checked, disagreements, mismatches, failures


def _expects_convergence(spec: ExperimentSpec, entry) -> bool:
    """Whether store agreement / the oracle are *failures* for this run.

    Always, except for a protocol registered without termination
    detection under a partition plan: holding traffic back longer than
    its fixed safety delay makes the paper's lost-straggler failure mode
    (Section 1's partial "bill generation") the expected outcome, not a
    harness defect.  The disagreement counts still land in the report.
    """
    if entry is None or entry.detects_termination:
        return True
    return spec.partition_count == 0


def _last_disruption_end(spec: ExperimentSpec, system) -> float:
    """When the last control-plane disruption healed (sim time).

    Covers partition heals and every planned crash's recovery; liveness
    is only demanded *after* this point — during the disruptions the
    system is allowed (expected, even) to degrade gracefully.
    """
    plan = getattr(system, "faults", None)
    if plan is None:
        return 0.0
    end = 0.0
    for partition in plan.partitions:
        end = max(end, partition.heal_at)
    for crash in plan.crashes:
        end = max(end, crash.at + crash.down_for)
    return end


def _probe_liveness(
    spec: ExperimentSpec, result, drain_limit: float
) -> typing.List[str]:
    """Post-drain liveness probe: advancement must work again.

    Only runs when the spec injected control-plane disruptions
    (coordinator crashes / partitions) on a protocol that has an
    advancement coordinator.  The probe drives one more advancement wave
    through the drained system and demands it completes — a wedged
    coordinator (stuck ``running`` flag, leaked epoch, mailbox stranded
    by a crash) fails here even if the workload-time metrics look fine.
    Because the probe adds simulation events, it runs in *both* the main
    and the repeat run before their summaries, keeping the determinism
    digests comparable.

    Also scores recovery of the run itself: after the last disruption
    healed, the read version must have advanced again, and reads
    submitted after that advancement must have re-converged to
    budget-bounded staleness.
    """
    entry = PROTOCOLS.get(spec.protocol)
    if entry is None or entry.coordinator is None:
        return []
    if not (spec.coordinator_crashes or spec.partition_count):
        return []
    failures: typing.List[str] = []
    system = result.system
    coordinator = system.coordinator
    history = result.history

    heal_time = _last_disruption_end(spec, system)
    post_heal = sorted(
        record.phase3_done
        for record in history.advancements
        if record.phase3_done is not None and record.phase3_done > heal_time
    )
    if not post_heal:
        failures.append(
            f"read version never advanced after the last disruption "
            f"healed at t={heal_time:g}"
        )
    else:
        # Staleness re-convergence: reads submitted after the first
        # post-heal advancement see a recently-closed version again.
        from repro.analysis import closed_at_from_history
        from repro.txn.history import TxnKind

        budget = spec.stall_budget or 2.0 * spec.advancement_period
        closed_at = closed_at_from_history(history)
        worst = 0.0
        for record in history.committed_txns(TxnKind.READ):
            if record.version is None or record.submit_time <= post_heal[0]:
                continue
            closed = closed_at.get(record.version)
            if closed is not None:
                worst = max(worst, record.submit_time - closed)
        if worst > budget:
            failures.append(
                f"staleness did not re-converge after heal: worst "
                f"post-recovery read staleness {worst:g} > budget "
                f"{budget:g}"
            )

    # The live probe: one more full wave through the drained system.
    vr_before = coordinator.vr
    try:
        system.advance_versions()
        system.run_until_quiet(limit=drain_limit)
    except Exception as exc:
        failures.append(
            f"post-drain advancement probe failed: "
            f"{type(exc).__name__}: {exc}"
        )
        return failures
    if coordinator.vr <= vr_before:
        failures.append(
            f"post-drain advancement probe did not advance vr "
            f"(still {coordinator.vr})"
        )
    return failures


def run_chaos_spec(
    spec: ExperimentSpec,
    *,
    verify_repeat: bool = True,
    drain_limit: float = 100000.0,
) -> ChaosReport:
    """Run one chaos experiment and score every robustness property."""
    failures: typing.List[str] = []
    try:
        result = run_recording_experiment(
            spec.protocol, drain_limit=drain_limit, **spec.run_kwargs()
        )
    except Exception as exc:  # convergence (or worse) failed outright
        return ChaosReport(
            protocol=spec.protocol, summary=None,
            entities_checked=0, disagreements=0, oracle_mismatches=0,
            repeat_identical=None,
            failures=(f"run failed: {type(exc).__name__}: {exc}",),
        )

    check_snapshots = (
        spec.protocol == "3v" and spec.amount_mode == "bitmask" and spec.detail
    )
    # The liveness probe mutates the simulation (one extra wave), so it
    # must run before summarize — and identically in the repeat run — to
    # keep sim_events comparable between the two digests.
    failures.extend(_probe_liveness(spec, result, drain_limit))
    report = audit(result.history, result.workload,
                   check_snapshots=check_snapshots)
    summary = summarize(spec, result, report)

    entry = PROTOCOLS.get(spec.protocol)
    strict = entry is not None and entry.strict_audit
    if strict and not report.clean:
        failures.append(
            f"strict audit failed: {report.fractured_reads} fractured, "
            f"{report.snapshot_mismatches} snapshot mismatches"
        )

    checked, disagreements, mismatches, store_failures = _check_stores(result)
    if store_failures and not _expects_convergence(spec, entry):
        # The paper's manual-versioning failure mode, reproduced on cue:
        # without termination detection, a straggler held back past the
        # fixed safety delay (here, by a partition) updates only its own
        # version's copy, so the latest version loses its write.  The
        # counts stay in the report as the documented finding; they are
        # not a harness failure.
        store_failures = []
    failures.extend(store_failures)

    if spec.crash_count > 0 and summary.recoveries < summary.crashes:
        failures.append(
            f"{summary.crashes - summary.recoveries} crash(es) never "
            "recovered before the drain"
        )

    if spec.replication_factor > 1:
        # Recovery-readability: a recovered replica must never serve a
        # read before its refresh completes, and every recovery must end
        # in a completed refresh (2PC legitimately self-refreshes: its
        # engine blocks on down replicas instead of skipping, so there is
        # never anything to transfer).
        if summary.unreadable_reads_served > 0:
            failures.append(
                f"{summary.unreadable_reads_served} read(s) served by "
                "recovered-but-unrefreshed replicas"
            )
        refreshes = summary.refreshes_completed + summary.self_refreshes
        if summary.recoveries > 0 and refreshes < summary.recoveries:
            failures.append(
                f"only {refreshes} refresh(es) completed for "
                f"{summary.recoveries} recover(ies)"
            )

    repeat_identical: typing.Optional[bool] = None
    if verify_repeat:
        rerun = run_recording_experiment(
            spec.protocol, drain_limit=drain_limit, **spec.run_kwargs()
        )
        _probe_liveness(spec, rerun, drain_limit)
        rerun_report = audit(rerun.history, rerun.workload,
                             check_snapshots=check_snapshots)
        rerun_summary = summarize(spec, rerun, rerun_report)
        repeat_identical = (
            rerun_summary.determinism_digest() == summary.determinism_digest()
        )
        if not repeat_identical:
            failures.append(
                "identically-seeded rerun diverged: "
                f"{summary.determinism_digest()} != "
                f"{rerun_summary.determinism_digest()}"
            )

    return ChaosReport(
        protocol=spec.protocol,
        summary=summary,
        entities_checked=checked,
        disagreements=disagreements,
        oracle_mismatches=mismatches,
        repeat_identical=repeat_identical,
        failures=tuple(failures),
    )


def run_chaos(
    protocols: typing.Optional[typing.Sequence[str]] = None,
    *,
    verify_repeat: bool = True,
    drain_limit: float = 100000.0,
    **spec_kwargs,
) -> typing.List[ChaosReport]:
    """Run the chaos harness across protocols (default: all registered)."""
    names = tuple(protocols) if protocols is not None else PROTOCOLS.names()
    return [
        run_chaos_spec(
            chaos_spec(name, **spec_kwargs),
            verify_repeat=verify_repeat, drain_limit=drain_limit,
        )
        for name in names
    ]
