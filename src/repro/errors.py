"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.  The
subclasses are grouped by subsystem: simulation kernel, storage substrate,
transaction execution, and protocol-level failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was used incorrectly."""


class ProcessKilled(SimulationError):
    """A simulated process was forcibly terminated."""


class StorageError(ReproError):
    """Base class for storage-substrate errors."""


class MissingItemError(StorageError, KeyError):
    """A data item (or any version of it at/below a bound) does not exist."""


class MissingVersionError(StorageError, KeyError):
    """A specific version of a data item was required but does not exist."""


class CounterError(StorageError):
    """Request/completion counter tables were used inconsistently."""


class LockError(ReproError):
    """Base class for lock-table errors."""


class DeadlockAbort(LockError):
    """A transaction was aborted by the wait-die deadlock avoidance policy."""


class TransactionError(ReproError):
    """Base class for transaction specification and execution errors."""


class InvalidTransactionSpec(TransactionError):
    """A transaction tree specification is malformed."""


class TransactionAborted(TransactionError):
    """A transaction aborted and (if applicable) was compensated.

    Attributes:
        reason: Human-readable abort cause (e.g. ``"version-conflict"``,
            ``"wait-die"``, ``"requested"``).
    """

    def __init__(self, reason: str = "aborted"):
        super().__init__(reason)
        self.reason = reason


class ProtocolError(ReproError):
    """A protocol implementation violated one of its internal preconditions."""


class InvariantViolation(ProtocolError):
    """One of the paper's Section 4.4 correctness properties was violated."""


class AdvancementInProgress(ProtocolError):
    """A version advancement was requested while one is already running."""
