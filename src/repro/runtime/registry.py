"""`PROTOCOLS` — the single registry of runnable protocol systems.

Protocol modules register themselves at import time (see
``repro/protocols.py``, the aggregator that imports them all); everything
that needs "the list of protocols" — the CLI's ``--protocol`` choices,
``repro.workloads.build_system``, ``repro.exp`` spec validation, the
uniform cross-protocol tests — derives from this registry instead of
maintaining its own tuple.

The registry bootstraps lazily: the first lookup imports the aggregator
module by *name*, so this module never imports a plugin package directly
(the layering lint in ``tools/check_layering.py`` checks exactly that).
Display order is fixed by each entry's ``order`` key, independent of
import order, so CLI help and iteration stay stable however the packages
happen to be loaded.
"""

from __future__ import annotations

import dataclasses
import importlib
import typing

from repro.errors import ReproError


@dataclasses.dataclass(frozen=True)
class ProtocolEntry:
    """One runnable protocol."""

    name: str
    #: ``builder(node_ids, *, seed, latency, node_config, detail,
    #: advancement_period, safety_delay, poll_interval,
    #: allow_noncommuting, faults) -> System``
    builder: typing.Callable
    description: str
    #: Display/iteration rank (import order must not matter).
    order: int
    #: The protocol guarantees snapshot-consistent reads, so the CLI
    #: treats a failed serializability audit as an error, not a finding.
    strict_audit: bool = False
    #: Crash-target id of the protocol's advancement coordinator, when it
    #: has one (``None`` for coordinator-free baselines).  The chaos
    #: harness uses this to aim coordinator crash events.
    coordinator: typing.Optional[str] = None
    #: Whether the protocol detects in-flight work before retiring a
    #: version.  ``False`` marks the paper's manual-versioning failure
    #: mode as *expected*: a straggler delayed past the fixed safety
    #: delay (e.g. by a partition) loses its latest-version update, so
    #: the chaos harness reports — but does not fail on — store
    #: disagreement under partition plans.
    detects_termination: bool = True


class ProtocolRegistry:
    """Mapping-like registry of :class:`ProtocolEntry`, lazily bootstrapped."""

    def __init__(self, bootstrap_module: typing.Optional[str] = None):
        self._entries: typing.Dict[str, ProtocolEntry] = {}
        self._bootstrap_module = bootstrap_module
        self._loaded = bootstrap_module is None

    def register(self, name: str, builder: typing.Callable, *,
                 description: str = "", order: int,
                 strict_audit: bool = False,
                 coordinator: typing.Optional[str] = None,
                 detects_termination: bool = True) -> ProtocolEntry:
        """Add a protocol (idempotent for identical re-registration)."""
        entry = ProtocolEntry(
            name=name, builder=builder, description=description,
            order=order, strict_audit=strict_audit, coordinator=coordinator,
            detects_termination=detects_termination,
        )
        existing = self._entries.get(name)
        if existing is not None and existing != entry:
            raise ReproError(f"protocol {name!r} registered twice")
        self._entries[name] = entry
        return entry

    def _load(self) -> None:
        if not self._loaded:
            # Mark first: the aggregator import re-enters via register().
            self._loaded = True
            importlib.import_module(self._bootstrap_module)

    # ------------------------------------------------------------------
    # Mapping surface
    # ------------------------------------------------------------------

    def names(self) -> typing.Tuple[str, ...]:
        self._load()
        return tuple(sorted(self._entries, key=lambda n: self._entries[n].order))

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        self._load()
        return len(self._entries)

    def __contains__(self, name) -> bool:
        self._load()
        return name in self._entries

    def __getitem__(self, name: str) -> ProtocolEntry:
        self._load()
        try:
            return self._entries[name]
        except KeyError:
            raise ReproError(
                f"unknown protocol {name!r}; pick from {self.names()}"
            ) from None

    def get(self, name: str,
            default: typing.Optional[ProtocolEntry] = None
            ) -> typing.Optional[ProtocolEntry]:
        self._load()
        return self._entries.get(name, default)

    def strict(self) -> typing.Tuple[str, ...]:
        """Names of protocols whose audits must come back clean."""
        return tuple(n for n in self.names() if self._entries[n].strict_audit)

    def build(self, name: str, node_ids, **options):
        """Instantiate protocol ``name``'s system behind the uniform
        builder signature."""
        return self[name].builder(node_ids, **options)

    def __repr__(self) -> str:
        loaded = sorted(self._entries, key=lambda n: self._entries[n].order)
        return f"ProtocolRegistry({', '.join(loaded) or '<unloaded>'})"


#: The process-wide registry; bootstrapped from ``repro.protocols``.
PROTOCOLS = ProtocolRegistry(bootstrap_module="repro.protocols")
