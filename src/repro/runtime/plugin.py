"""`ProtocolPlugin` — the policy half of the runtime's mechanism/policy split.

A plugin specialises :class:`~repro.runtime.node.ProtocolNode` and
:class:`~repro.runtime.system.System` for one protocol.  The base class is
a complete, runnable protocol by itself: the "no coordination" semantics
(one version, number 0; reads and writes hit it directly; no counters, no
gates, no control messages).  Every other protocol overrides a subset of
the hooks.

Hook contract (see ``docs/PROTOCOL.md`` for the full walk-through):

* Hooks named ``admit_root`` / ``pre_execute`` / ``admission_gate`` may
  need to wait on simulation events.  They return ``None`` for the common
  synchronous case or a *generator* the node drives with ``yield from`` —
  returning ``None`` keeps the per-subtransaction hot path free of
  generator churn.
* ``takeover`` lets a plugin replace the runtime's whole subtransaction
  lifecycle for some transaction class (NC3V and 2PC divert into the
  shared :mod:`repro.runtime.twophase` engine this way).
* ``local_service`` is always a generator; it models local service time
  and owns the protocol's service-RNG draw discipline.
* Everything else is a plain synchronous callback.

Plugins hold no per-node mutable state of their own; node-local protocol
state (counters, version variables, engines) is attached to the node in
:meth:`ProtocolPlugin.init_node`, keeping one plugin instance shareable by
all nodes of a system.
"""

from __future__ import annotations

import typing

from repro.errors import ProtocolError
from repro.net.message import Message
from repro.storage.mvstore import MVStore
from repro.txn.history import (
    ReadEvent,
    TxnKind,
    WaitReason,
    WriteEvent,
)
from repro.txn.runtime import SubtxnInstance
from repro.txn.spec import ReadOp, WriteOp


class ProtocolPlugin:
    """Default plugin: single-version, uncoordinated execution."""

    def __init__(self):
        self.system = None

    # ------------------------------------------------------------------
    # System integration
    # ------------------------------------------------------------------

    def bind(self, system) -> None:
        """Attach to the owning system (called before nodes are built)."""
        self.system = system

    def make_store(self, node):
        """Build the node's versioned store."""
        return MVStore()

    def init_node(self, node) -> None:
        """Attach protocol-specific state to a freshly built node."""

    def on_recover(self, node) -> None:
        """The node came back from a fail-stop crash.

        Called after the write-ahead journal rebuilt the node's durable
        components and before its mailbox thaws.  Plugins re-arm whatever
        protocol state needs it (3V re-ensures its active counter rows and
        re-checks NC3V admission gates; the two-phase engines re-resolve
        in-doubt transactions).  The default protocol keeps no state
        beyond the journaled store, so this is a no-op.
        """

    # ------------------------------------------------------------------
    # Classification and lifecycle takeover
    # ------------------------------------------------------------------

    def classify(self, instance: SubtxnInstance) -> str:
        if instance.txn.is_read_only:
            return TxnKind.READ
        if instance.txn.is_well_behaved:
            return TxnKind.UPDATE
        return TxnKind.NONCOMMUTING

    def takeover(self, node, instance: SubtxnInstance, kind: str):
        """Return a generator replacing the whole subtransaction lifecycle,
        or ``None`` to run the shared runtime path."""
        return None

    # ------------------------------------------------------------------
    # Root admission and version assignment
    # ------------------------------------------------------------------

    def admit_root(self, node, instance: SubtxnInstance, kind: str):
        """Admit a root: assign its version and begin the history record.

        Returns ``None`` when admission completed synchronously, or a
        generator to wait on (admission gates).
        """
        arrived_at = node.sim.now
        gate = self.admission_gate(node, instance, kind)
        if gate is not None:
            return self._gated_admission(node, instance, kind, arrived_at, gate)
        self._admit(node, instance, kind, arrived_at)
        return None

    def _gated_admission(self, node, instance, kind, arrived_at, gate):
        yield from gate
        self._admit(node, instance, kind, arrived_at)

    def _admit(self, node, instance, kind, arrived_at) -> None:
        instance.version = self.assign_version(node, kind)
        node.history.begin_txn(
            instance.txn.name, kind, instance.version, arrived_at,
            node.node_id,
        )
        node.history.waited(
            instance.txn.name, WaitReason.ADVANCEMENT,
            node.sim.now - arrived_at,
        )

    def admission_gate(self, node, instance: SubtxnInstance, kind: str):
        """Generator run before a root is admitted, or ``None`` (no gate).

        E.g. the synchronous manual-versioning variant blocks new roots
        mid-switch.
        """
        return None

    def assign_version(self, node, kind: str) -> int:
        """Version for a newly arrived root transaction."""
        return 0

    def on_descendant(self, node, instance: SubtxnInstance, kind: str) -> None:
        """A non-root subtransaction arrived carrying its root's version."""

    # ------------------------------------------------------------------
    # Execution hooks
    # ------------------------------------------------------------------

    def pre_execute(self, node, instance: SubtxnInstance, kind: str):
        """Generator run before the executor is acquired (e.g. commute
        locks), or ``None``."""
        return None

    def local_service(self, node, instance: SubtxnInstance):
        """Model local service time (generator; owns the service-RNG draw
        discipline — baselines draw only when the subtransaction has ops)."""
        spec = instance.spec
        if spec.ops:
            service = node.rngs.sample("node.service", node.config.op_service)
            yield node.sim.timeout(service * len(spec.ops))

    def execute_ops(self, node, instance: SubtxnInstance, kind: str) -> None:
        """Run the instance's local read/write operations."""
        version = instance.version
        for op in instance.spec.ops:
            if isinstance(op, ReadOp):
                used, value = self.read_item(node, op.key, version)
                node.history.read(
                    ReadEvent(
                        time=node.sim.now, txn=instance.txn.name,
                        subtxn=instance.sid, node=node.node_id, key=op.key,
                        version_requested=version, version_used=used,
                        value=value,
                    )
                )
            elif isinstance(op, WriteOp):
                if kind == TxnKind.READ:
                    raise ProtocolError(
                        f"read-only transaction {instance.txn.name!r} "
                        "attempted a write"
                    )
                written = self.write_item(node, op.key, version, op.operation)
                node.history.wrote(
                    WriteEvent(
                        time=node.sim.now, txn=instance.txn.name,
                        subtxn=instance.sid, node=node.node_id, key=op.key,
                        version=version, versions_written=written,
                        operation=op.operation,
                    )
                )

    def apply_inverses(self, node, instance: SubtxnInstance) -> None:
        """Apply the compensating (inverse) writes of a subtransaction."""
        for op in reversed(instance.spec.ops):
            if not isinstance(op, WriteOp):
                continue
            inverse = op.operation.inverse()
            written = self.write_item(node, op.key, instance.version, inverse)
            node.history.wrote(
                WriteEvent(
                    time=node.sim.now, txn=instance.txn.name,
                    subtxn=instance.sid, node=node.node_id, key=op.key,
                    version=instance.version, versions_written=written,
                    operation=inverse, compensating=True,
                )
            )

    def read_item(self, node, key, version: int):
        """Return ``(version_used, value)``."""
        used = node.store.version_max_leq(key, version)
        value = node.store.get_exact(key, used) if used is not None else None
        return used, value

    def write_item(self, node, key, version: int, operation) -> int:
        """Apply a write; return the number of version copies touched."""
        node.store.ensure_version(key, version)
        node.store.apply_exact(key, version, operation)
        return 1

    def apply_refresh_op(self, node, key, version: int, operation) -> None:
        """Apply one missed write during a replica refresh.

        Refresh operations are reconciliation, not new requests: they
        bypass request/completion accounting entirely (the skipped
        dispatch never incremented a request counter, so no completion is
        owed) and re-apply the commuting operation at its original
        version with the dual-write ``apply_geq`` rule, so every version
        copy at or above it absorbs the update.  If garbage collection
        moved the chain floor past the op's version while the replica was
        down, the op lands on the floor instead — exactly where a live
        replica's own GC would have folded it.
        """
        versions = node.store.versions(key)
        if versions and version < versions[0]:
            version = versions[0]
        node.store.ensure_version(key, version)
        node.store.apply_geq(key, version, operation)

    # ------------------------------------------------------------------
    # Commit / completion participation
    # ------------------------------------------------------------------

    def note_request(self, node, version, target: str) -> None:
        """Called right before each child/compensator send (3V increments
        its request counter here — Section 4.1 step 5)."""

    def on_subtxn_executed(self, node, instance: SubtxnInstance) -> None:
        """The subtransaction committed locally and dispatched its children
        (Section 4.1 step 6 timing — "immediate" completion counting)."""

    def on_instance_complete(self, node, instance: SubtxnInstance) -> None:
        """The whole subtree under this instance has completed
        (hierarchical completion counting)."""

    def on_root_complete(self, node, instance: SubtxnInstance) -> None:
        """The root's subtree — the whole transaction — has completed."""

    # ------------------------------------------------------------------
    # Control messages
    # ------------------------------------------------------------------

    def handle_message(self, node, message: Message) -> None:
        """Handle a protocol-specific control message."""
        raise ProtocolError(
            f"node {node.node_id}: unexpected message kind {message.kind!r}"
        )
