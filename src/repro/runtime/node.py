"""`ProtocolNode` — the one database node every protocol runs on.

The node owns the mechanism every protocol shares: the mailbox loop, the
local executor, completion trackers and hierarchical completion notices,
and compensation routing (Section 3.2's tree-edge propagation, including
the tombstone rule for compensation that overtakes its target).  All
protocol policy — version assignment, counters, locks, control messages —
lives in the system's :class:`~repro.runtime.plugin.ProtocolPlugin`.

The user-visible commitment of a subtransaction happens right after its
local operations and child dispatch (no waiting for anything non-local:
Theorem 4.2).  *Completion* bookkeeping is delegated to plugin hooks so 3V
can implement both the hierarchical (Table 1) and the literal-step-6
"immediate" counter timing.
"""

from __future__ import annotations

import typing

from repro.errors import ProtocolError
from repro.net.message import Message, MessageKind
from repro.sim.resources import Resource
from repro.storage.locktable import LockTable
from repro.storage.wal import JournaledStore, NodeJournal
from repro.txn.history import WaitReason
from repro.txn.runtime import CompletionNotice, CompletionTracker, SubtxnInstance


class ProtocolNode:
    """One database node, specialised by the system's protocol plugin."""

    def __init__(self, system, node_id: str):
        self.system = system
        self.sim = system.sim
        self.network = system.network
        self.history = system.history
        self.config = system.config
        self.rngs = system.rngs
        self.plugin = system.plugin
        self.node_id = node_id

        #: Write-ahead journal for crash-recovery (only when the system
        #: runs with fault injection; ``None`` keeps the seed path exact).
        self.journal = NodeJournal(node_id) if system.journaling else None
        store = self.plugin.make_store(self)
        if self.journal is not None:
            store = JournaledStore(store, lambda: self.plugin.make_store(self))
            self.journal.attach("store", store)
        self.store = store
        self.locks = LockTable(self.sim)
        self.executor = Resource(self.sim, capacity=self.config.executor_capacity)

        #: In-flight completion trackers, keyed by instance key.
        self._trackers: typing.Dict[tuple, CompletionTracker] = {}
        #: Subtransactions whose ops ran here, keyed by transaction name
        #: (needed by compensation).  Entries are dropped when the whole
        #: tree completes globally — no message for a completed tree can
        #: still be in flight (completion notices flow only after every
        #: child, original or compensating, has been delivered and
        #: executed) — so this stays O(in-flight txns), not O(run length).
        self._executed: typing.Dict[str, typing.Set[str]] = {}
        #: Compensation that arrived before its target subtransaction,
        #: same keying and lifetime as ``_executed``.
        self._tombstones: typing.Dict[str, typing.Set[str]] = {}
        #: Monotone count of tombstones ever laid here (the entries above
        #: are reclaimed at global completion, so tests and diagnostics
        #: that want evidence of an overtake race read this instead).
        self.tombstones_created = 0

        # The service-time stream is drawn from on every subtransaction;
        # binding it once avoids the registry lookup per draw (stream seeds
        # are name-derived, so early binding does not perturb any draws).
        self._service_rng = self.rngs.stream("node.service")

        self._mailbox = self.network.register(node_id)
        self._main = self.sim.process(self._run(), name=f"node-{node_id}")

        self.plugin.init_node(self)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _run(self):
        mailbox = self._mailbox
        if not self.network.batch_delivery:
            while True:
                message = yield mailbox.get()
                self._dispatch(message)
        # Batched delivery deposits a whole same-tick batch in one mailbox
        # wake; drain the backlog synchronously so the batch costs one
        # event + one process resume instead of one per message.  Order is
        # unchanged (take_nowait pops the same FIFO get() would) and a
        # crash mid-drain stops it (take_nowait respects freeze).
        take_nowait = mailbox.take_nowait
        while True:
            message = yield mailbox.get()
            self._dispatch(message)
            message = take_nowait()
            while message is not None:
                self._dispatch(message)
                message = take_nowait()

    def _dispatch(self, message: Message) -> None:
        kind = message.kind
        if kind == MessageKind.SUBTXN_REQUEST or kind == MessageKind.COMPENSATION:
            instance = message.payload
            self.sim.process(
                self.run_subtxn(instance),
                name=f"{self.node_id}:{instance.sid}",
            )
        elif kind == MessageKind.COMPLETION_NOTICE:
            self._on_completion_notice(message.payload)
        elif (kind == MessageKind.REFRESH_REQUEST
              or kind == MessageKind.REFRESH_REPLY):
            self.system.placement.handle_message(self, message)
        else:
            self.plugin.handle_message(self, message)

    # ------------------------------------------------------------------
    # Submission (client-side entry point; no network hop)
    # ------------------------------------------------------------------

    def submit(self, instance: SubtxnInstance) -> None:
        """Deliver a root subtransaction directly to this node's mailbox."""
        if not instance.is_root:
            raise ProtocolError("submit() is for root subtransactions only")
        self._mailbox.put(
            Message(
                src=self.node_id,
                dst=self.node_id,
                kind=MessageKind.SUBTXN_REQUEST,
                payload=instance,
                sent_at=self.sim.now,
                delivered_at=self.sim.now,
            )
        )

    # ------------------------------------------------------------------
    # Subtransaction execution (Sections 4.1 / 4.2 mechanism)
    # ------------------------------------------------------------------

    def run_subtxn(self, instance: SubtxnInstance):
        plugin = self.plugin

        # --- Recovery-readability (before any protocol policy, so the
        # gate also covers transactions a plugin diverts via takeover):
        # a read at a recovered-but-unrefreshed replica waits for the
        # refresh to complete rather than observing stale state. --------
        placement = self.system.placement
        if placement is not None and instance.txn.is_read_only:
            while True:
                gate = placement.read_gate(self.node_id)
                if gate is None:
                    break
                yield gate
            placement.note_read_served(self.node_id)

        kind = plugin.classify(instance)

        # A plugin may divert this transaction class into its own
        # lifecycle (NC3V's and 2PC's two-phase-commit engine).
        takeover = plugin.takeover(self, instance, kind)
        if takeover is not None:
            yield from takeover
            return

        # --- Arrival: version assignment and request accounting -------
        if instance.is_root:
            gate = plugin.admit_root(self, instance, kind)
            if gate is not None:
                yield from gate
        else:
            plugin.on_descendant(self, instance, kind)

        tracker = CompletionTracker(instance)
        self._trackers[instance.instance_key] = tracker

        # --- Protocol work before the executor (e.g. commute locks) ----
        pre = plugin.pre_execute(self, instance, kind)
        if pre is not None:
            yield from pre

        # --- Local concurrency control ---------------------------------
        queued_at = self.sim.now
        yield self.executor.request()
        self.history.waited(
            instance.txn.name, WaitReason.EXECUTOR, self.sim.now - queued_at
        )
        try:
            yield from plugin.local_service(self, instance)
            tombstoned = self._apply_ops(instance, kind)
        finally:
            self.executor.release()

        # --- Scripted abort: roll back and compensate (Section 3.2) ----
        aborting = (
            instance.spec.abort_here and not instance.compensating
            and not tombstoned
        )
        if aborting:
            plugin.apply_inverses(self, instance)
            self.history.aborted(instance.txn.name, self.sim.now, "requested")
            self.history.compensated(instance.txn.name)

        # --- Dispatch (children, or compensation fan-out) ---------------
        if instance.compensating:
            if not tombstoned:
                self._fan_out_compensation(
                    instance, tracker, skip=instance.comp_skip
                )
        elif aborting:
            parent_sid = instance.index.parent[instance.sid]
            if parent_sid is not None:
                self._send_compensator(instance, tracker, parent_sid)
        elif not tombstoned:
            self._dispatch_children(instance, tracker)

        # --- Local commit (user-visible; Theorem 4.2: nothing above
        # waited for any non-local activity) ----------------------------
        if instance.is_root:
            self.history.locally_committed(instance.txn.name, self.sim.now)

        plugin.on_subtxn_executed(self, instance)

        tracker.executed = True
        if tracker.complete:
            self._complete_instance(instance)

    def _apply_ops(self, instance: SubtxnInstance, kind: str) -> bool:
        """Execute the instance's local operations.

        Returns:
            ``True`` if the instance was suppressed (tombstoned original, or
            compensation for a subtransaction that never ran here).
        """
        name = instance.txn.name
        if instance.compensating:
            if instance.sid not in self._executed.get(name, ()):
                # Compensation overtook the original: leave a tombstone so
                # the original becomes a no-op when it arrives.  If the
                # original was skipped for this replica (write-all-
                # available), the ledgered copy is cancelled instead —
                # the pair annihilates, so the refresh must not apply it.
                self._tombstones.setdefault(name, set()).add(instance.sid)
                self.tombstones_created += 1
                placement = self.system.placement
                if placement is not None:
                    placement.cancel_skip(self.node_id, name, instance.sid)
                return True
            self.plugin.apply_inverses(self, instance)
            return False
        if instance.sid in self._tombstones.get(name, ()):
            # "A compensating subtransaction causes abort of the
            # corresponding subtransaction if it has not finished."
            return True
        self.plugin.execute_ops(self, instance, kind)
        self._executed.setdefault(name, set()).add(instance.sid)
        return False

    # ------------------------------------------------------------------
    # Dispatch and completion plumbing
    # ------------------------------------------------------------------

    def _dispatch_children(self, instance: SubtxnInstance,
                           tracker: CompletionTracker) -> None:
        plugin = self.plugin
        placement = self.system.placement
        for child_sid in instance.index.children[instance.sid]:
            target = instance.index.node_of(child_sid)
            if (placement is not None
                    and not instance.index.children[child_sid]
                    and placement.should_skip_write(target, instance)):
                # Only leaf children can be skipped: an interior child
                # carries dispatch responsibility for its own subtree.
                # Write-all-available: the replica is down or unrefreshed,
                # so its copy is skipped — no request counter increment,
                # no completion owed (aggregate quiescence stays balanced)
                # — and the missed operations are ledgered for the
                # refresh that will re-admit the replica.
                placement.record_skip(
                    target, instance.txn.name, child_sid,
                    instance.version if instance.version is not None else 0,
                    [(op.key, op.operation)
                     for op in instance.index.by_id[child_sid].ops
                     if hasattr(op, "operation")],
                )
                continue
            child = instance.child_instance(child_sid, self.node_id)
            child.notify_key = instance.instance_key
            # Step 5: request accounting happens *before* sending.
            plugin.note_request(self, instance.version, target)
            tracker.outstanding_children += 1
            self.network.send(
                self.node_id, target, MessageKind.SUBTXN_REQUEST, child
            )

    def _send_compensator(self, instance: SubtxnInstance,
                          tracker: CompletionTracker, target_sid: str) -> None:
        compensator = instance.compensator(target_sid, self.node_id)
        compensator.notify_key = instance.instance_key
        target = instance.index.node_of(target_sid)
        self.plugin.note_request(self, instance.version, target)
        tracker.outstanding_children += 1
        self.network.send(
            self.node_id, target, MessageKind.COMPENSATION, compensator
        )

    def _fan_out_compensation(self, instance: SubtxnInstance,
                              tracker: CompletionTracker, skip) -> None:
        """Propagate compensation to the other tree neighbours."""
        for neighbour_sid in instance.index.neighbours(instance.sid):
            if neighbour_sid != skip:
                self._send_compensator(instance, tracker, neighbour_sid)

    def _complete_instance(self, instance: SubtxnInstance) -> None:
        """Subtree completion: plugin accounting plus the upward notice."""
        self.plugin.on_instance_complete(self, instance)
        del self._trackers[instance.instance_key]
        if instance.notify_key is None:
            # Root of the tree: the whole transaction is done.
            self.history.globally_completed(instance.txn.name, self.sim.now)
            self.plugin.on_root_complete(self, instance)
            self._forget_txn(instance)
            return
        notice = CompletionNotice(
            txn_name=instance.txn.name,
            parent_key=instance.notify_key,
            child_key=instance.instance_key,
        )
        if instance.source_node == self.node_id:
            self._on_completion_notice(notice)
        else:
            self.network.send(
                self.node_id, instance.source_node,
                MessageKind.COMPLETION_NOTICE, notice,
            )

    def _forget_txn(self, instance: SubtxnInstance) -> None:
        """Drop a globally-completed tree's compensation bookkeeping.

        Called on the root node once the whole transaction is done.  At
        that point no message for the tree is in flight anywhere (every
        child — original, tombstoned, or compensating — was delivered,
        executed, and acknowledged before the root's tracker drained), so
        the per-node ``_executed`` / ``_tombstones`` entries can never be
        consulted again.  Forgetting them keeps node bookkeeping bounded
        by the number of *in-flight* transactions rather than growing
        with everything the run has ever executed — the invariant the
        million-transaction volume axis depends on.
        """
        name = instance.txn.name
        nodes = self.system.nodes
        index = instance.index
        for node_id in {index.node_of(sid) for sid in index.by_id}:
            node = nodes.get(node_id)
            if node is not None:
                node._executed.pop(name, None)
                node._tombstones.pop(name, None)

    def _on_completion_notice(self, notice: CompletionNotice) -> None:
        tracker = self._trackers.get(notice.parent_key)
        if tracker is None:
            raise ProtocolError(
                f"node {self.node_id}: completion notice for unknown "
                f"instance {notice.parent_key!r}"
            )
        tracker.outstanding_children -= 1
        if tracker.complete:
            self._complete_instance(tracker.instance)

    @property
    def active_subtxns(self) -> int:
        return len(self._trackers)
