"""`System` — the uniform facade every protocol is driven through.

One class ties the simulator, RNG registry, network, history, and nodes
together; protocol subclasses add their coordinator machinery on top but
the driving surface — ``load`` / ``submit`` / ``submit_at`` / ``run`` /
``run_for`` / ``run_until_quiet(limit=)`` / ``stop_policy()`` — is
identical across all of them, so benchmarks, the experiment fleet, and the
analysis package can treat any system interchangeably.
"""

from __future__ import annotations

import typing

from repro.errors import ProtocolError, SimulationError
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.runtime.config import NodeConfig
from repro.runtime.node import ProtocolNode
from repro.runtime.plugin import ProtocolPlugin
from repro.sim.distributions import RngRegistry
from repro.sim.simulator import Simulator
from repro.txn.history import History
from repro.txn.runtime import SubtxnInstance, TxnIndex
from repro.txn.spec import TransactionSpec


class System:
    """A distributed database cluster running one protocol plugin.

    Args:
        node_ids: Names of the database nodes.
        seed: Master seed for all randomness (latencies, service times).
        latency: Network latency model (default: constant 1.0).
        node_config: Shared per-node tunables.
        detail: Record per-operation events in the history (turn off for
            very large benchmark runs).
        fifo_links: Enforce per-link FIFO message delivery.
        batch_delivery: Coalesce same-tick same-destination deliveries
            into one scheduled batch event and drain node mailboxes in
            one pass per wake (see :class:`repro.net.network.Network`).
            Changes the scheduled-callback trace, so compare determinism
            digests only between runs with the same setting.
        plugin: Protocol plugin instance (default: ``plugin_class()``).
        faults: Optional :class:`repro.faults.FaultPlan`.  Swaps the
            network for the fault injector (plus the reliable-delivery
            layer when the plan is lossy), enables write-ahead journaling
            on every node so :meth:`crash`/:meth:`recover` work, and
            schedules the plan's crash/recover events.
        history: Pre-built recording surface (e.g. a
            :class:`~repro.txn.history.StreamingHistory` for
            bounded-memory runs).  ``None`` builds the materialized
            default; when supplied, ``detail`` is the history's concern
            and the argument only shapes per-node event capture.
        placement: Optional :class:`repro.placement.PlacementState`.
            Turns on replica-aware routing: read-only submissions are
            re-pointed to readable replicas, write fan-out skips
            unavailable replicas (write-all-available), and recovered
            nodes stay unreadable until the refresh protocol re-admits
            them.  ``None`` (the default, and always the case at
            ``replication_factor=1``) keeps every hot path bit-identical
            to the unreplicated system.
    """

    #: Plugin built when the ``plugin`` argument is omitted.
    plugin_class: typing.Type[ProtocolPlugin] = ProtocolPlugin

    #: Crash targets beyond the database nodes that subclasses accept
    #: (e.g. 3V registers its advancement coordinator).  Crash events
    #: aimed at these are routed to :meth:`_scheduled_extra_crash`.
    extra_crash_targets: typing.Tuple[str, ...] = ()

    def __init__(
        self,
        node_ids: typing.Sequence[str],
        seed: int = 0,
        latency: typing.Optional[LatencyModel] = None,
        node_config: typing.Optional[NodeConfig] = None,
        detail: bool = True,
        fifo_links: bool = False,
        batch_delivery: bool = False,
        plugin: typing.Optional[ProtocolPlugin] = None,
        faults=None,
        history: typing.Optional[History] = None,
        placement=None,
    ):
        if not node_ids:
            raise ProtocolError("a system needs at least one node")
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        self.faults = faults
        if faults is not None:
            # Imported lazily: the runtime only depends on repro.faults
            # when a plan is actually supplied.
            from repro.faults import build_network

            self.network = build_network(
                self.sim, faults, rngs=self.rngs, latency=latency,
                fifo_links=fifo_links, batch_delivery=batch_delivery,
            )
        else:
            self.network = Network(
                self.sim, rngs=self.rngs, latency=latency,
                fifo_links=fifo_links, batch_delivery=batch_delivery,
            )
        self.history = history if history is not None else History(detail=detail)
        self.config = node_config if node_config is not None else NodeConfig()
        self.plugin = plugin if plugin is not None else self.plugin_class()
        self.plugin.bind(self)
        #: Node ids currently crashed (mailboxes frozen).
        self.down_nodes: typing.Set[str] = set()
        self.crash_count = 0
        self.recovery_count = 0
        self.placement = placement
        self.nodes: typing.Dict[str, ProtocolNode] = {
            node_id: ProtocolNode(self, node_id) for node_id in node_ids
        }
        if placement is not None:
            placement.bind(self)
        if faults is not None:
            # Validate every fault target at wiring time: a typo'd node id
            # in a crash or partition event would otherwise silently
            # inject no fault at all, and the run would "pass" untested.
            known = set(self.nodes) | set(self.extra_crash_targets)
            for event in faults.crashes:
                if event.node not in known:
                    raise SimulationError(
                        f"fault plan crashes unknown target {event.node!r} "
                        f"(nodes: {sorted(self.nodes)}, extra targets: "
                        f"{sorted(self.extra_crash_targets)})"
                    )
                if event.node in self.nodes:
                    self.sim.schedule(event.at, self._scheduled_crash, event)
                else:
                    self.sim.schedule(
                        event.at, self._scheduled_extra_crash, event
                    )
            for partition in faults.partitions:
                for side in (partition.side_a, partition.side_b):
                    for member in side:
                        if member not in known:
                            raise SimulationError(
                                f"fault plan partitions unknown target "
                                f"{member!r} (nodes: {sorted(self.nodes)}, "
                                f"extra targets: "
                                f"{sorted(self.extra_crash_targets)})"
                            )
        self._submitted = 0

    @property
    def journaling(self) -> bool:
        """Whether nodes keep write-ahead journals (crash-recovery on)."""
        return self.faults is not None

    # ------------------------------------------------------------------
    # Data loading and inspection
    # ------------------------------------------------------------------

    def load(self, node_id: str, key, value, version: int = 0) -> None:
        """Install an initial value on a node before (or during) a run."""
        self.node(node_id).store.load(key, value, version=version)

    def node(self, node_id: str) -> ProtocolNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ProtocolError(f"unknown node: {node_id!r}") from None

    def value_at(self, node_id: str, key, version: typing.Optional[int] = None):
        """Read a value directly from a node's store (for tests/inspection).

        With ``version=None``, reads at the node's current read version —
        what a freshly arriving query would see.
        """
        node = self.node(node_id)
        bound = self.current_read_version(node) if version is None else version
        return node.store.read_max_leq(key, bound, default=None)

    def current_read_version(self, node: ProtocolNode) -> int:
        """What version a query arriving now would use (hook)."""
        return 0

    # ------------------------------------------------------------------
    # Transaction submission
    # ------------------------------------------------------------------

    def submit(self, spec: TransactionSpec) -> None:
        """Submit a transaction now; its root runs at ``spec.root.node``
        (or, for read-only trees under replication, at the first readable
        replica when the spec's node is unavailable — read-one routing)."""
        index = TxnIndex(spec)
        if self.placement is not None and spec.is_read_only:
            self.placement.route_reads(index)
        root_node = index.node_of(index.root_id)
        instance = SubtxnInstance(
            txn=spec, index=index, sid=index.root_id, version=None,
            source_node=root_node,
        )
        self.node(root_node).submit(instance)
        self._submitted += 1

    def submit_at(self, time: float, spec: TransactionSpec) -> None:
        """Schedule a submission at an absolute simulation time."""
        self.sim.schedule(time - self.sim.now, self.submit, spec)

    @property
    def submitted_count(self) -> int:
        return self._submitted

    # ------------------------------------------------------------------
    # Crash / recovery (fail-stop at message granularity)
    # ------------------------------------------------------------------

    def crash(self, node_id: str) -> None:
        """Fail-stop a node.

        Its mailbox freezes — messages keep accumulating in the durable
        queue but the node consumes nothing — and at :meth:`recover` time
        its volatile store/counter state is discarded and rebuilt from the
        write-ahead journal.  In-flight local work runs to completion
        against the journaled state (the model is a local recovery manager
        finishing redo-logged work, not a torn execution); what a crash
        interrupts is all *future* message processing.

        Requires the system to have been built with ``faults=`` (that is
        what turns journaling on).
        """
        node = self.node(node_id)
        if node.journal is None:
            raise ProtocolError(
                f"cannot crash {node_id!r}: system was built without "
                "faults= (write-ahead journaling is off)"
            )
        if node_id in self.down_nodes:
            raise ProtocolError(f"node {node_id!r} is already down")
        self.down_nodes.add(node_id)
        self.crash_count += 1
        node._mailbox.freeze()
        if self.placement is not None:
            self.placement.on_crash(node_id)

    def recover(self, node_id: str) -> None:
        """Bring a crashed node back: replay the journal, re-arm, thaw.

        The journal replay rebuilds the store (and any plugin-attached
        components, e.g. 3V's counter table) to the exact pre-crash state;
        ``plugin.on_recover`` then re-arms protocol state, and thawing the
        mailbox lets the node drain everything that arrived while it was
        down — including retransmitted copies and in-doubt 2PC decisions.
        """
        node = self.node(node_id)
        if node_id not in self.down_nodes:
            raise ProtocolError(f"node {node_id!r} is not down")
        node.journal.replay()
        self.plugin.on_recover(node)
        self.down_nodes.discard(node_id)
        self.recovery_count += 1
        if self.placement is not None:
            # Mark the replica unreadable *before* thawing: reads queued
            # while it was down must hit the refresh gate, not the
            # journal-replayed (but refresh-pending) store.
            self.placement.on_recover(node_id)
        node._mailbox.thaw()

    def _scheduled_crash(self, event) -> None:
        """Run one planned crash/recover cycle (skipped if already down)."""
        if event.node in self.down_nodes:
            return
        self.crash(event.node)
        self.sim.schedule(event.down_for, self.recover, event.node)

    def _scheduled_extra_crash(self, event) -> None:
        """Run a planned crash of a non-node target (subclass hook).

        The base system has no extra targets, so reaching this is a
        programming error — subclasses that declare
        :attr:`extra_crash_targets` must override it.
        """
        raise ProtocolError(
            f"no handler for extra crash target {event.node!r}"
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, until: typing.Optional[float] = None) -> None:
        """Advance the simulation (see :meth:`repro.sim.Simulator.run`)."""
        self.sim.run(until=until)

    def run_for(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def run_until_quiet(self, limit: float = float("inf")) -> None:
        """Run until no scheduled work remains (needs no periodic policy).

        Blocked mailbox reads don't count as scheduled work, so a system
        with no in-flight transactions or advancement drains naturally.
        """
        while self.sim.pending_count:
            next_time = self.sim.peek_time()
            if next_time is not None and next_time > limit:
                raise ProtocolError(
                    f"system not quiet by simulated time {limit!r}"
                )
            self.sim.step()

    def stop_policy(self) -> None:
        """Kill any automatic driver so the system can drain (no-op here)."""
