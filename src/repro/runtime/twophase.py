"""Shared two-phase-commit machinery (used by NC3V *and* the 2PC baseline).

Both "global synchronization" protocols in this repository run the same
distributed commit: subtransactions execute under NR/NW two-phase locking
with wait-die, report their outcome to the root, and the root drives a
PREPARE/VOTE round followed by a DECISION/ACK round, rolling back from
per-participant undo logs on abort.  Historically the repo kept two copies
of that machinery (``core/nc3v.py`` and ``baselines/twopc.py``); this
module is the single implementation, with small subclass hooks for the
parts that genuinely differ:

* how a root is admitted (NC3V assigns ``V(K) = vu``, increments request
  counters, and gates on ``vu == vr + 1``; 2PC runs everything at
  version 0);
* version-conflict checking before writes (NC3V's Section 5 step 4; the
  2PC baseline has no versions to conflict with);
* completion-counter participation and undo-event recording (NC3V only);
* what happens after the root finishes (the 2PC baseline schedules
  retries).

The engine is per-node: each node of a system owns one instance, playing
participant for every transaction that executes locally and coordinator
for the transactions rooted at it.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import DeadlockAbort, ProtocolError
from repro.net.message import Message, MessageKind
from repro.sim.events import Event
from repro.storage.locktable import LockMode
from repro.storage.values import Operation, undo_operation
from repro.txn.history import ReadEvent, WaitReason, WriteEvent
from repro.txn.runtime import SubtxnInstance
from repro.txn.spec import ReadOp, WriteOp


@dataclasses.dataclass
class UndoEntry:
    """One write to reverse if the transaction aborts."""

    key: typing.Hashable
    version: int
    undo: Operation


@dataclasses.dataclass
class ParticipantState:
    """Per-transaction state on a node that executed its subtransactions."""

    txn_name: str
    version: int
    undo_log: typing.List[UndoEntry] = dataclasses.field(default_factory=list)
    #: ``(sid, source_node)`` for every subtransaction executed here.
    executed: typing.List[typing.Tuple[str, str]] = dataclasses.field(
        default_factory=list
    )
    failed: bool = False


@dataclasses.dataclass
class RootState:
    """Two-phase-commit coordination state at the root node."""

    instance: SubtxnInstance
    #: Subtransaction ids whose execution report is still expected.
    outstanding: typing.Set[str] = dataclasses.field(default_factory=set)
    participants: typing.Set[str] = dataclasses.field(default_factory=set)
    any_failure: bool = False
    reports_done: Event = None
    votes: typing.Set[str] = dataclasses.field(default_factory=set)
    vote_no: bool = False
    votes_done: Event = None
    acks: typing.Set[str] = dataclasses.field(default_factory=set)
    acks_done: Event = None
    expected_voters: typing.Set[str] = dataclasses.field(default_factory=set)
    expected_ackers: typing.Set[str] = dataclasses.field(default_factory=set)


class TwoPhaseEngine:
    """Per-node participant + coordinator for two-phase commitment."""

    _KINDS = frozenset(
        {MessageKind.PREPARE, MessageKind.VOTE, MessageKind.DECISION,
         MessageKind.DECISION_ACK}
    )
    #: payload tag distinguishing execution reports from 2PC votes.
    _EXEC_REPORT = "exec-report"
    _PREPARE_VOTE = "prepare-vote"
    #: history abort reason recorded when the decision is "abort".
    abort_reason = "2pc-abort"

    def __init__(self, node):
        self.node = node
        self._participants: typing.Dict[str, ParticipantState] = {}
        self._roots: typing.Dict[str, RootState] = {}
        self.deadlock_aborts = 0
        self.commits = 0

    # ------------------------------------------------------------------
    # Protocol hooks (overridden by NC3V / the 2PC baseline)
    # ------------------------------------------------------------------

    def admit_root(self, instance: SubtxnInstance):
        """Assign the root's version and begin its history record.

        Returns ``None``, or a generator to wait on (NC3V's version gate).
        """
        node = self.node
        instance.version = 0
        node.history.begin_txn(
            instance.txn.name, node.plugin.classify(instance), 0,
            node.sim.now, node.node_id,
        )
        return None

    def note_request(self, version, target: str) -> None:
        """Request accounting before each child send (NC3V counters)."""

    def check_version_conflict(self, instance: SubtxnInstance) -> bool:
        """Section 5 step 4 (NC3V): abort if a newer version diverged."""
        return False

    def record_undo_event(self, txn_name: str, entry: UndoEntry) -> None:
        """History record for one rollback write (NC3V only)."""

    def after_decision(self, state: ParticipantState) -> None:
        """Per-participant accounting atomic with the decision (NC3V's
        completion-counter increments — Section 5, step 6)."""

    def on_finished(self, instance: SubtxnInstance, committed: bool) -> None:
        """The root's transaction finished (the 2PC baseline retries)."""

    def on_recover(self) -> int:
        """Re-resolve in-doubt transactions after a fail-stop crash.

        The engine's transaction table — participant states with their
        undo logs, and root coordination state — is checkpointed control
        state in the crash model; the store those undo logs refer to was
        just rebuilt from the write-ahead journal, so the two are
        consistent by construction.  Every in-doubt participant (prepared,
        decision not yet applied) resolves as the thawed mailbox drains:
        the DECISION either already sits in the durable queue or is
        retransmitted by the reliable-delivery layer.  Roots resume the
        same way — their pending vote/ack events trigger as the frozen
        messages are processed.

        Returns the number of in-doubt transactions, for observability.
        """
        return len(self._participants)

    # ------------------------------------------------------------------
    # Node integration
    # ------------------------------------------------------------------

    def handles(self, kind: str) -> bool:
        return kind in self._KINDS

    def dispatch(self, message: Message) -> None:
        if message.kind == MessageKind.PREPARE:
            self._on_prepare(message)
        elif message.kind == MessageKind.VOTE:
            self._on_vote(message)
        elif message.kind == MessageKind.DECISION:
            self._on_decision(message)
        elif message.kind == MessageKind.DECISION_ACK:
            self._on_decision_ack(message)

    # ------------------------------------------------------------------
    # Subtransaction execution
    # ------------------------------------------------------------------

    def run_subtxn(self, instance: SubtxnInstance):
        node = self.node
        txn_name = instance.txn.name
        if instance.is_root:
            gate = self.admit_root(instance)
            if gate is not None:
                yield from gate

        state = self._participants.get(txn_name)
        if state is None:
            state = ParticipantState(txn_name=txn_name,
                                     version=instance.version)
            self._participants[txn_name] = state

        ok = yield from self._execute_locally(instance, state)

        dispatched: typing.List[str] = []
        if ok:
            for child_sid in instance.index.children[instance.sid]:
                child = instance.child_instance(child_sid, node.node_id)
                target = instance.index.node_of(child_sid)
                self.note_request(instance.version, target)
                node.network.send(
                    node.node_id, target, MessageKind.SUBTXN_REQUEST, child
                )
                dispatched.append(child_sid)

        if instance.is_root:
            yield from self._coordinate(instance, ok, dispatched)
        else:
            # Report execution outcome (and what was dispatched) to the root.
            root_node = instance.index.node_of(instance.index.root_id)
            node.network.send(
                node.node_id, root_node, MessageKind.VOTE,
                (self._EXEC_REPORT, txn_name, instance.sid, node.node_id,
                 ok, dispatched),
            )

    def _execute_locally(self, instance: SubtxnInstance,
                         state: ParticipantState):
        """Locks, version check, and writes for one subtransaction.

        Returns ``True`` on success, ``False`` if the subtransaction failed
        (wait-die or version conflict) — failure aborts the whole
        transaction at decision time.
        """
        node = self.node
        txn_name = instance.txn.name
        spec = instance.spec
        timestamp = self._root_timestamp(instance)

        # 2PL acquisition (NR/NW), wait-die on conflict.
        for op in spec.ops:
            mode = LockMode.NW if isinstance(op, WriteOp) else LockMode.NR
            queued_at = node.sim.now
            event = node.locks.acquire(op.key, mode, txn_name, timestamp)
            try:
                yield event
            except DeadlockAbort:
                self.deadlock_aborts += 1
                state.failed = True
                state.executed.append((instance.sid, instance.source_node))
                return False
            node.history.waited(
                txn_name, WaitReason.LOCK, node.sim.now - queued_at
            )

        queued_at = node.sim.now
        yield node.executor.request()
        node.history.waited(
            txn_name, WaitReason.EXECUTOR, node.sim.now - queued_at
        )
        try:
            if spec.ops:
                service = node.rngs.sample(
                    "node.service", node.config.op_service
                )
                yield node.sim.timeout(service * len(spec.ops))
            version = instance.version
            if self.check_version_conflict(instance):
                state.failed = True
                state.executed.append((instance.sid, instance.source_node))
                return False
            for op in spec.ops:
                if isinstance(op, ReadOp):
                    used = node.store.version_max_leq(op.key, version)
                    value = (
                        node.store.get_exact(op.key, used)
                        if used is not None else None
                    )
                    node.history.read(
                        ReadEvent(
                            time=node.sim.now,
                            txn=txn_name,
                            subtxn=instance.sid,
                            node=node.node_id,
                            key=op.key,
                            version_requested=version,
                            version_used=used,
                            value=value,
                        )
                    )
                else:
                    node.store.ensure_version(op.key, version)
                    previous = node.store.get_exact(op.key, version)
                    undo = undo_operation(op.operation, previous)
                    node.store.apply_exact(op.key, version, op.operation)
                    state.undo_log.append(UndoEntry(op.key, version, undo))
                    node.history.wrote(
                        WriteEvent(
                            time=node.sim.now,
                            txn=txn_name,
                            subtxn=instance.sid,
                            node=node.node_id,
                            key=op.key,
                            version=version,
                            versions_written=1,
                            operation=op.operation,
                        )
                    )
        finally:
            node.executor.release()
        state.executed.append((instance.sid, instance.source_node))
        return True

    def _root_timestamp(self, instance: SubtxnInstance) -> float:
        record = self.node.history.txns.get(instance.txn.name)
        if record is not None:
            return record.submit_time
        return instance.txn.priority_hint

    # ------------------------------------------------------------------
    # Two-phase commitment (root side)
    # ------------------------------------------------------------------

    def _coordinate(self, instance: SubtxnInstance, root_ok: bool,
                    dispatched: typing.List[str]):
        node = self.node
        txn_name = instance.txn.name
        state = RootState(instance=instance)
        state.reports_done = Event(node.sim)
        state.votes_done = Event(node.sim)
        state.acks_done = Event(node.sim)
        state.outstanding = set(dispatched)
        state.participants = {node.node_id}
        state.any_failure = not root_ok
        self._roots[txn_name] = state

        remote_wait_start = node.sim.now
        if state.outstanding:
            yield state.reports_done

        decision_commit = not state.any_failure
        # Sorted: iteration drives message sends (and therefore latency RNG
        # draws), so set order must not leak the per-process hash seed.
        remote = sorted(state.participants - {node.node_id})
        if decision_commit and remote:
            # Prepare round: every remote participant votes.
            state.expected_voters = set(remote)
            for participant in remote:
                node.network.send(
                    node.node_id, participant, MessageKind.PREPARE, txn_name
                )
            yield state.votes_done
            decision_commit = not state.vote_no

        # Decision round.
        self._apply_decision_locally(txn_name, decision_commit)
        if remote:
            state.expected_ackers = set(remote)
            for participant in remote:
                node.network.send(
                    node.node_id, participant, MessageKind.DECISION,
                    (txn_name, decision_commit),
                )
        node.history.waited(
            txn_name, WaitReason.REMOTE, node.sim.now - remote_wait_start
        )
        if decision_commit:
            self.commits += 1
            node.history.locally_committed(txn_name, node.sim.now)
        else:
            node.history.aborted(txn_name, node.sim.now, self.abort_reason)
        if remote:
            yield state.acks_done
        node.history.globally_completed(txn_name, node.sim.now)
        del self._roots[txn_name]
        self.on_finished(instance, decision_commit)

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------

    def _on_vote(self, message: Message) -> None:
        tag = message.payload[0]
        if tag == self._EXEC_REPORT:
            _tag, txn_name, sid, participant, ok, dispatched = message.payload
            state = self._roots.get(txn_name)
            if state is None:
                raise ProtocolError(f"exec report for unknown root {txn_name!r}")
            state.outstanding.discard(sid)
            state.outstanding.update(dispatched)
            state.participants.add(participant)
            if not ok:
                state.any_failure = True
            if not state.outstanding and not state.reports_done.triggered:
                state.reports_done.succeed()
        elif tag == self._PREPARE_VOTE:
            _tag, txn_name, participant, vote_yes = message.payload
            state = self._roots.get(txn_name)
            if state is None:
                raise ProtocolError(f"vote for unknown root {txn_name!r}")
            state.votes.add(participant)
            if not vote_yes:
                state.vote_no = True
            if state.votes >= state.expected_voters and not (
                state.votes_done.triggered
            ):
                state.votes_done.succeed()
        else:
            raise ProtocolError(f"unknown vote tag {tag!r}")

    def _on_prepare(self, message: Message) -> None:
        txn_name = message.payload
        state = self._participants.get(txn_name)
        vote_yes = state is not None and not state.failed
        self.node.network.send(
            self.node.node_id, message.src, MessageKind.VOTE,
            (self._PREPARE_VOTE, txn_name, self.node.node_id, vote_yes),
        )

    def _on_decision(self, message: Message) -> None:
        txn_name, commit = message.payload
        self._apply_decision_locally(txn_name, commit)
        self.node.network.send(
            self.node.node_id, message.src, MessageKind.DECISION_ACK,
            (txn_name, self.node.node_id),
        )

    def _on_decision_ack(self, message: Message) -> None:
        txn_name, participant = message.payload
        state = self._roots.get(txn_name)
        if state is None:
            raise ProtocolError(f"decision ack for unknown root {txn_name!r}")
        state.acks.add(participant)
        if state.acks >= state.expected_ackers and not state.acks_done.triggered:
            state.acks_done.succeed()

    def _apply_decision_locally(self, txn_name: str, commit: bool) -> None:
        """Commit or roll back this node's part, release locks, and run the
        per-participant accounting atomically with the decision."""
        node = self.node
        state = self._participants.pop(txn_name, None)
        if state is None:
            return
        if not commit:
            for entry in reversed(state.undo_log):
                node.store.apply_exact(entry.key, entry.version, entry.undo)
                self.record_undo_event(txn_name, entry)
        self.after_decision(state)
        node.locks.release_all(txn_name)
        node.locks.cancel_waits(txn_name)
