"""Per-node tunables shared by every protocol."""

from __future__ import annotations

import dataclasses
import typing

from repro.sim.distributions import Constant, Distribution
from repro.storage.mvstore import MVStore


@dataclasses.dataclass
class NodeConfig:
    """Tunables shared by every node in a system.

    Attributes:
        op_service: Distribution of local service time per operation.
        executor_capacity: Multiprogramming level of the local executor
            (1 = fully serial local execution).
        enable_locking: Whether well-behaved transactions take commuting
            locks (needed only when non-commuting transactions are present;
            pure 3V systems leave this off and take no locks at all).
        completion: When the completion counter is incremented.
            ``"hierarchical"`` (default) increments a subtransaction's
            counter only after all its descendants complete — the timing
            the paper's Table 1 shows, which keeps quiescence detection
            conservative.  ``"immediate"`` increments it right after the
            subtransaction dispatches its children and commits — the
            literal Section 4.1 step 6, under which only the two-wave
            counter read is sound (the C7 ablation exploits this).
        store_factory: Constructor for the per-node versioned store —
            :class:`~repro.storage.mvstore.MVStore` (default) or the
            fixed three-slot :class:`~repro.storage.slotstore.SlotStore`
            that reuses version numbers as the paper suggests.
        dual_write: Section 4.1 step 4's "update all versions of x greater
            or equal to version V(T)".  ``False`` is an ABLATION that
            updates only ``x(V(T))``, reintroducing the straggler
            inconsistency the rule exists to fix (a version-``v``
            subtransaction landing on a node that already created the
            ``v+1`` copy leaves that copy permanently short).
        initial_update_version: ``vu`` at startup (the paper starts at 1).
        initial_read_version: ``vr`` at startup (the paper starts at 0).
    """

    op_service: Distribution = dataclasses.field(
        default_factory=lambda: Constant(0.001)
    )
    executor_capacity: int = 1
    enable_locking: bool = False
    completion: str = "hierarchical"
    store_factory: typing.Callable[[], MVStore] = MVStore
    dual_write: bool = True
    initial_update_version: int = 1
    initial_read_version: int = 0
