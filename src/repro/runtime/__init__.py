"""The protocol-agnostic node runtime (mechanism/policy split).

Every system in this repository — the paper's 3V/NC3V protocols and the
Section-1 baselines alike — is one :class:`System` running one
:class:`ProtocolNode` per database node, specialised by a
:class:`ProtocolPlugin`.  The runtime owns the *mechanism* every protocol
shares:

* the per-node mailbox loop and message dispatch table;
* the local executor (:class:`~repro.sim.resources.Resource`);
* :class:`~repro.txn.runtime.CompletionTracker` wiring and hierarchical
  completion notices;
* compensation routing along transaction-tree edges (including the
  tombstone rule for compensation that overtakes its target).

Plugins supply the *policy*: version assignment on root arrival,
admission gates, counter accounting, pre/post-execution hooks, and
protocol-specific control-message handlers.  :mod:`repro.runtime.twophase`
adds the shared two-phase-commit participant/coordinator machinery used by
both NC3V and the 2PC baseline.

Layering rule (enforced by ``tools/check_layering.py``): nothing in this
package imports any plugin module (``repro.core``, ``repro.baselines``);
plugins import the runtime, never each other.  The available protocols are
published through :data:`PROTOCOLS`, which lazily imports the aggregator
module :mod:`repro.protocols` on first use.
"""

from repro.runtime.config import NodeConfig
from repro.runtime.node import ProtocolNode
from repro.runtime.plugin import ProtocolPlugin
from repro.runtime.registry import PROTOCOLS, ProtocolEntry, ProtocolRegistry
from repro.runtime.system import System
from repro.runtime.twophase import (
    ParticipantState,
    RootState,
    TwoPhaseEngine,
    UndoEntry,
)

__all__ = [
    "NodeConfig",
    "PROTOCOLS",
    "ParticipantState",
    "ProtocolEntry",
    "ProtocolNode",
    "ProtocolPlugin",
    "ProtocolRegistry",
    "RootState",
    "System",
    "TwoPhaseEngine",
    "UndoEntry",
]
