"""Aggregator that registers every built-in protocol.

Importing this module populates :data:`repro.runtime.PROTOCOLS`; the
registry imports it lazily (by name) on first lookup, so the runtime
package itself never depends on any protocol package.  Third-party
protocols register themselves the same way these do::

    from repro.runtime import PROTOCOLS

    PROTOCOLS.register("mine", build_my_system, order=50,
                       description="...")
"""

from __future__ import annotations

import repro.baselines.manual  # noqa: F401  (registers manual, manual-sync)
import repro.baselines.nocoord  # noqa: F401  (registers nocoord)
import repro.baselines.twopc  # noqa: F401  (registers 2pc)
import repro.core.system  # noqa: F401  (registers 3v)
