"""Command-line interface: ``python -m repro <command>``.

Five commands cover the common workflows without writing any code:

* ``run``      — one experiment on one protocol, with metrics and audit;
* ``compare``  — the same workload across several protocols, side by side;
* ``sweep``    — vary any experiment parameter on one protocol;
* ``grid``     — multi-parameter × multi-seed grids with per-cell
  aggregation;
* ``chaos``    — seeded fault storms (message loss, duplication, node
  crashes) across protocols, with convergence and agreement checks;
* ``paper``    — replay the paper's Table 1 / Figure 2 example.

``compare``, ``sweep``, and ``grid`` run their independent simulations
through a :class:`repro.exp.Fleet`: ``--jobs N`` fans tasks out over N
worker processes (output stays bit-identical to a serial run), ``--reps``
replicates every configuration over consecutive seeds, and a
content-addressed cache under ``.repro-cache/`` makes repeated
invocations near-free (``--no-cache`` / ``--refresh`` to opt out).

Every command prints plain-text tables (see
:class:`repro.analysis.report.Table`) and exits non-zero if a consistency
audit fails, so the CLI doubles as a smoke-test harness.
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.analysis import Table
from repro.errors import ReproError
from repro.exp import (
    DEFAULT_CACHE_DIR,
    CellAggregate,
    ExperimentSpec,
    Fleet,
    FleetTaskError,
    GridAxis,
    PARAMETERS,
    PARAMETERS_BY_FLAG,
    ResultCache,
    audit_result,
    expand_grid,
    flatten_specs,
    parse_parameter_value,
    summarize,
)
from repro.workloads import PROTOCOLS, run_recording_experiment

#: Protocols whose audits must be clean for the CLI to exit 0
#: (derived from the registry's ``strict_audit`` flags).
_STRICT_PROTOCOLS = PROTOCOLS.strict()

_METRIC_COLUMNS = [
    "upd/s", "upd p95", "read p95", "fractured", "aborted",
    "max remote wait",
]


def _experiment_arguments(parser: argparse.ArgumentParser) -> None:
    """Experiment parameters, generated from the shared registry."""
    for parameter in PARAMETERS:
        parser.add_argument(
            f"--{parameter.flag}", type=parameter.type,
            default=parameter.default,
            help=f"{parameter.help} (default {parameter.default!r})",
        )


def _fleet_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1 = serial)")
    parser.add_argument("--reps", type=int, default=1,
                        help="replicates per configuration, on "
                             "consecutive seeds (default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache entirely")
    parser.add_argument("--refresh", action="store_true",
                        help="ignore cached results (but store fresh ones)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help=f"result cache directory "
                             f"(default {DEFAULT_CACHE_DIR})")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="per-task wall-clock budget in seconds "
                             "(parallel backend only)")


def _make_fleet(args) -> Fleet:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return Fleet(jobs=args.jobs, cache=cache, refresh=args.refresh,
                 timeout=args.task_timeout)


def _fleet_note(fleet: Fleet) -> str:
    stats = fleet.stats
    return (f"fleet: {stats.executed} run, {stats.cached} cached "
            f"({fleet.backend}, jobs={fleet.jobs})")


def _aggregate_cells(fleet: Fleet, cells) -> typing.List[CellAggregate]:
    """Run every cell's specs and aggregate per cell, order preserved."""
    summaries = fleet.run(flatten_specs(cells))
    aggregates = []
    offset = 0
    for cell in cells:
        chunk = summaries[offset:offset + len(cell.specs)]
        offset += len(cell.specs)
        aggregates.append(CellAggregate.of(chunk))
    return aggregates


def _metric_cells(aggregate: CellAggregate) -> list:
    return [
        aggregate.update_throughput,
        aggregate.update_p95,
        aggregate.read_p95,
        aggregate.fractured_reads,
        aggregate.aborted,
        aggregate.max_remote_wait,
    ]


def cmd_run(args) -> int:
    spec = ExperimentSpec.from_args(args)
    result = run_recording_experiment(
        spec.protocol, trace_path=args.trace, **spec.run_kwargs()
    )
    report = audit_result(
        result,
        check_snapshots=(spec.protocol == "3v"
                         and spec.amount_mode == "bitmask"),
    )
    summary = summarize(spec, result, report)
    mode = " [streaming]" if result.history.streaming else ""
    table = Table(f"{spec.protocol}: {spec.duration:g}s on "
                  f"{spec.nodes} nodes{mode}",
                  ["system"] + _METRIC_COLUMNS)
    table.add(spec.protocol, *_metric_cells(CellAggregate.of([summary])))
    table.print()
    print(f"read staleness: mean={summary.staleness_mean:.2f} "
          f"max={summary.staleness_max:.2f}")
    if args.trace:
        print(f"trace written to {args.trace}")
    if not report.clean:
        print(f"AUDIT FAILED: {len(report.violations)} violations, e.g. "
              f"{report.violations[0]}")
        return 1
    print("audit: clean")
    return 0


def cmd_compare(args) -> int:
    unknown = [p for p in args.protocols if p not in PROTOCOLS]
    if unknown:
        print(f"unknown protocol(s): {', '.join(unknown)}; "
              f"choose from {', '.join(PROTOCOLS)}")
        return 2
    base = ExperimentSpec.from_args(args, protocol=args.protocols[0])
    cells = expand_grid(
        base, [GridAxis("system", "protocol", tuple(args.protocols))],
        reps=args.reps,
    )
    reps_note = f", {args.reps} reps" if args.reps > 1 else ""
    table = Table(
        f"Protocol comparison: {base.duration:g}s on {base.nodes} nodes "
        f"(seed {base.seed}{reps_note})",
        ["system"] + _METRIC_COLUMNS,
    )
    fleet = _make_fleet(args)
    aggregates = _aggregate_cells(fleet, cells)
    failed = False
    for cell, aggregate in zip(cells, aggregates):
        protocol = cell.values[0]
        table.add(protocol, *_metric_cells(aggregate))
        if protocol in _STRICT_PROTOCOLS and not aggregate.audit_clean:
            failed = True
    table.print()
    print(_fleet_note(fleet), file=sys.stderr)
    return 1 if failed else 0


def cmd_sweep(args) -> int:
    parameter = PARAMETERS_BY_FLAG[args.parameter]
    try:
        values = tuple(
            parse_parameter_value(args.parameter, text)
            for text in args.values
        )
    except ReproError as error:
        print(error)
        return 2
    base = ExperimentSpec.from_args(args)
    cells = expand_grid(
        base, [GridAxis(parameter.flag, parameter.field, values)],
        reps=args.reps,
    )
    reps_note = f" ({args.reps} reps)" if args.reps > 1 else ""
    table = Table(
        f"Sweep of {args.parameter} on {args.protocol}{reps_note}",
        [args.parameter] + _METRIC_COLUMNS,
    )
    fleet = _make_fleet(args)
    aggregates = _aggregate_cells(fleet, cells)
    for cell, aggregate in zip(cells, aggregates):
        table.add(cell.values[0], *_metric_cells(aggregate))
    table.print()
    print(_fleet_note(fleet), file=sys.stderr)
    return 0


def _parse_vary(text: str) -> GridAxis:
    """``"nodes=2,4,8"`` -> a typed :class:`GridAxis`."""
    flag, _, csv = text.partition("=")
    if not csv:
        raise ReproError(
            f"--vary takes param=v1,v2,... (got {text!r})"
        )
    parameter = PARAMETERS_BY_FLAG.get(flag)
    if parameter is None:
        raise ReproError(
            f"unknown parameter {flag!r}; choose from "
            f"{', '.join(sorted(PARAMETERS_BY_FLAG))}"
        )
    values = tuple(
        parse_parameter_value(flag, item) for item in csv.split(",")
    )
    return GridAxis(parameter.flag, parameter.field, values)


def cmd_grid(args) -> int:
    unknown = [p for p in args.protocols if p not in PROTOCOLS]
    if unknown:
        print(f"unknown protocol(s): {', '.join(unknown)}; "
              f"choose from {', '.join(PROTOCOLS)}")
        return 2
    try:
        axes = [GridAxis("system", "protocol", tuple(args.protocols))]
        axes.extend(_parse_vary(text) for text in args.vary or [])
    except ReproError as error:
        print(error)
        return 2
    base = ExperimentSpec.from_args(args, protocol=args.protocols[0])
    cells = expand_grid(base, axes, reps=args.reps)
    table = Table(
        f"Grid: {len(cells)} cells x {args.reps} reps "
        f"({base.duration:g}s, base seed {base.seed})",
        [axis.flag for axis in axes] + ["reps"] + _METRIC_COLUMNS,
    )
    fleet = _make_fleet(args)
    aggregates = _aggregate_cells(fleet, cells)
    failed = False
    for cell, aggregate in zip(cells, aggregates):
        table.add(*cell.values, aggregate.reps, *_metric_cells(aggregate))
        if cell.values[0] in _STRICT_PROTOCOLS and not aggregate.audit_clean:
            failed = True
    table.print()
    print(_fleet_note(fleet), file=sys.stderr)
    return 1 if failed else 0


def cmd_chaos(args) -> int:
    from repro.exp import chaos_spec, run_chaos_spec

    unknown = [p for p in args.protocols if p not in PROTOCOLS]
    if unknown:
        print(f"unknown protocol(s): {', '.join(unknown)}; "
              f"choose from {', '.join(PROTOCOLS)}")
        return 2
    protocols = args.protocols or list(PROTOCOLS)
    replicated = args.replication_factor > 1
    control_plane = args.partition_count > 0 or args.coordinator_crashes > 0
    title = (
        f"Chaos: {args.duration:g}s on {args.nodes} nodes, "
        f"drop={args.drop_rate:g} dup={args.dup_rate:g} "
        f"crashes={args.crash_count}/node (fault seed {args.fault_seed})"
    )
    if replicated:
        title += (f", rf={args.replication_factor} "
                  f"refresh={args.refresh_delay:g}s")
    if control_plane:
        title += (f", partitions={args.partition_count} "
                  f"coord-crashes={args.coordinator_crashes}")
    columns = ["system", "dropped", "dup'd", "retx", "dedup", "crash/rec"]
    if control_plane:
        columns += ["cut", "coord c/r", "fenced", "stalls"]
    if replicated:
        # "records" replaces "entities": the agreement unit is the
        # (entity, slot) record compared across its replica set.
        columns += ["records", "agree", "skipped", "refresh", "ungated"]
    else:
        columns += ["entities", "agree"]
    columns += ["oracle", "repeat", "verdict"]
    table = Table(title, columns)
    failed = []
    for protocol in protocols:
        spec = chaos_spec(
            protocol, nodes=args.nodes, duration=args.duration,
            drop_rate=args.drop_rate, dup_rate=args.dup_rate,
            crash_count=args.crash_count, fault_seed=args.fault_seed,
            seed=args.seed, replication_factor=args.replication_factor,
            refresh_delay=args.refresh_delay,
            partition_count=args.partition_count,
            coordinator_crashes=args.coordinator_crashes,
            stall_budget=args.stall_budget,
        )
        report = run_chaos_spec(spec, verify_repeat=not args.no_repeat,
                                drain_limit=args.drain_limit)
        s = report.summary
        if report.repeat_identical is None:
            repeat = "-"
        else:
            repeat = "yes" if report.repeat_identical else "NO"
        cells = [
            protocol,
            s.messages_dropped if s else "-",
            s.messages_duplicated if s else "-",
            s.retransmits if s else "-",
            s.dup_suppressed if s else "-",
            f"{s.crashes}/{s.recoveries}" if s else "-",
        ]
        if control_plane:
            cells += [
                s.partitions_cut if s else "-",
                (f"{s.coordinator_crashes}/{s.coordinator_recoveries}"
                 if s else "-"),
                s.stale_epochs_fenced if s else "-",
                s.stall_count if s else "-",
            ]
        cells += [
            report.entities_checked,
            report.entities_checked - report.disagreements,
        ]
        if replicated:
            cells += [
                s.writes_skipped if s else "-",
                (f"{s.refreshes_completed}+{s.self_refreshes}"
                 if s else "-"),
                s.unreadable_reads_served if s else "-",
            ]
        cells += [
            "ok" if report.oracle_mismatches == 0 else
            f"{report.oracle_mismatches} BAD",
            repeat,
            "ok" if report.ok else "FAILED",
        ]
        table.add(*cells)
        if not report.ok:
            failed.append(report)
    table.print()
    for report in failed:
        for failure in report.failures:
            print(f"{report.protocol}: {failure}")
    if failed:
        return 1
    print("chaos: all protocols converged, stores agree, audits clean")
    return 0


def cmd_paper(args) -> int:
    from repro.workloads.paper_example import expected_final_state, run_example

    run = run_example()
    system = run.system
    print("Replaying the paper's Table 1 example (sites p, q, s) ...")
    for event in system.history.write_events:
        dual = " [dual write]" if event.versions_written > 1 else ""
        print(f"  t={event.time:6.2f}  {event.subtxn:4s} @ {event.node}: "
              f"{event.key} version {event.version}{dual}")
    final = {}
    for node in system.nodes.values():
        final.update(node.store.snapshot())
    ok = final == expected_final_state()
    print(f"final state matches Figure 2: {'yes' if ok else 'NO'}")
    print(f"vr={system.read_version} vu={system.update_version}")
    return 0 if ok else 1


def _version_string() -> str:
    """``repro X.Y.Z (build: ...)`` — reports which kernel build runs."""
    import repro

    mode = repro.build_mode()
    if mode == "accel":
        modules = ", ".join(
            name.rsplit(".", 1)[-1] for name in repro.accelerated_modules()
        )
        build = f"accel/{repro.accel_backend()}: {modules}"
    else:
        build = "pure"
    return f"repro {repro.__version__} (build: {build})"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Scalable Versioning in Distributed Databases "
            "with Commuting Updates' (ICDE 1997)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=_version_string(),
        help="print version, kernel build mode, and accelerated modules",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run one experiment on one protocol"
    )
    run_parser.add_argument("protocol", choices=PROTOCOLS)
    _experiment_arguments(run_parser)
    run_parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write the per-transaction trace to PATH as JSON lines "
             "(with --stream 1 it spills incrementally at retirement)",
    )
    run_parser.add_argument(
        "--amount-mode", choices=("bitmask", "money"), default="bitmask",
        help="update payloads: 'bitmask' enables the exact snapshot "
             "oracle but grows hot-key values one bit per update, so "
             "million-transaction volume runs should use 'money' "
             "(default bitmask)",
    )
    run_parser.set_defaults(handler=cmd_run)

    compare_parser = commands.add_parser(
        "compare", help="run the same workload on several protocols"
    )
    compare_parser.add_argument(
        "protocols", nargs="*",
        default=["3v", "nocoord", "manual", "2pc"],
        metavar="protocol",
        help=f"protocols to compare (default: 3v nocoord manual 2pc; "
             f"choices: {', '.join(PROTOCOLS)})",
    )
    _experiment_arguments(compare_parser)
    _fleet_arguments(compare_parser)
    compare_parser.set_defaults(handler=cmd_compare)

    sweep_parser = commands.add_parser(
        "sweep", help="sweep any experiment parameter on one protocol"
    )
    sweep_parser.add_argument("protocol", choices=PROTOCOLS)
    sweep_parser.add_argument(
        "parameter", choices=[p.flag for p in PARAMETERS],
        help="which parameter to sweep",
    )
    sweep_parser.add_argument(
        "values", nargs="+",
        help="values to sweep (typed per parameter: ints stay ints)",
    )
    _experiment_arguments(sweep_parser)
    _fleet_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=cmd_sweep)

    grid_parser = commands.add_parser(
        "grid", help="multi-parameter x multi-seed grid with per-cell "
                     "aggregation",
    )
    grid_parser.add_argument(
        "protocols", nargs="*", default=["3v"], metavar="protocol",
        help=f"protocols forming the first grid axis (default: 3v; "
             f"choices: {', '.join(PROTOCOLS)})",
    )
    grid_parser.add_argument(
        "--vary", action="append", metavar="PARAM=V1,V2,...",
        help="add a grid axis, e.g. --vary nodes=2,4,8 "
             "(repeatable; any sweep parameter)",
    )
    _experiment_arguments(grid_parser)
    _fleet_arguments(grid_parser)
    grid_parser.set_defaults(handler=cmd_grid)

    chaos_parser = commands.add_parser(
        "chaos", help="run seeded fault storms across protocols and check "
                      "convergence, store agreement, and repeatability",
    )
    chaos_parser.add_argument(
        "protocols", nargs="*", default=[], metavar="protocol",
        help=f"protocols to storm (default: all; "
             f"choices: {', '.join(PROTOCOLS)})",
    )
    chaos_parser.add_argument("--nodes", type=int, default=3,
                              help="number of database nodes (default 3)")
    chaos_parser.add_argument("--duration", type=float, default=20.0,
                              help="simulated seconds of traffic "
                                   "(default 20)")
    chaos_parser.add_argument("--drop-rate", type=float, default=0.05,
                              help="per-link drop probability "
                                   "(default 0.05)")
    chaos_parser.add_argument("--dup-rate", type=float, default=0.02,
                              help="per-link duplication probability "
                                   "(default 0.02)")
    chaos_parser.add_argument("--crash-count", type=int, default=1,
                              help="crash/recover cycles per node "
                                   "(default 1)")
    chaos_parser.add_argument(
        "--replication-factor", type=int, default=1,
        help="replicas per record: read-one / write-all-available with "
             "recovery-readability (default 1 = unreplicated)")
    chaos_parser.add_argument(
        "--refresh-delay", type=float, default=2.0,
        help="delay between a replica's recovery and its refresh request "
             "(default 2.0; it serves no reads until refresh completes)")
    chaos_parser.add_argument(
        "--partition-count", type=int, default=0,
        help="timed network partitions (with heals) per storm "
             "(default: %(default)s)")
    chaos_parser.add_argument(
        "--coordinator-crashes", type=int, default=0,
        help="mid-wave advancement-coordinator crashes to inject on "
             "protocols that have a coordinator (default: %(default)s)")
    chaos_parser.add_argument(
        "--stall-budget", type=float, default=0.0,
        help="advancement liveness budget in sim seconds; 0 = twice the "
             "advancement period (default: %(default)s)")
    chaos_parser.add_argument("--fault-seed", type=int, default=7,
                              help="fault schedule seed (default 7)")
    chaos_parser.add_argument("--seed", type=int, default=0,
                              help="workload seed (default 0)")
    chaos_parser.add_argument("--no-repeat", action="store_true",
                              help="skip the repeatability double-run")
    chaos_parser.add_argument("--drain-limit", type=float, default=100000.0,
                              help="simulated-time budget for post-storm "
                                   "convergence (default 100000)")
    chaos_parser.set_defaults(handler=cmd_chaos)

    paper_parser = commands.add_parser(
        "paper", help="replay the paper's Table 1 / Figure 2 example"
    )
    paper_parser.set_defaults(handler=cmd_paper)
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FleetTaskError as error:
        print(f"fleet task #{error.index} failed; worker traceback:")
        print(error.traceback_text)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
