"""Command-line interface: ``python -m repro <command>``.

Four commands cover the common workflows without writing any code:

* ``run``      — one experiment on one protocol, with metrics and audit;
* ``compare``  — the same workload across several protocols, side by side;
* ``sweep``    — vary one parameter (nodes, advancement period, or
  correction rate) on one protocol;
* ``paper``    — replay the paper's Table 1 / Figure 2 example.

Every command prints plain-text tables (see
:class:`repro.analysis.report.Table`) and exits non-zero if a consistency
audit fails, so the CLI doubles as a smoke-test harness.
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.analysis import (
    Table,
    audit,
    latency_summary,
    max_remote_wait,
    staleness_summary,
    throughput,
)
from repro.workloads import PROTOCOLS, run_recording_experiment


def _experiment_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=4,
                        help="number of database nodes (default 4)")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="simulated seconds of traffic (default 30)")
    parser.add_argument("--update-rate", type=float, default=5.0,
                        help="recording transactions per second")
    parser.add_argument("--inquiry-rate", type=float, default=3.0,
                        help="inquiry transactions per second")
    parser.add_argument("--audit-rate", type=float, default=0.2,
                        help="audit transactions per second")
    parser.add_argument("--correction-rate", type=float, default=0.0,
                        help="non-commuting corrections per second (NC3V)")
    parser.add_argument("--entities", type=int, default=50,
                        help="number of entities (patients/accounts/SKUs)")
    parser.add_argument("--span", type=int, default=2,
                        help="nodes each entity's records span")
    parser.add_argument("--seed", type=int, default=0,
                        help="master random seed")
    parser.add_argument("--period", type=float, default=10.0,
                        help="advancement/switch period in simulated seconds")
    parser.add_argument("--safety-delay", type=float, default=5.0,
                        help="manual versioning's read-switch delay")
    parser.add_argument("--abort-fraction", type=float, default=0.0,
                        help="fraction of recordings that abort (compensation)")


def _run_one(protocol: str, args) -> typing.Tuple[typing.Any, typing.Any]:
    result = run_recording_experiment(
        protocol,
        nodes=args.nodes,
        duration=args.duration,
        update_rate=args.update_rate,
        inquiry_rate=args.inquiry_rate,
        audit_rate=args.audit_rate,
        correction_rate=args.correction_rate,
        entities=args.entities,
        span=args.span,
        seed=args.seed,
        advancement_period=args.period,
        safety_delay=args.safety_delay,
        amount_mode="bitmask",
        abort_fraction=args.abort_fraction,
    )
    report = audit(
        result.history, result.workload,
        check_snapshots=(protocol == "3v"),
    )
    return result, report


def _metrics_row(protocol: str, result, report) -> list:
    history = result.history
    updates = latency_summary(history, kind="update")
    reads = latency_summary(history, kind="read", which="global")
    return [
        protocol,
        throughput(history, result.duration, kind="update"),
        updates.p95,
        reads.p95,
        report.fractured_reads,
        len(history.aborted_txns()),
        max_remote_wait(history),
    ]


_METRIC_COLUMNS = [
    "system", "upd/s", "upd p95", "read p95", "fractured", "aborted",
    "max remote wait",
]


def cmd_run(args) -> int:
    result, report = _run_one(args.protocol, args)
    table = Table(f"{args.protocol}: {args.duration:g}s on {args.nodes} nodes",
                  _METRIC_COLUMNS)
    table.add(*_metrics_row(args.protocol, result, report))
    table.print()
    staleness = staleness_summary(result.history)
    print(f"read staleness: mean={staleness.mean:.2f} max={staleness.max:.2f}")
    if not report.clean:
        print(f"AUDIT FAILED: {len(report.violations)} violations, e.g. "
              f"{report.violations[0]}")
        return 1
    print("audit: clean")
    return 0


def cmd_compare(args) -> int:
    unknown = [p for p in args.protocols if p not in PROTOCOLS]
    if unknown:
        print(f"unknown protocol(s): {', '.join(unknown)}; "
              f"choose from {', '.join(PROTOCOLS)}")
        return 2
    table = Table(
        f"Protocol comparison: {args.duration:g}s on {args.nodes} nodes "
        f"(seed {args.seed})",
        _METRIC_COLUMNS,
    )
    failed = False
    for protocol in args.protocols:
        result, report = _run_one(protocol, args)
        table.add(*_metrics_row(protocol, result, report))
        if protocol in ("3v", "2pc") and not report.clean:
            failed = True
    table.print()
    return 1 if failed else 0


def cmd_sweep(args) -> int:
    table = Table(
        f"Sweep of {args.parameter} on {args.protocol}",
        [args.parameter] + _METRIC_COLUMNS,
    )
    for value in args.values:
        if args.parameter == "nodes":
            args.nodes = int(value)
        elif args.parameter == "period":
            args.period = value
        elif args.parameter == "correction-rate":
            args.correction_rate = value
        result, report = _run_one(args.protocol, args)
        table.add(value, *_metrics_row(args.protocol, result, report))
    table.print()
    return 0


def cmd_paper(args) -> int:
    from repro.workloads.paper_example import expected_final_state, run_example

    run = run_example()
    system = run.system
    print("Replaying the paper's Table 1 example (sites p, q, s) ...")
    for event in system.history.write_events:
        dual = " [dual write]" if event.versions_written > 1 else ""
        print(f"  t={event.time:6.2f}  {event.subtxn:4s} @ {event.node}: "
              f"{event.key} version {event.version}{dual}")
    final = {}
    for node in system.nodes.values():
        final.update(node.store.snapshot())
    ok = final == expected_final_state()
    print(f"final state matches Figure 2: {'yes' if ok else 'NO'}")
    print(f"vr={system.read_version} vu={system.update_version}")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Scalable Versioning in Distributed Databases "
            "with Commuting Updates' (ICDE 1997)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run one experiment on one protocol"
    )
    run_parser.add_argument("protocol", choices=PROTOCOLS)
    _experiment_arguments(run_parser)
    run_parser.set_defaults(handler=cmd_run)

    compare_parser = commands.add_parser(
        "compare", help="run the same workload on several protocols"
    )
    compare_parser.add_argument(
        "protocols", nargs="*",
        default=["3v", "nocoord", "manual", "2pc"],
        metavar="protocol",
        help=f"protocols to compare (default: 3v nocoord manual 2pc; "
             f"choices: {', '.join(PROTOCOLS)})",
    )
    _experiment_arguments(compare_parser)
    compare_parser.set_defaults(handler=cmd_compare)

    sweep_parser = commands.add_parser(
        "sweep", help="sweep one parameter on one protocol"
    )
    sweep_parser.add_argument("protocol", choices=PROTOCOLS)
    sweep_parser.add_argument(
        "parameter", choices=["nodes", "period", "correction-rate"]
    )
    sweep_parser.add_argument("values", nargs="+", type=float)
    _experiment_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=cmd_sweep)

    paper_parser = commands.add_parser(
        "paper", help="replay the paper's Table 1 / Figure 2 example"
    )
    paper_parser.set_defaults(handler=cmd_paper)
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
