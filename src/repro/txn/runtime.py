"""Runtime envelopes for in-flight subtransactions.

The static :class:`~repro.txn.spec.TransactionSpec` tree is *executed* as a
set of :class:`SubtxnInstance` envelopes flowing between nodes.  This module
also builds the per-transaction index used for completion tracking and for
routing compensating subtransactions along tree edges (Section 3.2: a
compensating subtransaction travels to the parent and children of the
aborted subtransaction, each recipient rolls back its part and forwards to
its other neighbours, so every subtransaction is compensated exactly once).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import InvalidTransactionSpec
from repro.txn.spec import SubtxnSpec, TransactionSpec, subtxn_id


class TxnIndex:
    """Navigation index over a transaction tree.

    Maps each subtransaction id to its spec, parent id, and child ids —
    everything needed to dispatch children, track completion, and route
    compensation.
    """

    def __init__(self, spec: TransactionSpec):
        self.spec = spec
        self.root_id = spec.name
        self.by_id: typing.Dict[str, SubtxnSpec] = {}
        self.parent: typing.Dict[str, typing.Optional[str]] = {}
        self.children: typing.Dict[str, typing.List[str]] = {}
        #: Per-submission node overrides (read-one replica routing).  The
        #: spec tree is shared and never mutated; re-pointing a read at a
        #: different replica is recorded here instead.  ``None`` (the
        #: common case) keeps :meth:`node_of` a plain dict lookup.
        self._overrides: typing.Optional[typing.Dict[str, str]] = None
        self._build(spec.root, self.root_id, None)

    def _build(self, node: SubtxnSpec, node_id: str,
               parent_id: typing.Optional[str]) -> None:
        if node_id in self.by_id:
            raise InvalidTransactionSpec(
                f"{self.spec.name}: duplicate subtransaction id {node_id!r} "
                "(give colliding children distinct labels)"
            )
        self.by_id[node_id] = node
        self.parent[node_id] = parent_id
        self.children[node_id] = []
        for index, child in enumerate(node.children):
            child_id = subtxn_id(node_id, child, index)
            self.children[node_id].append(child_id)
            self._build(child, child_id, node_id)

    def node_of(self, sid: str) -> str:
        """Database node a subtransaction runs on (override-aware)."""
        if self._overrides is not None:
            override = self._overrides.get(sid)
            if override is not None:
                return override
        return self.by_id[sid].node

    def set_overrides(self, overrides: typing.Dict[str, str]) -> None:
        """Install per-subtransaction node overrides for this submission."""
        self._overrides = dict(overrides)

    def neighbours(self, sid: str) -> typing.List[str]:
        """Parent and children ids (the compensation routing fan-out)."""
        result = list(self.children[sid])
        parent = self.parent[sid]
        if parent is not None:
            result.append(parent)
        return result


@dataclasses.dataclass
class SubtxnInstance:
    """An in-flight subtransaction request.

    Attributes:
        txn: The full transaction spec (shared reference; never mutated).
        index: Navigation index for the transaction tree.
        sid: Id of the subtransaction to execute (root id == txn name).
        version: The transaction version number ``V(T)`` assigned at the
            root and carried by every descendant (Section 4.1).
        source_node: Node that sent this request — the ``source(T)`` whose
            completion counter row is incremented on termination.
        compensating: ``True`` for a compensating subtransaction, which
            applies the *inverses* of the target subtransaction's writes.
        comp_skip: For compensators: the neighbour subtransaction id the
            compensation came from (not forwarded back to).
        notify_key: Instance key of the spawning instance — where the
            completion notice for this instance's subtree is sent
            (``None`` for the root, which has nobody to notify).
    """

    txn: TransactionSpec
    index: TxnIndex
    sid: str
    version: typing.Optional[int]
    source_node: str
    compensating: bool = False
    comp_skip: typing.Optional[str] = None
    notify_key: typing.Optional[typing.Tuple[str, str, bool]] = None

    @property
    def spec(self) -> SubtxnSpec:
        return self.index.by_id[self.sid]

    @property
    def is_root(self) -> bool:
        return not self.compensating and self.sid == self.index.root_id

    @property
    def instance_key(self) -> typing.Tuple[str, str, bool]:
        """Unique id of this instance within the simulation."""
        return (self.txn.name, self.sid, self.compensating)

    def child_instance(self, child_sid: str, own_node: str) -> "SubtxnInstance":
        """Envelope for dispatching one child subtransaction."""
        return SubtxnInstance(
            txn=self.txn,
            index=self.index,
            sid=child_sid,
            version=self.version,
            source_node=own_node,
        )

    def compensator(self, target_sid: str, own_node: str) -> "SubtxnInstance":
        """Envelope for a compensating subtransaction aimed at ``target_sid``,
        recording that it came from this instance's subtransaction."""
        return SubtxnInstance(
            txn=self.txn,
            index=self.index,
            sid=target_sid,
            version=self.version,
            source_node=own_node,
            compensating=True,
            comp_skip=self.sid,
        )


@dataclasses.dataclass(frozen=True)
class CompletionNotice:
    """Child -> parent notification that a whole subtree has completed.

    Hierarchical completion matches the paper's Table 1: a subtransaction's
    completion counter is incremented only once all its descendants have
    completed, and the notice then flows to its own parent.
    """

    txn_name: str
    parent_key: typing.Tuple[str, str, bool]
    child_key: typing.Tuple[str, str, bool]


@dataclasses.dataclass
class CompletionTracker:
    """Per-subtransaction-instance bookkeeping for hierarchical completion."""

    instance: SubtxnInstance
    outstanding_children: int = 0
    executed: bool = False

    @property
    def complete(self) -> bool:
        return self.executed and self.outstanding_children == 0
