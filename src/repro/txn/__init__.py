"""Transaction model: tree specs, runtime envelopes, execution history."""

from repro.txn.history import (
    AdvancementRecord,
    History,
    ReadEvent,
    TxnKind,
    TxnRecord,
    WaitReason,
    WriteEvent,
)
from repro.txn.runtime import (
    CompletionNotice,
    CompletionTracker,
    SubtxnInstance,
    TxnIndex,
)
from repro.txn.spec import ReadOp, SubtxnSpec, TransactionSpec, WriteOp, subtxn_id

__all__ = [
    "AdvancementRecord",
    "CompletionNotice",
    "CompletionTracker",
    "History",
    "ReadEvent",
    "ReadOp",
    "SubtxnInstance",
    "SubtxnSpec",
    "TransactionSpec",
    "TxnIndex",
    "TxnKind",
    "TxnRecord",
    "WaitReason",
    "WriteEvent",
    "WriteOp",
    "subtxn_id",
]
