"""Transaction model: tree specs, runtime envelopes, execution history."""

from repro.txn.history import (
    AdvancementRecord,
    History,
    ReadEvent,
    StreamingHistory,
    TxnKind,
    TxnRecord,
    WaitReason,
    WriteEvent,
    is_committed,
)
from repro.txn.streamstats import (
    ExactSum,
    LatencySummary,
    P2Quantile,
    ReservoirSample,
    StreamingStats,
    percentile,
)
from repro.txn.runtime import (
    CompletionNotice,
    CompletionTracker,
    SubtxnInstance,
    TxnIndex,
)
from repro.txn.spec import ReadOp, SubtxnSpec, TransactionSpec, WriteOp, subtxn_id

__all__ = [
    "AdvancementRecord",
    "CompletionNotice",
    "CompletionTracker",
    "ExactSum",
    "History",
    "LatencySummary",
    "P2Quantile",
    "ReadEvent",
    "ReadOp",
    "ReservoirSample",
    "StreamingHistory",
    "StreamingStats",
    "SubtxnInstance",
    "SubtxnSpec",
    "TransactionSpec",
    "TxnIndex",
    "TxnKind",
    "TxnRecord",
    "WaitReason",
    "WriteEvent",
    "WriteOp",
    "is_committed",
    "percentile",
    "subtxn_id",
]
