"""Online distribution statistics for streaming histories.

A materialized :class:`~repro.txn.history.History` keeps every latency
value and computes exact percentiles at the end of the run; a streaming
history cannot.  This module provides the O(1)-memory machinery it folds
values into instead:

* :class:`ExactSum` — an incremental Shewchuk summation (the same
  algorithm as :func:`math.fsum`), so streaming means are exactly rounded
  and therefore *order-independent*: folding values in retirement order
  yields bit-identical means to summing them in submission order.
* :class:`P2Quantile` — the Jain & Chlamtac P² online quantile estimator
  (five markers, parabolic adjustment), used for percentiles once a
  population outgrows the reservoir.
* :class:`ReservoirSample` — Algorithm R with a seeded RNG.  While the
  population fits inside the reservoir it *is* the population, so
  small-run percentiles are exact — the differential oracle against the
  materialized path.
* :class:`StreamingStats` — one population's count / exact mean / max /
  reservoir / P² markers, summarized as a :class:`LatencySummary`.

:class:`LatencySummary` and :func:`percentile` live here (rather than in
``repro.analysis.metrics``, which re-exports them) because the streaming
history is a ``repro.txn`` citizen and the txn layer must not import the
analysis layer above it.
"""

from __future__ import annotations

import dataclasses
import math
import random
import typing
import zlib


def percentile(values: typing.Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = int(position)
    fraction = position - lower
    if lower + 1 >= len(ordered):
        return ordered[-1]
    return ordered[lower] * (1 - fraction) + ordered[lower + 1] * fraction


@dataclasses.dataclass
class LatencySummary:
    """Distribution summary of one latency population."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, values: typing.Sequence[float]) -> "LatencySummary":
        if not values:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        return cls(
            count=len(values),
            mean=math.fsum(values) / len(values),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            max=max(values),
        )


class ExactSum:
    """Incremental exactly-rounded float summation (Shewchuk partials).

    ``add`` maintains the same non-overlapping partials ``math.fsum``
    builds internally; ``value`` rounds them once.  The result depends
    only on the *multiset* of added values, never on their order — the
    property that lets a streaming history fold latencies in retirement
    order and still match a materialized history bit for bit.
    """

    __slots__ = ("_partials",)

    def __init__(self) -> None:
        self._partials: typing.List[float] = []

    def add(self, x: float) -> None:
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    @property
    def value(self) -> float:
        return math.fsum(self._partials)


class P2Quantile:
    """Jain & Chlamtac's P² online estimator of one quantile.

    Five markers track the minimum, the quantile, the maximum, and the
    two midpoints; each observation shifts marker positions and adjusts
    heights with a piecewise-parabolic (P²) formula.  O(1) memory, O(1)
    per observation, no distributional assumptions.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments",
                 "_count")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"P2 quantile must be in (0, 1): {q}")
        self.q = q
        self._heights: typing.List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q,
                         5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._count = 0

    def add(self, x: float) -> None:
        self._count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(x)
            heights.sort()
            return
        # Find the cell containing x and clamp the extreme markers.
        if x < heights[0]:
            heights[0] = x
            k = 0
        elif x >= heights[4]:
            heights[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= heights[k + 1]:
                k += 1
        positions = self._positions
        for i in range(k + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        for i in range(5):
            desired[i] += self._increments[i]
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def estimate(self) -> float:
        """Current quantile estimate (exact while fewer than 5 samples)."""
        if not self._heights:
            raise ValueError("P2 estimate of empty population")
        if self._count < 5:
            return percentile(self._heights, self.q * 100.0)
        return self._heights[2]


class ReservoirSample:
    """Algorithm R uniform reservoir over a stream, with a seeded RNG.

    While the stream is no longer than ``capacity`` the reservoir holds
    it *entirely* (in arrival order), so percentiles computed from it are
    exact.  Beyond that it is a uniform sample.  Determinism: the RNG is
    supplied by the caller (a named stream derived from the experiment
    seed), so reservoir contents are bit-identical across hosts, worker
    counts, and backends.
    """

    __slots__ = ("capacity", "_rng", "_seen", "values")

    def __init__(self, capacity: int, rng: random.Random):
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._rng = rng
        self._seen = 0
        self.values: typing.List[float] = []

    @property
    def seen(self) -> int:
        return self._seen

    @property
    def exact(self) -> bool:
        """Whether the reservoir still holds the entire stream."""
        return self._seen <= self.capacity

    def add(self, x: float) -> None:
        self._seen += 1
        if len(self.values) < self.capacity:
            self.values.append(x)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self.values[slot] = x


#: Default reservoir size: small runs (the differential-oracle regime)
#: stay exact; large runs pay 32 KiB per population.
DEFAULT_RESERVOIR = 4096


class StreamingStats:
    """Count / exact mean / max / percentiles of one streamed population.

    ``summary()`` returns exact percentiles (from the complete reservoir)
    while the population fits in ``capacity`` — bit-identical to
    :meth:`LatencySummary.of` over the materialized values — and P²
    estimates beyond that.  The mean is exactly rounded (order-independent)
    at every size; count and max are always exact.
    """

    __slots__ = ("_sum", "_count", "_max", "_reservoir", "_p2")

    QUANTILES = (0.50, 0.95, 0.99)

    def __init__(self, rng: random.Random,
                 capacity: int = DEFAULT_RESERVOIR):
        self._sum = ExactSum()
        self._count = 0
        self._max = 0.0
        self._reservoir = ReservoirSample(capacity, rng)
        self._p2 = tuple(P2Quantile(q) for q in self.QUANTILES)

    @property
    def count(self) -> int:
        return self._count

    def add(self, x: float) -> None:
        self._count += 1
        self._sum.add(x)
        if x > self._max or self._count == 1:
            self._max = x
        self._reservoir.add(x)
        for estimator in self._p2:
            estimator.add(x)

    def summary(self) -> LatencySummary:
        if self._count == 0:
            return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0,
                                  p99=0.0, max=0.0)
        if self._reservoir.exact:
            values = self._reservoir.values
            p50, p95, p99 = (percentile(values, q * 100.0)
                             for q in self.QUANTILES)
        else:
            p50, p95, p99 = (e.estimate for e in self._p2)
        return LatencySummary(
            count=self._count,
            mean=self._sum.value / self._count,
            p50=p50, p95=p95, p99=p99,
            max=self._max,
        )


def derived_rng(seed: int, name: str) -> random.Random:
    """A named RNG derived exactly like ``RngRegistry.stream``.

    Duplicating the (tiny) derivation here keeps ``repro.txn`` free of an
    import edge into ``repro.sim`` while producing the same streams for
    the same ``(seed, name)`` — callers that already hold a registry can
    pass its streams instead.
    """
    derived = (seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
    return random.Random(derived)
