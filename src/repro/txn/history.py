"""Execution history recording.

Every protocol implementation writes what it does into a :class:`History`:
per-transaction lifecycle records, optional per-operation read/write events,
wait events, and version-advancement phase timestamps.  The analysis package
(:mod:`repro.analysis`) consumes these to check serializability, detect
fractured reads, and compute latency/staleness/throughput — so the checkers
work identically across 3V and all baselines.
"""

from __future__ import annotations

import dataclasses
import typing


class TxnKind:
    """Transaction classification constants."""

    READ = "read"
    UPDATE = "update"
    NONCOMMUTING = "noncommuting"


class WaitReason:
    """Why a subtransaction was delayed (for Theorem 4.2 accounting)."""

    EXECUTOR = "executor"  # local executor queue (local concurrency control)
    LOCK = "lock"  # lock-table conflict
    REMOTE = "remote"  # waiting for a remote response (2PC, global reads)
    VERSION_GATE = "version-gate"  # NC3V's "wait until vu == vr+1"
    ADVANCEMENT = "advancement"  # blocked by a (synchronous) advancement


@dataclasses.dataclass
class TxnRecord:
    """Lifecycle of one transaction."""

    name: str
    kind: str
    version: typing.Optional[int]
    submit_time: float
    root_node: str
    #: Root subtransaction committed locally (user-perceived latency for 3V).
    local_commit_time: typing.Optional[float] = None
    #: Every subtransaction in the tree has completed.
    global_complete_time: typing.Optional[float] = None
    aborted: bool = False
    abort_reason: str = ""
    compensated: bool = False
    subtxn_count: int = 0
    #: Total delay broken down by :class:`WaitReason`.
    waits: typing.Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Values returned by read operations, in execution order.
    reads: typing.List[typing.Tuple[typing.Hashable, typing.Any]] = (
        dataclasses.field(default_factory=list)
    )

    @property
    def local_latency(self) -> typing.Optional[float]:
        if self.local_commit_time is None:
            return None
        return self.local_commit_time - self.submit_time

    @property
    def global_latency(self) -> typing.Optional[float]:
        if self.global_complete_time is None:
            return None
        return self.global_complete_time - self.submit_time

    @property
    def total_wait(self) -> float:
        return sum(self.waits.values())

    @property
    def remote_wait(self) -> float:
        """Delay caused by non-local activity — Theorem 4.2 says the 3V
        protocol keeps this at exactly zero for well-behaved transactions."""
        return (
            self.waits.get(WaitReason.REMOTE, 0.0)
            + self.waits.get(WaitReason.ADVANCEMENT, 0.0)
            + self.waits.get(WaitReason.VERSION_GATE, 0.0)
        )


@dataclasses.dataclass(frozen=True)
class ReadEvent:
    """One read operation (recorded only when ``detail`` is on)."""

    time: float
    txn: str
    subtxn: str
    node: str
    key: typing.Hashable
    version_requested: typing.Optional[int]
    version_used: typing.Optional[int]
    value: typing.Any


@dataclasses.dataclass(frozen=True)
class WriteEvent:
    """One write operation (recorded only when ``detail`` is on)."""

    time: float
    txn: str
    subtxn: str
    node: str
    key: typing.Hashable
    version: typing.Optional[int]
    versions_written: int
    operation: typing.Any
    compensating: bool = False
    #: Exact version numbers touched (a dual write lists both); defaults
    #: to just ``version`` when the writer doesn't say otherwise.
    versions: typing.Optional[typing.Tuple[int, ...]] = None

    @property
    def touched_versions(self) -> typing.Tuple[int, ...]:
        if self.versions is not None:
            return self.versions
        return (self.version,) if self.version is not None else ()


@dataclasses.dataclass
class AdvancementRecord:
    """Timestamps of one run of the version-advancement protocol."""

    new_update_version: int
    started: float
    phase1_done: typing.Optional[float] = None  # all nodes on new vu
    phase2_done: typing.Optional[float] = None  # old vu quiescent
    phase3_done: typing.Optional[float] = None  # all nodes on new vr
    gc_done: typing.Optional[float] = None
    counter_polls: int = 0

    @property
    def duration(self) -> typing.Optional[float]:
        if self.gc_done is None:
            return None
        return self.gc_done - self.started

    @property
    def read_visible_at(self) -> typing.Optional[float]:
        """When queries could first see the advanced data (end of phase 3)."""
        return self.phase3_done


class History:
    """Append-only record of everything a simulation did.

    Args:
        detail: When ``False``, per-operation read/write events are not
            stored (large benchmark runs); transaction lifecycle records and
            aggregate statistics are always kept.
    """

    def __init__(self, detail: bool = True):
        self.detail = detail
        self.txns: typing.Dict[str, TxnRecord] = {}
        self.read_events: typing.List[ReadEvent] = []
        self.write_events: typing.List[WriteEvent] = []
        self.advancements: typing.List[AdvancementRecord] = []
        #: Wait-free check support: count of wait episodes per reason.
        self.wait_episodes: typing.Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def begin_txn(self, name: str, kind: str, version: typing.Optional[int],
                  time: float, root_node: str) -> TxnRecord:
        if name in self.txns:
            raise ValueError(f"duplicate transaction name: {name!r}")
        record = TxnRecord(
            name=name, kind=kind, version=version, submit_time=time,
            root_node=root_node,
        )
        self.txns[name] = record
        return record

    def txn(self, name: str) -> TxnRecord:
        return self.txns[name]

    def locally_committed(self, name: str, time: float) -> None:
        record = self.txns[name]
        if record.local_commit_time is None:
            record.local_commit_time = time

    def globally_completed(self, name: str, time: float) -> None:
        self.txns[name].global_complete_time = time

    def aborted(self, name: str, time: float, reason: str = "") -> None:
        record = self.txns[name]
        record.aborted = True
        record.abort_reason = reason
        if record.global_complete_time is None:
            record.global_complete_time = time

    def compensated(self, name: str) -> None:
        self.txns[name].compensated = True

    def waited(self, name: str, reason: str, duration: float) -> None:
        if duration <= 0:
            return
        record = self.txns[name]
        record.waits[reason] = record.waits.get(reason, 0.0) + duration
        self.wait_episodes[reason] = self.wait_episodes.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # Operation events
    # ------------------------------------------------------------------

    def read(self, event: ReadEvent) -> None:
        record = self.txns.get(event.txn)
        if record is not None:
            record.reads.append((event.key, event.value))
        if self.detail:
            self.read_events.append(event)

    def note_read(self, txn: str, key, value) -> None:
        """Record a read's ``(key, value)`` without a :class:`ReadEvent`.

        The detail-off fast path: executors call this instead of building a
        ReadEvent that :meth:`read` would immediately discard.  Serializable
        analysis only needs the per-transaction read values, which this
        keeps.
        """
        record = self.txns.get(txn)
        if record is not None:
            record.reads.append((key, value))

    def wrote(self, event: WriteEvent) -> None:
        if self.detail:
            self.write_events.append(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def committed_txns(self, kind: typing.Optional[str] = None
                       ) -> typing.List[TxnRecord]:
        """Transactions that finished without aborting, optionally by kind."""
        return [
            record
            for record in self.txns.values()
            if not record.aborted and (kind is None or record.kind == kind)
        ]

    def aborted_txns(self) -> typing.List[TxnRecord]:
        return [record for record in self.txns.values() if record.aborted]

    def count(self, kind: typing.Optional[str] = None) -> int:
        return len(self.committed_txns(kind))
