"""Execution history recording.

Every protocol implementation writes what it does into a :class:`History`:
per-transaction lifecycle records, optional per-operation read/write events,
wait events, and version-advancement phase timestamps.  The analysis package
(:mod:`repro.analysis`) consumes these to check serializability, detect
fractured reads, and compute latency/staleness/throughput — so the checkers
work identically across 3V and all baselines.

Two implementations share the recording surface:

* :class:`History` — materializes every :class:`TxnRecord` (and, with
  ``detail=True``, every read/write event).  Memory is O(transactions);
  the full post-hoc analysis toolbox applies.
* :class:`StreamingHistory` — folds each transaction into online
  aggregates (:mod:`repro.txn.streamstats`) the moment it completes and
  then *retires* its record.  Memory is O(in-flight transactions), which
  an open-loop workload bounds by rate × latency — the volume axis.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.txn.streamstats import (
    DEFAULT_RESERVOIR,
    ExactSum,
    LatencySummary,
    StreamingStats,
    derived_rng,
)


class TxnKind:
    """Transaction classification constants."""

    READ = "read"
    UPDATE = "update"
    NONCOMMUTING = "noncommuting"


class WaitReason:
    """Why a subtransaction was delayed (for Theorem 4.2 accounting)."""

    EXECUTOR = "executor"  # local executor queue (local concurrency control)
    LOCK = "lock"  # lock-table conflict
    REMOTE = "remote"  # waiting for a remote response (2PC, global reads)
    VERSION_GATE = "version-gate"  # NC3V's "wait until vu == vr+1"
    ADVANCEMENT = "advancement"  # blocked by a (synchronous) advancement


@dataclasses.dataclass
class TxnRecord:
    """Lifecycle of one transaction."""

    name: str
    kind: str
    version: typing.Optional[int]
    submit_time: float
    root_node: str
    #: Root subtransaction committed locally (user-perceived latency for 3V).
    local_commit_time: typing.Optional[float] = None
    #: Every subtransaction in the tree has completed.
    global_complete_time: typing.Optional[float] = None
    aborted: bool = False
    abort_reason: str = ""
    compensated: bool = False
    subtxn_count: int = 0
    #: Total delay broken down by :class:`WaitReason`.
    waits: typing.Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Values returned by read operations, in execution order.
    reads: typing.List[typing.Tuple[typing.Hashable, typing.Any]] = (
        dataclasses.field(default_factory=list)
    )

    @property
    def local_latency(self) -> typing.Optional[float]:
        if self.local_commit_time is None:
            return None
        return self.local_commit_time - self.submit_time

    @property
    def global_latency(self) -> typing.Optional[float]:
        if self.global_complete_time is None:
            return None
        return self.global_complete_time - self.submit_time

    @property
    def total_wait(self) -> float:
        return sum(self.waits.values())

    @property
    def remote_wait(self) -> float:
        """Delay caused by non-local activity — Theorem 4.2 says the 3V
        protocol keeps this at exactly zero for well-behaved transactions."""
        return (
            self.waits.get(WaitReason.REMOTE, 0.0)
            + self.waits.get(WaitReason.ADVANCEMENT, 0.0)
            + self.waits.get(WaitReason.VERSION_GATE, 0.0)
        )


@dataclasses.dataclass(frozen=True)
class ReadEvent:
    """One read operation (recorded only when ``detail`` is on)."""

    time: float
    txn: str
    subtxn: str
    node: str
    key: typing.Hashable
    version_requested: typing.Optional[int]
    version_used: typing.Optional[int]
    value: typing.Any


@dataclasses.dataclass(frozen=True)
class WriteEvent:
    """One write operation (recorded only when ``detail`` is on)."""

    time: float
    txn: str
    subtxn: str
    node: str
    key: typing.Hashable
    version: typing.Optional[int]
    versions_written: int
    operation: typing.Any
    compensating: bool = False
    #: Exact version numbers touched (a dual write lists both); defaults
    #: to just ``version`` when the writer doesn't say otherwise.
    versions: typing.Optional[typing.Tuple[int, ...]] = None

    @property
    def touched_versions(self) -> typing.Tuple[int, ...]:
        if self.versions is not None:
            return self.versions
        return (self.version,) if self.version is not None else ()


@dataclasses.dataclass
class AdvancementRecord:
    """Timestamps of one run of the version-advancement protocol."""

    new_update_version: int
    started: float
    phase1_done: typing.Optional[float] = None  # all nodes on new vu
    phase2_done: typing.Optional[float] = None  # old vu quiescent
    phase3_done: typing.Optional[float] = None  # all nodes on new vr
    gc_done: typing.Optional[float] = None
    counter_polls: int = 0

    @property
    def duration(self) -> typing.Optional[float]:
        if self.gc_done is None:
            return None
        return self.gc_done - self.started

    @property
    def read_visible_at(self) -> typing.Optional[float]:
        """When queries could first see the advanced data (end of phase 3)."""
        return self.phase3_done


def is_committed(record: TxnRecord,
                 kind: typing.Optional[str] = None) -> bool:
    """The one committed-transaction predicate, shared by both histories."""
    return not record.aborted and (kind is None or record.kind == kind)


class History:
    """Append-only record of everything a simulation did.

    Args:
        detail: When ``False``, per-operation read/write events are not
            stored (large benchmark runs); transaction lifecycle records and
            aggregate statistics are always kept.
    """

    #: Streaming histories retire records; this one retains them.
    streaming = False

    def __init__(self, detail: bool = True):
        self.detail = detail
        self.txns: typing.Dict[str, TxnRecord] = {}
        self.read_events: typing.List[ReadEvent] = []
        self.write_events: typing.List[WriteEvent] = []
        self.advancements: typing.List[AdvancementRecord] = []
        #: Wait-free check support: count of wait episodes per reason.
        self.wait_episodes: typing.Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def begin_txn(self, name: str, kind: str, version: typing.Optional[int],
                  time: float, root_node: str) -> TxnRecord:
        if name in self.txns:
            raise ValueError(f"duplicate transaction name: {name!r}")
        record = TxnRecord(
            name=name, kind=kind, version=version, submit_time=time,
            root_node=root_node,
        )
        self.txns[name] = record
        return record

    def txn(self, name: str) -> TxnRecord:
        return self.txns[name]

    def locally_committed(self, name: str, time: float) -> None:
        record = self.txns[name]
        if record.local_commit_time is None:
            record.local_commit_time = time

    def globally_completed(self, name: str, time: float) -> None:
        self.txns[name].global_complete_time = time

    def aborted(self, name: str, time: float, reason: str = "") -> None:
        record = self.txns[name]
        record.aborted = True
        record.abort_reason = reason
        if record.global_complete_time is None:
            record.global_complete_time = time

    def compensated(self, name: str) -> None:
        self.txns[name].compensated = True

    def waited(self, name: str, reason: str, duration: float) -> None:
        if duration <= 0:
            return
        record = self.txns[name]
        record.waits[reason] = record.waits.get(reason, 0.0) + duration
        self.wait_episodes[reason] = self.wait_episodes.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # Operation events
    # ------------------------------------------------------------------

    def read(self, event: ReadEvent) -> None:
        record = self.txns.get(event.txn)
        if record is not None:
            record.reads.append((event.key, event.value))
        if self.detail:
            self.read_events.append(event)

    def note_read(self, txn: str, key, value) -> None:
        """Record a read's ``(key, value)`` without a :class:`ReadEvent`.

        The detail-off fast path: executors call this instead of building a
        ReadEvent that :meth:`read` would immediately discard.  Serializable
        analysis only needs the per-transaction read values, which this
        keeps.
        """
        record = self.txns.get(txn)
        if record is not None:
            record.reads.append((key, value))

    def wrote(self, event: WriteEvent) -> None:
        if self.detail:
            self.write_events.append(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def committed_txns(self, kind: typing.Optional[str] = None
                       ) -> typing.List[TxnRecord]:
        """Transactions that finished without aborting, optionally by kind."""
        return [
            record
            for record in self.txns.values()
            if is_committed(record, kind)
        ]

    def aborted_txns(self) -> typing.List[TxnRecord]:
        return [record for record in self.txns.values() if record.aborted]

    def count(self, kind: typing.Optional[str] = None) -> int:
        """Committed transactions, optionally by kind (allocation-free)."""
        return sum(
            1 for record in self.txns.values() if is_committed(record, kind)
        )

    def aborted_count(self) -> int:
        return sum(1 for record in self.txns.values() if record.aborted)

    def compensated_count(self) -> int:
        return sum(1 for record in self.txns.values() if record.compensated)

    @property
    def total_txns(self) -> int:
        """Every transaction ever begun (committed or aborted)."""
        return len(self.txns)


#: Signature of a streaming retirement sink: called once per transaction,
#: at global completion, with the (about-to-be-discarded) record and its
#: detailed read events (empty tuple when ``detail`` is off).
RetireSink = typing.Callable[
    [TxnRecord, typing.Sequence[ReadEvent]], None
]


class StreamingHistory:
    """A :class:`History` that folds completed transactions into online
    aggregates instead of retaining them.

    Implements the same recording surface (``begin_txn`` … ``wrote``) so
    every protocol runs unchanged; the difference is the retirement step:
    ``globally_completed`` is called exactly once per transaction (by both
    the plain runtime and the two-phase engine), and that is where the
    record is folded — per-kind commit/abort/compensation tallies,
    wait-episode totals, latency and staleness populations
    (:class:`~repro.txn.streamstats.StreamingStats`: exact mean/max,
    reservoir-exact small-run percentiles, P² beyond) — and discarded.

    ``self.txns`` holds only *in-flight* transactions, so memory is
    O(concurrency), not O(transactions).  Post-hoc queries that need the
    materialized records (``committed_txns`` / ``aborted_txns``) raise;
    attach a retirement sink (rolling audit, JSONL spill) for anything
    that must see individual transactions.

    Args:
        detail: Keep per-transaction read events until retirement and
            hand them to the sinks (needed by the rolling serializability
            check).  Never retained globally.
        stats_seed: Seed for the reservoir-sampling RNG streams (derive
            it from the experiment seed so summaries are bit-deterministic
            across hosts, worker counts, and backends).
        reservoir: Per-population reservoir capacity; runs whose
            populations fit are summarized exactly.
    """

    streaming = True

    def __init__(self, detail: bool = True, stats_seed: int = 0,
                 reservoir: int = DEFAULT_RESERVOIR):
        self.detail = detail
        #: In-flight transactions only (records retire at completion).
        self.txns: typing.Dict[str, TxnRecord] = {}
        self.advancements: typing.List[AdvancementRecord] = []
        self.wait_episodes: typing.Dict[str, int] = {}
        #: Always empty: streaming never retains global event lists.  Kept
        #: as attributes so surface-probing code finds lists, not errors.
        self.read_events: typing.List[ReadEvent] = []
        self.write_events: typing.List[WriteEvent] = []
        self._stats_seed = stats_seed
        self._reservoir = reservoir
        self._sinks: typing.List[RetireSink] = []
        self._pending_events: typing.Dict[str, typing.List[ReadEvent]] = {}
        self._retired = 0
        self._aborted = 0
        self._compensated = 0
        self._committed: typing.Dict[str, int] = {}
        #: (kind-or-None, "local"/"global") -> latency population.
        self._latency: typing.Dict[
            typing.Tuple[typing.Optional[str], str], StreamingStats
        ] = {}
        self._staleness: typing.Optional[StreamingStats] = None
        #: (kind-or-None, reason) -> exactly-rounded wait total.
        self._waits: typing.Dict[
            typing.Tuple[typing.Optional[str], str], ExactSum
        ] = {}
        self._max_remote: typing.Dict[typing.Optional[str], float] = {}
        #: Incremental mirror of ``closed_at_from_history``.
        self._closed_at: typing.Dict[int, float] = {0: 0.0}
        self._adv_scan = 0

    def add_retire_sink(self, sink: RetireSink) -> None:
        """Attach a callback invoked for every retiring transaction."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Transaction lifecycle (the shared recording surface)
    # ------------------------------------------------------------------

    def begin_txn(self, name: str, kind: str, version: typing.Optional[int],
                  time: float, root_node: str) -> TxnRecord:
        if name in self.txns:
            raise ValueError(f"duplicate transaction name: {name!r}")
        record = TxnRecord(
            name=name, kind=kind, version=version, submit_time=time,
            root_node=root_node,
        )
        self.txns[name] = record
        return record

    def txn(self, name: str) -> TxnRecord:
        return self.txns[name]

    def locally_committed(self, name: str, time: float) -> None:
        record = self.txns[name]
        if record.local_commit_time is None:
            record.local_commit_time = time

    def globally_completed(self, name: str, time: float) -> None:
        record = self.txns.pop(name)
        record.global_complete_time = time
        events = self._pending_events.pop(name, ())
        for sink in self._sinks:
            sink(record, events)
        self._fold(record)

    def aborted(self, name: str, time: float, reason: str = "") -> None:
        record = self.txns[name]
        record.aborted = True
        record.abort_reason = reason
        if record.global_complete_time is None:
            record.global_complete_time = time

    def compensated(self, name: str) -> None:
        self.txns[name].compensated = True

    def waited(self, name: str, reason: str, duration: float) -> None:
        if duration <= 0:
            return
        record = self.txns[name]
        record.waits[reason] = record.waits.get(reason, 0.0) + duration
        self.wait_episodes[reason] = self.wait_episodes.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # Operation events
    # ------------------------------------------------------------------

    def read(self, event: ReadEvent) -> None:
        record = self.txns.get(event.txn)
        if record is not None:
            record.reads.append((event.key, event.value))
            if self.detail:
                self._pending_events.setdefault(event.txn, []).append(event)

    def note_read(self, txn: str, key, value) -> None:
        record = self.txns.get(txn)
        if record is not None:
            record.reads.append((key, value))

    def wrote(self, event: WriteEvent) -> None:
        """Write events are not needed by any streaming aggregate."""

    # ------------------------------------------------------------------
    # Retirement folding
    # ------------------------------------------------------------------

    def _fold(self, record: TxnRecord) -> None:
        self._retired += 1
        if record.compensated:
            self._compensated += 1
        if record.aborted:
            self._aborted += 1
            return
        kind = record.kind
        self._committed[kind] = self._committed.get(kind, 0) + 1
        local = record.local_latency
        if local is not None:
            self._latency_stats(kind, "local").add(local)
            self._latency_stats(None, "local").add(local)
        global_latency = record.global_latency
        if global_latency is not None:
            self._latency_stats(kind, "global").add(global_latency)
            self._latency_stats(None, "global").add(global_latency)
        for reason, duration in record.waits.items():
            self._wait_total(kind, reason).add(duration)
            self._wait_total(None, reason).add(duration)
        remote = record.remote_wait
        if remote > self._max_remote.get(kind, 0.0):
            self._max_remote[kind] = remote
        if remote > self._max_remote.get(None, 0.0):
            self._max_remote[None] = remote
        if kind == TxnKind.READ:
            self._fold_staleness(record)

    def _fold_staleness(self, record: TxnRecord) -> None:
        # Folding eagerly is exact: if the record's version has not closed
        # by retirement time, any later close happens after the record
        # submitted, so the end-of-run staleness would be 0.0 too.
        if self._staleness is None:
            self._staleness = self._new_stats("staleness")
        if record.version is None:
            self._staleness.add(0.0)
            return
        self._advance_closed()
        closed = self._closed_at.get(record.version)
        if closed is None:
            self._staleness.add(0.0)
        else:
            self._staleness.add(max(0.0, record.submit_time - closed))

    def _advance_closed(self) -> None:
        # Advancements complete strictly in sequence, so scanning forward
        # from a saved index is amortized O(1) per retirement.
        advancements = self.advancements
        index = self._adv_scan
        while (index < len(advancements)
               and advancements[index].phase1_done is not None):
            record = advancements[index]
            self._closed_at[record.new_update_version - 1] = record.phase1_done
            index += 1
        self._adv_scan = index

    def _new_stats(self, name: str) -> StreamingStats:
        return StreamingStats(
            derived_rng(self._stats_seed, f"reservoir.{name}"),
            capacity=self._reservoir,
        )

    def _latency_stats(self, kind: typing.Optional[str], which: str
                       ) -> StreamingStats:
        key = (kind, which)
        stats = self._latency.get(key)
        if stats is None:
            # The RNG stream name depends only on (kind, which), so lazy
            # creation order cannot perturb reservoir draws.
            stats = self._new_stats(f"latency.{kind or 'all'}.{which}")
            self._latency[key] = stats
        return stats

    def _wait_total(self, kind: typing.Optional[str], reason: str
                    ) -> ExactSum:
        key = (kind, reason)
        total = self._waits.get(key)
        if total is None:
            total = ExactSum()
            self._waits[key] = total
        return total

    # ------------------------------------------------------------------
    # Aggregate queries (the streaming counterparts of repro.analysis)
    # ------------------------------------------------------------------

    def count(self, kind: typing.Optional[str] = None) -> int:
        if kind is None:
            return sum(self._committed.values())
        return self._committed.get(kind, 0)

    def aborted_count(self) -> int:
        return self._aborted

    def compensated_count(self) -> int:
        return self._compensated

    @property
    def total_txns(self) -> int:
        """Every transaction ever begun (retired plus still in flight)."""
        return self._retired + len(self.txns)

    @property
    def in_flight(self) -> int:
        return len(self.txns)

    def latency_stats(self, kind: typing.Optional[str] = None,
                      which: str = "local") -> LatencySummary:
        stats = self._latency.get((kind, which))
        if stats is None:
            return LatencySummary.of(())
        return stats.summary()

    def staleness_stats(self) -> LatencySummary:
        if self._staleness is None:
            return LatencySummary.of(())
        return self._staleness.summary()

    def wait_summary(self, kind: typing.Optional[str] = None
                     ) -> typing.Dict[str, float]:
        return {
            reason: total.value
            for (k, reason), total in self._waits.items()
            if k == kind
        }

    def max_remote_wait(self, kind: typing.Optional[str] = None) -> float:
        return self._max_remote.get(kind, 0.0)

    def closed_at(self) -> typing.Dict[int, float]:
        """The version-closure map accumulated so far."""
        self._advance_closed()
        return dict(self._closed_at)

    # ------------------------------------------------------------------
    # Materialized-only queries: fail loudly instead of lying
    # ------------------------------------------------------------------

    def committed_txns(self, kind: typing.Optional[str] = None
                       ) -> typing.List[TxnRecord]:
        raise RuntimeError(
            "StreamingHistory retires transaction records; use count()/"
            "latency_stats()/wait_summary() or attach a retirement sink"
        )

    def aborted_txns(self) -> typing.List[TxnRecord]:
        raise RuntimeError(
            "StreamingHistory retires transaction records; use "
            "aborted_count() or attach a retirement sink"
        )
