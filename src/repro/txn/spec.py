"""Transaction tree specifications (the paper's Section 3 model).

A transaction is "first submitted to one server, which performs its
subtransaction and then sends subtransactions down to other servers ...
possibly causing the transaction to visit some servers multiple times".  We
capture that as a static tree of :class:`SubtxnSpec` nodes, each naming the
database node it runs on, the operations it performs there, and its child
subtransactions.  The workload generators build these trees; the protocol
implementations execute them.

Transaction classes (Section 3.1):

* ``read_only`` — member of the read set R (no write operations anywhere);
* ``well_behaved`` — member of the update set U with all-commuting
  operations (the 3V fast path);
* non-well-behaved — at least one non-commuting operation; only the NC3V
  protocol accepts these.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import InvalidTransactionSpec
from repro.storage.values import Operation


@dataclasses.dataclass(frozen=True)
class ReadOp:
    """Read one data item (at the transaction's version, per the protocol)."""

    key: typing.Hashable


@dataclasses.dataclass(frozen=True)
class WriteOp:
    """Apply a :class:`~repro.storage.values.Operation` to one data item."""

    key: typing.Hashable
    operation: Operation


OpType = typing.Union[ReadOp, WriteOp]


@dataclasses.dataclass
class SubtxnSpec:
    """One subtransaction: a node, its local operations, its children.

    Attributes:
        node: Identifier of the database node this subtransaction runs on.
        ops: Local operations, executed in order under local concurrency
            control.
        children: Subtransactions dispatched to other nodes after the local
            operations complete (and, per Section 4.1 step 5, after the
            corresponding request counters are incremented).
        label: Optional stable suffix used to build human-readable
            subtransaction ids (Table 1 uses ``i``, ``iq``, ``iqp``).
        abort_here: If ``True``, this subtransaction aborts after executing
            its local operations, triggering compensation of the whole tree
            (Section 3.2).
    """

    node: str
    ops: typing.List[OpType] = dataclasses.field(default_factory=list)
    children: typing.List["SubtxnSpec"] = dataclasses.field(default_factory=list)
    label: str = ""
    abort_here: bool = False

    def walk(self) -> typing.Iterator["SubtxnSpec"]:
        """Yield this spec and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclasses.dataclass
class TransactionSpec:
    """A complete transaction tree plus its classification.

    Attributes:
        name: Unique transaction identifier (also used as the lock owner id).
        root: The root subtransaction.
        priority_hint: Optional tie-break information for schedulers (unused
            by the protocols themselves).
    """

    name: str
    root: SubtxnSpec
    priority_hint: float = 0.0

    def __post_init__(self):
        self.validate()

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    @property
    def is_read_only(self) -> bool:
        """True when no subtransaction performs a write."""
        return all(
            not isinstance(op, WriteOp)
            for spec in self.root.walk()
            for op in spec.ops
        )

    @property
    def is_well_behaved(self) -> bool:
        """True when every write operation commutes (Definition 3.1).

        Read-only transactions are trivially well-behaved ("the read set R
        is well-behaved by definition") but are classified separately.
        """
        return all(
            op.operation.commutes
            for spec in self.root.walk()
            for op in spec.ops
            if isinstance(op, WriteOp)
        )

    @property
    def wants_abort(self) -> bool:
        """True when some subtransaction is scripted to abort."""
        return any(spec.abort_here for spec in self.root.walk())

    @property
    def nodes(self) -> typing.Set[str]:
        """All database nodes the transaction touches."""
        return {spec.node for spec in self.root.walk()}

    @property
    def keys_written(self) -> typing.Set[typing.Hashable]:
        return {
            op.key
            for spec in self.root.walk()
            for op in spec.ops
            if isinstance(op, WriteOp)
        }

    @property
    def keys_read(self) -> typing.Set[typing.Hashable]:
        return {
            op.key
            for spec in self.root.walk()
            for op in spec.ops
            if isinstance(op, ReadOp)
        }

    def subtxn_count(self) -> int:
        return sum(1 for _ in self.root.walk())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Reject malformed trees early, with a precise complaint."""
        if not self.name:
            raise InvalidTransactionSpec("transaction name must be non-empty")
        seen: typing.Set[int] = set()
        for spec in self.root.walk():
            if id(spec) in seen:
                raise InvalidTransactionSpec(
                    f"{self.name}: subtransaction tree contains a cycle or "
                    "shared node"
                )
            seen.add(id(spec))
            if not spec.node:
                raise InvalidTransactionSpec(
                    f"{self.name}: subtransaction with empty node id"
                )
            for op in spec.ops:
                if not isinstance(op, (ReadOp, WriteOp)):
                    raise InvalidTransactionSpec(
                        f"{self.name}: unknown operation type "
                        f"{type(op).__name__}"
                    )
        if self.is_read_only and self.wants_abort:
            raise InvalidTransactionSpec(
                f"{self.name}: read-only transactions cannot abort "
                "(they have nothing to compensate)"
            )


def subtxn_id(parent_id: str, child: SubtxnSpec, index: int) -> str:
    """Build the id of a child subtransaction.

    Uses the child's explicit ``label`` when present (so the paper's example
    produces ids ``i``, ``iq``, ``iqp``), otherwise ``parent.index``.
    """
    if child.label:
        return parent_id + child.label
    return f"{parent_id}.{index}"
