"""Transaction tree specifications (the paper's Section 3 model).

A transaction is "first submitted to one server, which performs its
subtransaction and then sends subtransactions down to other servers ...
possibly causing the transaction to visit some servers multiple times".  We
capture that as a static tree of :class:`SubtxnSpec` nodes, each naming the
database node it runs on, the operations it performs there, and its child
subtransactions.  The workload generators build these trees; the protocol
implementations execute them.

Transaction classes (Section 3.1):

* ``read_only`` — member of the read set R (no write operations anywhere);
* ``well_behaved`` — member of the update set U with all-commuting
  operations (the 3V fast path);
* non-well-behaved — at least one non-commuting operation; only the NC3V
  protocol accepts these.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import InvalidTransactionSpec
from repro.storage.values import Operation


@dataclasses.dataclass(frozen=True)
class ReadOp:
    """Read one data item (at the transaction's version, per the protocol)."""

    key: typing.Hashable


@dataclasses.dataclass(frozen=True)
class WriteOp:
    """Apply a :class:`~repro.storage.values.Operation` to one data item."""

    key: typing.Hashable
    operation: Operation


OpType = typing.Union[ReadOp, WriteOp]


@dataclasses.dataclass
class SubtxnSpec:
    """One subtransaction: a node, its local operations, its children.

    Attributes:
        node: Identifier of the database node this subtransaction runs on.
        ops: Local operations, executed in order under local concurrency
            control.
        children: Subtransactions dispatched to other nodes after the local
            operations complete (and, per Section 4.1 step 5, after the
            corresponding request counters are incremented).
        label: Optional stable suffix used to build human-readable
            subtransaction ids (Table 1 uses ``i``, ``iq``, ``iqp``).
        abort_here: If ``True``, this subtransaction aborts after executing
            its local operations, triggering compensation of the whole tree
            (Section 3.2).
        alternates: Other nodes holding a readable copy of this
            subtransaction's data (read-one replication).  At submit time
            the placement layer may re-point a read-only subtransaction to
            the first *readable* alternate when ``node`` is down or
            unrefreshed; empty for writes and for unreplicated data.
    """

    node: str
    ops: typing.List[OpType] = dataclasses.field(default_factory=list)
    children: typing.List["SubtxnSpec"] = dataclasses.field(default_factory=list)
    label: str = ""
    abort_here: bool = False
    alternates: typing.Tuple[str, ...] = ()

    def walk(self) -> typing.Iterator["SubtxnSpec"]:
        """Yield this spec and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclasses.dataclass
class TransactionSpec:
    """A complete transaction tree plus its classification.

    Attributes:
        name: Unique transaction identifier (also used as the lock owner id).
        root: The root subtransaction.
        priority_hint: Optional tie-break information for schedulers (unused
            by the protocols themselves).
    """

    name: str
    root: SubtxnSpec
    priority_hint: float = 0.0

    def __post_init__(self):
        self.validate()

    # ------------------------------------------------------------------
    # Classification
    #
    # The classification of a transaction is consulted on every protocol
    # decision (submit gate, version stamping, compensation), so it is
    # computed once during :meth:`validate` — a single walk of the tree —
    # and cached.  Specs are treated as immutable after construction (the
    # workload builders finish mutating ``abort_here`` before wrapping the
    # tree in a TransactionSpec); call :meth:`validate` again to refresh
    # the cache if a tree is ever edited in place.
    # ------------------------------------------------------------------

    @property
    def is_read_only(self) -> bool:
        """True when no subtransaction performs a write."""
        return self._is_read_only

    @property
    def is_well_behaved(self) -> bool:
        """True when every write operation commutes (Definition 3.1).

        Read-only transactions are trivially well-behaved ("the read set R
        is well-behaved by definition") but are classified separately.
        """
        return self._is_well_behaved

    @property
    def wants_abort(self) -> bool:
        """True when some subtransaction is scripted to abort."""
        return self._wants_abort

    @property
    def nodes(self) -> typing.Set[str]:
        """All database nodes the transaction touches."""
        return set(self._nodes)

    @property
    def keys_written(self) -> typing.Set[typing.Hashable]:
        return {
            op.key
            for spec in self.root.walk()
            for op in spec.ops
            if isinstance(op, WriteOp)
        }

    @property
    def keys_read(self) -> typing.Set[typing.Hashable]:
        return {
            op.key
            for spec in self.root.walk()
            for op in spec.ops
            if isinstance(op, ReadOp)
        }

    def subtxn_count(self) -> int:
        return sum(1 for _ in self.root.walk())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Reject malformed trees early, with a precise complaint.

        Also (re)computes the cached classification — one iterative walk
        instead of one recursive generator sweep per classification query.
        """
        if not self.name:
            raise InvalidTransactionSpec("transaction name must be non-empty")
        read_only = True
        well_behaved = True
        wants_abort = False
        nodes: typing.Set[str] = set()
        seen: typing.Set[int] = set()
        seen_add = seen.add
        stack = [self.root]
        pop = stack.pop
        while stack:
            spec = pop()
            if id(spec) in seen:
                raise InvalidTransactionSpec(
                    f"{self.name}: subtransaction tree contains a cycle or "
                    "shared node"
                )
            seen_add(id(spec))
            if not spec.node:
                raise InvalidTransactionSpec(
                    f"{self.name}: subtransaction with empty node id"
                )
            nodes.add(spec.node)
            if spec.abort_here:
                wants_abort = True
            for op in spec.ops:
                if isinstance(op, WriteOp):
                    read_only = False
                    if not op.operation.commutes:
                        well_behaved = False
                elif not isinstance(op, ReadOp):
                    raise InvalidTransactionSpec(
                        f"{self.name}: unknown operation type "
                        f"{type(op).__name__}"
                    )
            stack.extend(spec.children)
        if read_only and wants_abort:
            raise InvalidTransactionSpec(
                f"{self.name}: read-only transactions cannot abort "
                "(they have nothing to compensate)"
            )
        self._is_read_only = read_only
        self._is_well_behaved = well_behaved
        self._wants_abort = wants_abort
        self._nodes = nodes


def subtxn_id(parent_id: str, child: SubtxnSpec, index: int) -> str:
    """Build the id of a child subtransaction.

    Uses the child's explicit ``label`` when present (so the paper's example
    produces ids ``i``, ``iq``, ``iqp``), otherwise ``parent.index``.
    """
    if child.label:
        return parent_id + child.label
    return f"{parent_id}.{index}"
