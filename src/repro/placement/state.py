"""Runtime placement state: read-one routing and write-all-available skips.

``PlacementState`` is what the runtime consults when replication is on
(``replication_factor > 1``); a system built without one behaves exactly
as before, and the hot paths guard every hook behind a single ``None``
check.  Three duties:

* **Read-one routing.**  At submit time a read-only transaction's
  subtransactions are re-pointed from unreadable replicas to the first
  readable alternate (:meth:`route_reads`, via ``TxnIndex`` overrides).
  A read that still lands on an unreadable node — queued before the
  crash, or with no readable alternate — waits on the node's refresh
  gate instead of observing stale state.

* **Write-all-available.**  Write fan-out to a down or unrefreshed
  replica is skipped entirely — no request accounting, no completion
  owed, so aggregate quiescence stays sound — and the skipped operations
  are ledgered for the refresh protocol (:meth:`record_skip`).  A
  compensation that overtakes a skipped original cancels the ledger
  entry: the pair annihilates (:meth:`cancel_skip`).

* **Recovery-readability.**  Crash/recover transitions and the
  ``REFRESH_*`` message handlers are delegated to
  :class:`~repro.placement.refresh.RefreshProtocol`.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError
from repro.net.message import MessageKind
from repro.placement.refresh import MissedOp, MissedOpLedger, RefreshProtocol


class PlacementState:
    """Replication runtime state for one system (pass via ``placement=``)."""

    def __init__(self, refresh_delay: float = 2.0):
        if refresh_delay <= 0:
            raise SimulationError(
                f"refresh_delay must be > 0, got {refresh_delay!r}"
            )
        self.ledger = MissedOpLedger()
        self.refresh = RefreshProtocol(self.ledger, refresh_delay)
        self.system = None
        self.reads_rerouted = 0
        self.reads_gated = 0
        #: Child dispatches skipped because the target replica was
        #: unavailable (each may ledger several operations).
        self.writes_skipped = 0
        self.ops_ledgered = 0
        self.ops_cancelled = 0
        #: Invariant counter — must stay 0: reads executed at a node that
        #: was still unrefreshed (the chaos harness scores this).
        self.unreadable_reads_served = 0

    @property
    def refresh_delay(self) -> float:
        return self.refresh.refresh_delay

    def bind(self, system) -> None:
        self.system = system
        self.refresh.bind(system)

    # ------------------------------------------------------------------
    # Read-one routing
    # ------------------------------------------------------------------

    def readable(self, node_id: str) -> bool:
        return self.refresh.readable(node_id)

    def route_reads(self, index) -> None:
        """Re-point a read-only tree's subtxns away from unreadable nodes."""
        overrides = {}
        for sid, spec in index.by_id.items():
            if self.readable(spec.node):
                continue
            for alternate in getattr(spec, "alternates", ()):
                if self.readable(alternate):
                    overrides[sid] = alternate
                    break
        if overrides:
            index.set_overrides(overrides)
            self.reads_rerouted += len(overrides)

    def read_gate(self, node_id: str):
        """Refresh gate for a read arriving at an unreadable node."""
        gate = self.refresh.read_gate(node_id)
        if gate is not None:
            self.reads_gated += 1
        return gate

    def note_read_served(self, node_id: str) -> None:
        if node_id in self.refresh.unrefreshed:
            self.unreadable_reads_served += 1

    # ------------------------------------------------------------------
    # Write-all-available
    # ------------------------------------------------------------------

    def should_skip_write(self, target: str, instance) -> bool:
        """Skip fan-out of an original write to an unavailable replica."""
        if instance.compensating or instance.txn.is_read_only:
            return False
        return (target in self.system.down_nodes
                or target in self.refresh.unrefreshed)

    def record_skip(
        self,
        target: str,
        txn_name: str,
        sid: str,
        version: int,
        write_ops: typing.Iterable[typing.Tuple[typing.Hashable, typing.Any]],
    ) -> None:
        """Ledger the operations of one skipped child dispatch."""
        entries = [
            MissedOp(txn=txn_name, sid=sid, key=key, version=version,
                     operation=operation)
            for key, operation in write_ops
        ]
        self.ledger.record(target, entries)
        self.writes_skipped += 1
        self.ops_ledgered += len(entries)

    def cancel_skip(self, target: str, txn_name: str, sid: str) -> None:
        """Compensation overtook a skipped original: annihilate the pair."""
        self.ops_cancelled += self.ledger.cancel(target, txn_name, sid)

    # ------------------------------------------------------------------
    # Crash / recovery / refresh plumbing
    # ------------------------------------------------------------------

    def on_crash(self, node_id: str) -> None:
        """Hook for symmetry; DOWN is tracked by ``system.down_nodes``."""

    def on_recover(self, node_id: str) -> None:
        self.refresh.on_recover(node_id)

    def handle_message(self, node, message) -> bool:
        """Route ``REFRESH_*`` traffic; returns True when consumed."""
        kind = message.kind
        if kind == MessageKind.REFRESH_REQUEST:
            self.refresh.handle_request(node, message)
            return True
        if kind == MessageKind.REFRESH_REPLY:
            self.refresh.handle_reply(node, message)
            return True
        return False

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def counters(self) -> typing.Dict[str, int]:
        return {
            "reads_rerouted": self.reads_rerouted,
            "reads_gated": self.reads_gated,
            "writes_skipped": self.writes_skipped,
            "ops_ledgered": self.ops_ledgered,
            "ops_cancelled": self.ops_cancelled,
            "refreshes_completed": self.refresh.refreshes_completed,
            "self_refreshes": self.refresh.self_refreshes,
            "refresh_ops_applied": self.refresh.refresh_ops_applied,
            "refresh_retries": self.refresh.refresh_retries,
            "unreadable_reads_served": self.unreadable_reads_served,
        }
