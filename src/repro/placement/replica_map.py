"""Seeded, deterministic replica placement.

A :class:`ReplicaMap` assigns every (entity, slot) record an ordered list
of ``replication_factor`` distinct replica nodes.  Placement is a ring
walk: each entity draws one random start node, slot ``s`` of the entity
is homed at ``start + s`` on the ring, and the slot's replicas are the
``rf`` consecutive nodes beginning at its home.  Two properties fall out
by construction:

* **rf=1 is today's map.**  With one replica per slot, ``replicas(e, s)``
  collapses to the single home node ``nodes[(start + s) % n]`` — exactly
  the ``entity_nodes`` assignment the recording workload has always
  produced, from the identical RNG draw (one ``randrange`` per entity).
  Turning the replication axis on at its default perturbs nothing.

* **Distinctness.**  Ring-consecutive replicas are distinct as long as
  ``rf <= len(nodes)``, which :meth:`generate` validates up front;
  replicas are full *copies* of one record and copies on the same node
  would be one copy.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError


class ReplicaMap:
    """Deterministic map from (entity, slot) to an ordered replica list.

    Args:
        nodes: Cluster node ids, in ring order.
        starts: Per-entity ring start offsets (one per entity).
        span: Number of *distinct* records (slots) per entity.  Span
            spreads different records across nodes; it is orthogonal to
            replication, which makes copies of each record.
        replication_factor: Copies of every record (``1`` = single-owner).
    """

    __slots__ = ("nodes", "span", "replication_factor", "_starts")

    def __init__(
        self,
        nodes: typing.Sequence[str],
        starts: typing.Sequence[int],
        span: int,
        replication_factor: int,
    ):
        if not nodes:
            raise SimulationError("a replica map needs at least one node")
        if span < 1:
            raise SimulationError(f"span must be >= 1, got {span!r}")
        if not 1 <= replication_factor <= len(nodes):
            raise SimulationError(
                f"replication_factor must satisfy 1 <= rf <= len(nodes): "
                f"got rf={replication_factor!r} with {len(nodes)} node(s). "
                f"Replicas are full copies of one record and must land on "
                f"distinct nodes (span spreads distinct records instead)."
            )
        self.nodes = tuple(nodes)
        self.span = span
        self.replication_factor = replication_factor
        self._starts = tuple(starts)

    @classmethod
    def generate(
        cls,
        nodes: typing.Sequence[str],
        entities: int,
        span: int,
        replication_factor: int,
        rng,
    ) -> "ReplicaMap":
        """Draw a map from ``rng``: one ``randrange(len(nodes))`` per entity.

        The draw sequence is exactly the one the recording workload used
        for its single-owner ``entity_nodes`` map, so generating a map at
        any ``replication_factor`` leaves every subsequent draw from the
        same stream (entity picks, amounts, audit samples) unchanged.
        """
        count = len(nodes)
        starts = [rng.randrange(count) for _ in range(entities)]
        return cls(nodes, starts, span, replication_factor)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def entities(self) -> int:
        return len(self._starts)

    def home(self, entity: int, slot: int = 0) -> str:
        """The slot's first replica (its primary)."""
        return self.nodes[(self._starts[entity] + slot) % len(self.nodes)]

    def homes(self, entity: int) -> typing.List[str]:
        """Primary node of every slot of ``entity`` (the rf=1 owner list)."""
        return [self.home(entity, slot) for slot in range(self.span)]

    def replicas(self, entity: int, slot: int) -> typing.Tuple[str, ...]:
        """Ordered replica list of one record: ``rf`` consecutive nodes."""
        start = self._starts[entity] + slot
        count = len(self.nodes)
        return tuple(
            self.nodes[(start + k) % count]
            for k in range(self.replication_factor)
        )

    def slot_items(self) -> typing.Iterator[typing.Tuple[int, int, tuple]]:
        """Iterate ``(entity, slot, replicas)`` over every record."""
        for entity in range(len(self._starts)):
            for slot in range(self.span):
                yield entity, slot, self.replicas(entity, slot)

    def load_per_node(self) -> typing.Dict[str, int]:
        """Number of record copies hosted by each node (balance metric)."""
        load = {node: 0 for node in self.nodes}
        for _, _, replicas in self.slot_items():
            for node in replicas:
                load[node] += 1
        return load
