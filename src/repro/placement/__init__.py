"""Replica placement: deterministic key->replica-list maps plus the
runtime state for read-one/write-all-available replication.

``ReplicaMap`` is pure data — a seeded, deterministic assignment of every
(entity, slot) record to an ordered list of replica nodes, with
``replication_factor=1`` reproducing the single-owner maps the workloads
used before replication existed, bit for bit.  ``PlacementState`` is the
runtime side: it decides which replica serves a read, skips write fan-out
to unavailable replicas (ledgering the missed operations), and drives the
recovery-readability refresh protocol in :mod:`repro.placement.refresh`.

Layering: this package may import only ``repro.errors``, ``repro.sim``,
``repro.storage``, and ``repro.net`` (enforced by
``tools/check_layering.py`` rule 5).  The runtime imports *down* into
placement; placement never learns about protocols or workloads.
"""

from repro.placement.refresh import MissedOp, MissedOpLedger, RefreshProtocol
from repro.placement.replica_map import ReplicaMap
from repro.placement.state import PlacementState

__all__ = [
    "MissedOp",
    "MissedOpLedger",
    "PlacementState",
    "RefreshProtocol",
    "ReplicaMap",
]
