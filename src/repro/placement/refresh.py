"""Recovery-readability: the refresh protocol for recovered replicas.

A replica that crashes and recovers has replayed its write-ahead journal,
so it holds exactly its *pre-crash* state — but write-all-available fan-out
kept committing while it was down, skipping the unavailable copy.  Until
those missed writes are transferred back, the replica is **unreadable**:
readers are routed to (or gated until) a refreshed copy.  The state
machine per node is::

    READABLE --crash--> DOWN --recover--> UNREFRESHED --refresh--> READABLE

The transfer ships *operations*, not store chains.  Every write skipped
for an unavailable replica is recorded in a :class:`MissedOpLedger` at
dispatch time (the sender is the one that knows it skipped); refresh pops
the recovering node's ledger section via a ``REFRESH_REQUEST`` /
``REFRESH_REPLY`` round trip through a live peer and re-applies each
operation at its original version with the store's ``apply_geq`` rule.
Because the paper's updates commute, op-shipping needs no synchronisation
with the writes that keep flowing during the refresh — whereas copying a
peer's MVStore chains wholesale would lose any write applied locally but
still in flight to the peer at snapshot time.  The recovering node drains
its own ledger section once more when the reply arrives, atomically with
becoming readable, so nothing skipped during the round trip is lost.

Epochs guard against a node crashing *again* mid-refresh: every recovery
bumps the node's epoch, and a reply carrying a stale epoch still applies
its (already popped) operations but does not mark the node readable — the
newer recovery's own refresh cycle owns that transition.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.net.message import MessageKind
from repro.sim.events import Event


@dataclasses.dataclass(frozen=True)
class MissedOp:
    """One write skipped for an unavailable replica.

    Attributes:
        txn: Transaction name (compensation bookkeeping key).
        sid: Subtransaction id whose dispatch was skipped.
        key: Data item the operation targets.
        version: Version the write would have been applied at.
        operation: The commuting operation object itself.
    """

    txn: str
    sid: str
    key: typing.Hashable
    version: int
    operation: typing.Any


class MissedOpLedger:
    """Per-node log of writes skipped while the node was unavailable.

    Keyed by ``(txn, sid)`` so a compensation that overtakes a skipped
    original can cancel the whole entry (the pair annihilates: neither
    the original nor its inverse should ever be applied).
    """

    def __init__(self):
        self._pending: typing.Dict[
            str, typing.Dict[typing.Tuple[str, str], typing.List[MissedOp]]
        ] = {}

    def record(self, node_id: str, entries: typing.Sequence[MissedOp]) -> None:
        section = self._pending.setdefault(node_id, {})
        for entry in entries:
            section.setdefault((entry.txn, entry.sid), []).append(entry)

    def cancel(self, node_id: str, txn: str, sid: str) -> int:
        """Drop a skipped subtransaction's entry; returns ops removed."""
        section = self._pending.get(node_id)
        if not section:
            return 0
        dropped = section.pop((txn, sid), None)
        return len(dropped) if dropped else 0

    def pop(self, node_id: str) -> typing.List[MissedOp]:
        """Remove and return the node's entire section, in skip order."""
        section = self._pending.pop(node_id, None)
        if not section:
            return []
        return [entry for ops in section.values() for entry in ops]

    def pending_ops(self, node_id: str) -> int:
        section = self._pending.get(node_id)
        if not section:
            return 0
        return sum(len(ops) for ops in section.values())


class RefreshProtocol:
    """Drives the DOWN -> UNREFRESHED -> READABLE transitions."""

    def __init__(self, ledger: MissedOpLedger, refresh_delay: float):
        self.ledger = ledger
        self.refresh_delay = refresh_delay
        self.system = None
        #: Recovered nodes that have not completed a refresh yet.
        self.unrefreshed: typing.Set[str] = set()
        #: Per-node recovery epoch (bumped on every recovery).
        self.epochs: typing.Dict[str, int] = {}
        self._gates: typing.Dict[str, Event] = {}
        self.refresh_requests = 0
        self.refreshes_completed = 0
        self.self_refreshes = 0
        self.refresh_ops_applied = 0
        self.refresh_retries = 0

    def bind(self, system) -> None:
        self.system = system

    # ------------------------------------------------------------------
    # Readability
    # ------------------------------------------------------------------

    def readable(self, node_id: str) -> bool:
        """Up and refreshed: allowed to serve reads / act as a source."""
        return (node_id not in self.system.down_nodes
                and node_id not in self.unrefreshed)

    def read_gate(self, node_id: str) -> typing.Optional[Event]:
        """An event a read at an unreadable node must wait on (or None)."""
        if node_id not in self.unrefreshed:
            return None
        gate = self._gates.get(node_id)
        if gate is None:
            gate = Event(self.system.sim)
            self._gates[node_id] = gate
        return gate

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------

    def on_recover(self, node_id: str) -> None:
        """Recovery observed: unreadable until a refresh completes."""
        self.unrefreshed.add(node_id)
        epoch = self.epochs.get(node_id, 0) + 1
        self.epochs[node_id] = epoch
        self.system.sim.schedule(
            self.refresh_delay, self._request_refresh, node_id, epoch
        )

    def _request_refresh(self, node_id: str, epoch: int) -> None:
        if epoch != self.epochs.get(node_id):
            return  # A newer recovery owns the refresh now.
        if node_id not in self.unrefreshed or node_id in self.system.down_nodes:
            return  # Already refreshed, or crashed again (next recovery
            # schedules its own cycle).
        if self.ledger.pending_ops(node_id) == 0:
            # Nothing was skipped: the journal replay already restored a
            # complete copy, so the node re-admits itself without a peer.
            # (Also breaks the mutual-unreadability tie when every node
            # recovered at once: the last node down never missed a write.)
            self._mark_readable(node_id)
            self.self_refreshes += 1
            return
        peer = self._pick_peer(node_id)
        if peer is None:
            self.refresh_retries += 1
            self.system.sim.schedule(
                self.refresh_delay, self._request_refresh, node_id, epoch
            )
            return
        self.refresh_requests += 1
        self.system.network.send(
            node_id, peer, MessageKind.REFRESH_REQUEST, (node_id, epoch)
        )

    def _pick_peer(self, node_id: str) -> typing.Optional[str]:
        """A live source: prefer a readable peer, fall back to any up one.

        The missed-op log is maintained by the *senders* that skipped the
        writes, so an up-but-unrefreshed peer's section for ``node_id`` is
        still authoritative; insisting on a readable peer would deadlock
        when every node recovered with missed writes at once.
        """
        fallback = None
        for candidate in self.system.nodes:
            if candidate == node_id or candidate in self.system.down_nodes:
                continue
            if candidate not in self.unrefreshed:
                return candidate
            if fallback is None:
                fallback = candidate
        return fallback

    # ------------------------------------------------------------------
    # Message handlers (called from the placement dispatch hook)
    # ------------------------------------------------------------------

    def handle_request(self, node, message) -> None:
        """A peer serves the requester's ledger section back to it."""
        requester, epoch = message.payload
        entries = self.ledger.pop(requester)
        self.system.network.send(
            node.node_id, requester, MessageKind.REFRESH_REPLY,
            (epoch, tuple(entries)),
        )

    def handle_reply(self, node, message) -> None:
        epoch, entries = message.payload
        self._apply(node, entries)
        if epoch != self.epochs.get(node.node_id):
            # Crashed again since requesting: the ops above are applied
            # (they were popped at the peer and exist nowhere else), but
            # readability belongs to the newer recovery's refresh.
            return
        # Final drain, atomic with becoming readable: anything skipped
        # between the peer's pop and this reply's arrival.
        self._apply(node, self.ledger.pop(node.node_id))
        self._mark_readable(node.node_id)
        self.refreshes_completed += 1

    def _mark_readable(self, node_id: str) -> None:
        self.unrefreshed.discard(node_id)
        gate = self._gates.pop(node_id, None)
        if gate is not None:
            gate.succeed()

    def _apply(self, node, entries: typing.Sequence[MissedOp]) -> None:
        plugin = self.system.plugin
        for entry in entries:
            plugin.apply_refresh_op(node, entry.key, entry.version,
                                    entry.operation)
            # Register the subtransaction as executed here so a
            # compensator arriving after the refresh applies its inverse
            # instead of tombstoning (and double-counting the original).
            node._executed.setdefault(entry.txn, set()).add(entry.sid)
            self.refresh_ops_applied += 1
