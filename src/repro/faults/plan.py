"""Declarative, seed-deterministic fault plans.

A :class:`FaultPlan` is pure data: per-link drop/duplicate probabilities
and delay spikes (:class:`LinkFaults`), a timed crash/recover schedule
(:class:`CrashEvent`), retransmission tuning for the reliable-delivery
layer, and its own ``fault_seed``.  The injector
(:class:`~repro.faults.network.FaultyNetwork`) draws every fault decision
from an :class:`~repro.sim.distributions.RngRegistry` seeded with
``fault_seed`` — *not* the workload registry — so fault schedules are
bit-reproducible and completely independent of workload randomness: the
same workload seed with two different fault seeds submits the identical
transactions.

:meth:`FaultPlan.storm` builds the randomized-but-deterministic plan the
``repro chaos`` harness uses: uniform loss/duplication on every link plus
a non-overlapping crash/recover schedule per node, all derived from the
fault seed.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import SimulationError
from repro.net.reliable import RetransmitPolicy
from repro.sim.distributions import RngRegistry


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value < 1.0:
        raise SimulationError(
            f"{name} must be a probability in [0, 1), got {value!r}"
        )


@dataclasses.dataclass(frozen=True)
class LinkFaults:
    """Fault probabilities for one directed link (or the default).

    Attributes:
        drop: Probability a transmitted copy is silently lost.
        dup: Probability a transmitted copy is delivered twice.
        spike_probability: Probability a copy suffers a delay spike.
        spike_delay: Extra delay added when a spike fires.
    """

    drop: float = 0.0
    dup: float = 0.0
    spike_probability: float = 0.0
    spike_delay: float = 0.0

    def __post_init__(self):
        _check_probability("drop", self.drop)
        _check_probability("dup", self.dup)
        _check_probability("spike_probability", self.spike_probability)
        if self.spike_delay < 0:
            raise SimulationError(
                f"spike_delay must be >= 0, got {self.spike_delay!r}"
            )

    @property
    def active(self) -> bool:
        """Whether this link draws any fault randomness at all."""
        return bool(self.drop or self.dup or self.spike_probability)

    @property
    def lossy(self) -> bool:
        """Whether this link can lose or duplicate messages (needs the
        reliable-delivery layer to restore exactly-once semantics)."""
        return bool(self.drop or self.dup)


@dataclasses.dataclass(frozen=True)
class CrashEvent:
    """One scheduled fail-stop crash: ``node`` goes down at ``at`` for
    ``down_for`` simulated seconds, then recovers.

    ``node`` may also name a non-node crash target the driving system
    declares (e.g. the 3V advancement coordinator's ``"coordinator"``
    endpoint); :class:`repro.runtime.System` validates every target at
    wiring time, so a typo fails construction instead of silently never
    firing.
    """

    node: str
    at: float
    down_for: float

    def __post_init__(self):
        if self.at < 0 or self.down_for <= 0:
            raise SimulationError(
                f"crash schedule must have at >= 0 and down_for > 0, "
                f"got at={self.at!r} down_for={self.down_for!r}"
            )


@dataclasses.dataclass(frozen=True)
class PartitionEvent:
    """One timed network partition between two node groups, then a heal.

    From ``at`` until ``at + duration`` every physical copy sent from
    ``side_a`` to ``side_b`` is dropped at the transmission seam; with
    ``symmetric=True`` (the default) the reverse direction is cut too,
    while ``symmetric=False`` models an asymmetric link failure where
    ``side_b`` can still reach ``side_a``.  Healing is implicit: past the
    window the partition draws nothing and costs nothing.  Endpoints named
    in neither side (e.g. a coordinator endpoint left out of both groups)
    are unaffected.
    """

    side_a: typing.Tuple[str, ...]
    side_b: typing.Tuple[str, ...]
    at: float
    duration: float
    symmetric: bool = True

    def __post_init__(self):
        if self.at < 0 or self.duration <= 0:
            raise SimulationError(
                f"partition schedule must have at >= 0 and duration > 0, "
                f"got at={self.at!r} duration={self.duration!r}"
            )
        if not self.side_a or not self.side_b:
            raise SimulationError("partition sides must both be non-empty")
        set_a, set_b = frozenset(self.side_a), frozenset(self.side_b)
        if set_a & set_b:
            raise SimulationError(
                f"partition sides overlap: {sorted(set_a & set_b)}"
            )
        # Cached frozensets for the per-transmission membership test; not
        # dataclass fields, so eq/repr stay the declared schedule.
        object.__setattr__(self, "_set_a", set_a)
        object.__setattr__(self, "_set_b", set_b)

    @property
    def heal_at(self) -> float:
        return self.at + self.duration

    def cuts(self, src: str, dst: str, now: float) -> bool:
        """Whether a copy from ``src`` to ``dst`` at ``now`` is cut."""
        if not self.at <= now < self.heal_at:
            return False
        if src in self._set_a and dst in self._set_b:
            return True
        return (self.symmetric
                and src in self._set_b and dst in self._set_a)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A complete, immutable fault schedule for one run.

    Attributes:
        fault_seed: Seed for the injector's private RNG registry.
        default_link: Faults applied to links without an override.
        links: Per-``(src, dst)`` overrides.
        crashes: Timed crash/recover events.
        partitions: Timed partition/heal events.
        retransmit: Tuning for the reliable-delivery layer.
    """

    fault_seed: int = 0
    default_link: LinkFaults = dataclasses.field(default_factory=LinkFaults)
    links: typing.Mapping[typing.Tuple[str, str], LinkFaults] = (
        dataclasses.field(default_factory=dict)
    )
    crashes: typing.Tuple[CrashEvent, ...] = ()
    partitions: typing.Tuple[PartitionEvent, ...] = ()
    retransmit: RetransmitPolicy = dataclasses.field(
        default_factory=RetransmitPolicy
    )

    def link(self, src: str, dst: str) -> LinkFaults:
        """The fault parameters governing one directed link."""
        return self.links.get((src, dst), self.default_link)

    def cut(self, src: str, dst: str, now: float) -> bool:
        """Whether an active partition cuts the ``src -> dst`` link now."""
        return any(p.cuts(src, dst, now) for p in self.partitions)

    @property
    def lossy(self) -> bool:
        """Whether any link can lose (or duplicate) messages.

        A partitioned plan counts: cross-partition copies are dropped
        outright, so without the reliable-delivery layer they would be
        lost forever instead of retransmitted after the heal.
        """
        return bool(self.partitions) or self.default_link.lossy or any(
            faults.lossy for faults in self.links.values()
        )

    def rng_registry(self) -> RngRegistry:
        """A fresh registry for fault draws (independent of the workload)."""
        return RngRegistry(self.fault_seed)

    @classmethod
    def storm(
        cls,
        node_ids: typing.Sequence[str],
        *,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        crash_count: int = 0,
        fault_seed: int = 0,
        duration: float = 30.0,
        spike_probability: float = 0.0,
        spike_delay: float = 0.0,
        crash_window: float = 0.7,
        partition_count: int = 0,
        retransmit: typing.Optional[RetransmitPolicy] = None,
    ) -> "FaultPlan":
        """A randomized fault storm, fully determined by ``fault_seed``.

        Every link gets the same drop/dup/spike parameters; each node gets
        ``crash_count`` non-overlapping crash/recover cycles at times drawn
        from the fault seed, confined to the first ``crash_window`` of
        ``duration`` (default 70%) so the post-storm drain observes a fully
        recovered cluster.  ``partition_count`` adds that many timed
        symmetric partition/heal cycles in the same window, each splitting
        the sorted node list at a seed-drawn point; partition draws come
        from their own RNG stream, so adding partitions never perturbs the
        crash schedule of an otherwise-identical plan.
        """
        if crash_count < 0:
            raise SimulationError(f"crash_count must be >= 0: {crash_count}")
        if partition_count < 0:
            raise SimulationError(
                f"partition_count must be >= 0: {partition_count}"
            )
        if duration <= 0:
            raise SimulationError(f"duration must be > 0: {duration}")
        if not 0.0 < crash_window <= 1.0:
            raise SimulationError(
                f"crash_window must be in (0, 1], got {crash_window!r}"
            )
        registry = RngRegistry(fault_seed)
        rng = registry.stream("faults.storm")
        window = crash_window * duration
        crashes: typing.List[CrashEvent] = []
        # Sorted node order: the schedule must not depend on caller order.
        for node in sorted(node_ids):
            if not crash_count:
                break
            # Partition the crash window into equal slices, one cycle per
            # slice: crashes on one node can never overlap.
            slice_width = window / crash_count
            for i in range(crash_count):
                slice_start = i * slice_width
                at = slice_start + rng.uniform(0.05, 0.45) * slice_width
                down_for = rng.uniform(0.1, 0.4) * slice_width
                crashes.append(CrashEvent(node=node, at=at, down_for=down_for))
        partitions: typing.List[PartitionEvent] = []
        ordered = sorted(node_ids)
        if partition_count and len(ordered) >= 2:
            p_rng = registry.stream("faults.storm.partitions")
            slice_width = window / partition_count
            for i in range(partition_count):
                slice_start = i * slice_width
                at = slice_start + p_rng.uniform(0.05, 0.45) * slice_width
                cut_for = p_rng.uniform(0.15, 0.45) * slice_width
                split = 1 + min(
                    len(ordered) - 2,
                    int(p_rng.uniform(0.0, 1.0) * (len(ordered) - 1)),
                )
                partitions.append(PartitionEvent(
                    side_a=tuple(ordered[:split]),
                    side_b=tuple(ordered[split:]),
                    at=at, duration=cut_for,
                ))
        return cls(
            fault_seed=fault_seed,
            default_link=LinkFaults(
                drop=drop_rate,
                dup=dup_rate,
                spike_probability=spike_probability,
                spike_delay=spike_delay,
            ),
            crashes=tuple(crashes),
            partitions=tuple(partitions),
            retransmit=(retransmit if retransmit is not None
                        else RetransmitPolicy()),
        )
