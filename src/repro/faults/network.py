"""The fault injector: a network that drops, duplicates, and delays.

:class:`FaultyNetwork` subclasses :class:`~repro.net.network.Network` and
overrides the single physical-transmission seam (``_transmit``), so every
copy that would touch the wire — first sends, retransmissions, and
transport acks alike — passes one fault decision point.  Fault randomness
comes from the plan's own :class:`~repro.sim.distributions.RngRegistry`
(seeded with ``fault_seed``), and a link whose fault parameters are all
zero draws nothing at all, which keeps a zero-fault plan bit-identical to
the plain network.

:class:`ChaosNetwork` composes the injector with the reliable-delivery
layer via MRO: ``_dispatch_send`` registers each message for
retransmission (ReliableNetwork) and every physical copy then runs the
fault gauntlet (FaultyNetwork).  :func:`build_network` picks the right
class for a plan: lossy plans need the reliable layer; drop-free plans
skip its ack/timer traffic entirely.
"""

from __future__ import annotations

import dataclasses

from repro.faults.plan import FaultPlan
from repro.net.message import Message
from repro.net.network import Network
from repro.net.reliable import ReliableNetwork


class FaultyNetwork(Network):
    """A network that loses, duplicates, and delays individual copies.

    On its own (without the reliable layer) a dropped message is gone
    forever — exactly what the reliable-delivery property tests need.  Use
    :func:`build_network` to get the composition a real run wants.
    """

    def __init__(self, sim, plan: FaultPlan, **kwargs):
        super().__init__(sim, **kwargs)
        self.plan = plan
        registry = plan.rng_registry()
        self._drop_rng = registry.stream("faults.drop")
        self._dup_rng = registry.stream("faults.dup")
        self._spike_rng = registry.stream("faults.spike")
        self._partitions = plan.partitions

    def _transmit(self, message: Message, extra_delay: float = 0.0) -> None:
        # Partitions cut the wire before any probabilistic draw: the check
        # is a pure function of (src, dst, now), so a partition-free plan
        # draws exactly what it drew before partitions existed, and a
        # zero-fault plan still draws nothing at all.
        if self._partitions and self.plan.cut(
            message.src, message.dst, self.sim.now
        ):
            self.stats.partition_dropped += 1
            return
        faults = self.plan.link(message.src, message.dst)
        if not faults.active:
            super()._transmit(message, extra_delay)
            return
        # Fixed draw order per copy — drop, spike, dup — so the fault
        # schedule is a pure function of the fault seed and the sequence
        # of transmissions.
        if faults.drop and self._drop_rng.random() < faults.drop:
            self.stats.dropped += 1
            return
        if (faults.spike_probability
                and self._spike_rng.random() < faults.spike_probability):
            extra_delay += faults.spike_delay
        super()._transmit(message, extra_delay)
        if faults.dup and self._dup_rng.random() < faults.dup:
            self.stats.duplicated += 1
            # Same message_id on purpose: the duplicate must be
            # recognizable to receiver-side dedup.  A fresh envelope keeps
            # the two deliveries from fighting over delivered_at.
            super()._transmit(
                dataclasses.replace(message, delivered_at=None), extra_delay
            )


class ChaosNetwork(ReliableNetwork, FaultyNetwork):
    """Lossy links underneath, exactly-once delivery on top.

    MRO does the composition: ``ReliableNetwork._dispatch_send`` registers
    the message and arms the retransmit timer; every physical copy (first
    send, retransmit, ack) then flows through
    ``FaultyNetwork._transmit``'s drop/spike/dup gauntlet before the base
    network schedules delivery.
    """


def build_network(sim, plan: FaultPlan, **kwargs) -> Network:
    """The right network for a plan.

    Lossy plans (any drop or duplication, or any partition — a copy cut
    mid-partition must be retransmitted after the heal) need the reliable
    layer to restore the exactly-once contract the protocols assume;
    drop-free plans use the bare injector, which adds no ack/timer
    traffic — so a zero-fault plan stays event-for-event identical to the
    seed path.
    """
    if plan.lossy:
        return ChaosNetwork(sim, plan=plan, policy=plan.retransmit, **kwargs)
    return FaultyNetwork(sim, plan=plan, **kwargs)
