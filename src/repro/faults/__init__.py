"""Fault injection: deterministic message loss, duplication, delay spikes,
and node crash/recover schedules.

The package is pure mechanism below the protocol layer: it may import
``repro.net`` and ``repro.sim`` (enforced by ``tools/check_layering.py``)
but never a protocol plugin, the runtime, or the experiment stack.  The
chaos harness that *drives* protocols under these faults lives in
:mod:`repro.exp.chaos`; the crash/recover surface lives on
:class:`repro.runtime.System`.

See ``docs/FAULTS.md`` for the fault model and how it relates to the
paper's reliability assumptions.
"""

from repro.faults.network import ChaosNetwork, FaultyNetwork, build_network
from repro.faults.plan import (
    CrashEvent,
    FaultPlan,
    LinkFaults,
    PartitionEvent,
)

__all__ = [
    "ChaosNetwork",
    "CrashEvent",
    "FaultPlan",
    "FaultyNetwork",
    "LinkFaults",
    "PartitionEvent",
    "build_network",
]
