"""Baseline systems: the paper's Section 1 alternatives, fully implemented."""

from repro.baselines.base import BaselineNode, BaselineSystem
from repro.baselines.manual import (
    MANUAL_COORDINATOR_ID,
    ManualNode,
    ManualVersioningSystem,
)
from repro.baselines.nocoord import NoCoordNode, NoCoordSystem
from repro.baselines.twopc import TwoPCNode, TwoPCSystem

__all__ = [
    "BaselineNode",
    "BaselineSystem",
    "MANUAL_COORDINATOR_ID",
    "ManualNode",
    "ManualVersioningSystem",
    "NoCoordNode",
    "NoCoordSystem",
    "TwoPCNode",
    "TwoPCSystem",
]
