"""The "No Coordination" baseline (Section 1).

"Global transactions can run without global synchronization between nodes.
This way, there is no performance loss due to coordination, but correctness
is sacrificed" — every subtransaction reads and writes the single live copy
of the data the moment it executes, so a query running concurrently with a
multi-node update can observe some of its writes and miss others (the
patient who "sees only partial charges from procedures performed during a
single visit").

The implementation is the :class:`~repro.baselines.base.BaselineNode`
defaults: one version (number 0), reads and writes hit it directly.  The
anomaly detector in :mod:`repro.analysis.anomalies` quantifies the
resulting fractured reads for experiment C4.
"""

from __future__ import annotations

from repro.baselines.base import BaselineNode, BaselineSystem


class NoCoordNode(BaselineNode):
    """Single-version node; inherits the no-protocol defaults."""


class NoCoordSystem(BaselineSystem):
    """A cluster with no global concurrency control at all."""

    node_class = NoCoordNode
