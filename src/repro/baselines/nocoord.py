"""The "No Coordination" baseline (Section 1).

"Global transactions can run without global synchronization between nodes.
This way, there is no performance loss due to coordination, but correctness
is sacrificed" — every subtransaction reads and writes the single live copy
of the data the moment it executes, so a query running concurrently with a
multi-node update can observe some of its writes and miss others (the
patient who "sees only partial charges from procedures performed during a
single visit").

The implementation is the :class:`~repro.runtime.plugin.ProtocolPlugin`
defaults: one version (number 0), reads and writes hit it directly.  The
anomaly detector in :mod:`repro.analysis.anomalies` quantifies the
resulting fractured reads for experiment C4.
"""

from __future__ import annotations

from repro.runtime.node import ProtocolNode
from repro.runtime.plugin import ProtocolPlugin
from repro.runtime.registry import PROTOCOLS
from repro.runtime.system import System

#: Single-version node; the runtime node running the no-protocol defaults.
NoCoordNode = ProtocolNode


class NoCoordPlugin(ProtocolPlugin):
    """The runtime defaults *are* the no-coordination protocol."""


class NoCoordSystem(System):
    """A cluster with no global concurrency control at all."""

    plugin_class = NoCoordPlugin


def _build_nocoord(node_ids, *, seed, latency, node_config, detail,
                   advancement_period, safety_delay, poll_interval,
                   allow_noncommuting, faults=None, batch_delivery=False,
                   history=None, placement=None):
    return NoCoordSystem(
        node_ids, seed=seed, latency=latency, node_config=node_config,
        detail=detail, faults=faults, batch_delivery=batch_delivery,
        history=history, placement=placement,
    )


PROTOCOLS.register(
    "nocoord", _build_nocoord, order=1,
    description="no global coordination at all (fast but fractured reads)",
)
