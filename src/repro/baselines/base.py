"""Shared scaffolding for the baseline systems (Section 1's alternatives).

The paper motivates 3V by rejecting three designs:

* **No coordination** (:mod:`repro.baselines.nocoord`) — fast but wrong;
* **Manual versioning** (:mod:`repro.baselines.manual`) — periodic version
  switches with a conservative safety delay, no termination detection;
* **Global synchronization** (:mod:`repro.baselines.twopc`) — distributed
  2PL + two-phase commit for every transaction.

Since the runtime refactor all of the machinery the baselines share —
mailbox loop, local executor, hierarchical completion notices,
compensation routing — lives in :mod:`repro.runtime`; the names this
module historically exported are kept as aliases of the runtime classes.
:class:`BaselineSystem` *is* the plain runtime :class:`~repro.runtime.System`
running the default (single-version, uncoordinated)
:class:`~repro.runtime.plugin.ProtocolPlugin`, so the analysis and
benchmark code can treat any system — 3V included — through the same
surface: ``load`` / ``submit`` / ``run_until_quiet`` / ``history``.
"""

from __future__ import annotations

from repro.runtime.node import ProtocolNode
from repro.runtime.plugin import ProtocolPlugin
from repro.runtime.system import System

__all__ = ["BaselineNode", "BaselinePlugin", "BaselineSystem"]

#: A baseline node is the shared runtime node.
BaselineNode = ProtocolNode

#: The default plugin already implements the "no protocol" semantics.
BaselinePlugin = ProtocolPlugin


class BaselineSystem(System):
    """Facade shared by the baseline implementations."""
