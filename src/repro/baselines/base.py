"""Shared scaffolding for the baseline systems (Section 1's alternatives).

The paper motivates 3V by rejecting three designs:

* **No coordination** (:mod:`repro.baselines.nocoord`) — fast but wrong;
* **Manual versioning** (:mod:`repro.baselines.manual`) — periodic version
  switches with a conservative safety delay, no termination detection;
* **Global synchronization** (:mod:`repro.baselines.twopc`) — distributed
  2PL + two-phase commit for every transaction.

All baselines share this module's :class:`BaselineSystem` facade and
:class:`BaselineNode` machinery (mailbox loop, local executor, hierarchical
completion notices, compensation routing), so the analysis and benchmark
code can treat any system — 3V included — through the same surface:
``load`` / ``submit`` / ``run_until_quiet`` / ``history``.
"""

from __future__ import annotations

import typing

from repro.core.node import NodeConfig
from repro.errors import ProtocolError
from repro.net.latency import LatencyModel
from repro.net.message import Message, MessageKind
from repro.net.network import Network
from repro.sim.distributions import RngRegistry
from repro.sim.resources import Resource
from repro.sim.simulator import Simulator
from repro.storage.locktable import LockTable
from repro.storage.mvstore import MVStore
from repro.txn.history import (
    History,
    ReadEvent,
    TxnKind,
    WaitReason,
    WriteEvent,
)
from repro.txn.runtime import (
    CompletionNotice,
    CompletionTracker,
    SubtxnInstance,
    TxnIndex,
)
from repro.txn.spec import ReadOp, TransactionSpec, WriteOp


class BaselineNode:
    """A database node with no versioning protocol of its own.

    Subclasses override the four small hooks at the bottom to define how
    versions are assigned and how reads/writes hit the store.
    """

    def __init__(self, system: "BaselineSystem", node_id: str):
        self.system = system
        self.sim = system.sim
        self.network = system.network
        self.history = system.history
        self.config = system.config
        self.rngs = system.rngs
        self.node_id = node_id
        self.store = MVStore()
        self.locks = LockTable(self.sim)
        self.executor = Resource(self.sim, capacity=self.config.executor_capacity)
        self._trackers: typing.Dict[tuple, CompletionTracker] = {}
        self._executed: typing.Set[tuple] = set()
        self._tombstones: typing.Set[tuple] = set()
        self._mailbox = self.network.register(node_id)
        self.sim.process(self._run(), name=f"node-{node_id}")

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _run(self):
        while True:
            message = yield self._mailbox.get()
            self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        kind = message.kind
        if kind in (MessageKind.SUBTXN_REQUEST, MessageKind.COMPENSATION):
            instance = message.payload
            self.sim.process(
                self.run_subtxn(instance),
                name=f"{self.node_id}:{instance.sid}",
            )
        elif kind == MessageKind.COMPLETION_NOTICE:
            self._on_completion_notice(message.payload)
        else:
            self.handle_extra(message)

    def handle_extra(self, message: Message) -> None:
        """Hook for protocol-specific control messages."""
        raise ProtocolError(
            f"node {self.node_id}: unexpected message kind {message.kind!r}"
        )

    def submit(self, instance: SubtxnInstance) -> None:
        self._mailbox.put(
            Message(
                src=self.node_id, dst=self.node_id,
                kind=MessageKind.SUBTXN_REQUEST, payload=instance,
                sent_at=self.sim.now, delivered_at=self.sim.now,
            )
        )

    # ------------------------------------------------------------------
    # Generic execution (no global coordination)
    # ------------------------------------------------------------------

    def classify(self, instance: SubtxnInstance) -> str:
        if instance.txn.is_read_only:
            return TxnKind.READ
        if instance.txn.is_well_behaved:
            return TxnKind.UPDATE
        return TxnKind.NONCOMMUTING

    def run_subtxn(self, instance: SubtxnInstance):
        kind = self.classify(instance)
        if instance.is_root:
            arrived_at = self.sim.now
            # Protocol-specific admission control (e.g. the synchronous
            # manual-versioning variant blocks new roots mid-switch).
            yield from self.admission_gate(instance, kind)
            instance.version = self.assign_version(kind)
            self.history.begin_txn(
                instance.txn.name, kind, instance.version, arrived_at,
                self.node_id,
            )
            self.history.waited(
                instance.txn.name, WaitReason.ADVANCEMENT,
                self.sim.now - arrived_at,
            )
        tracker = CompletionTracker(instance)
        self._trackers[instance.instance_key] = tracker

        queued_at = self.sim.now
        yield self.executor.request()
        self.history.waited(
            instance.txn.name, WaitReason.EXECUTOR, self.sim.now - queued_at
        )
        try:
            spec = instance.spec
            if spec.ops:
                service = self.rngs.sample("node.service", self.config.op_service)
                yield self.sim.timeout(service * len(spec.ops))
            tombstoned = self._apply_ops(instance, kind)
        finally:
            self.executor.release()

        aborting = (
            instance.spec.abort_here and not instance.compensating
            and not tombstoned
        )
        if aborting:
            self._apply_inverses(instance)
            self.history.aborted(instance.txn.name, self.sim.now, "requested")
            self.history.compensated(instance.txn.name)

        if instance.compensating:
            if not tombstoned:
                self._fan_out_compensation(
                    instance, tracker, skip=instance.comp_skip
                )
        elif aborting:
            parent_sid = instance.index.parent[instance.sid]
            if parent_sid is not None:
                self._send_compensator(instance, tracker, parent_sid)
        elif not tombstoned:
            self._dispatch_children(instance, tracker)

        if instance.is_root:
            self.history.locally_committed(instance.txn.name, self.sim.now)
        tracker.executed = True
        if tracker.complete:
            self._complete_instance(instance)

    def _apply_ops(self, instance: SubtxnInstance, kind: str) -> bool:
        original_key = (instance.txn.name, instance.sid, False)
        if instance.compensating:
            if original_key not in self._executed:
                self._tombstones.add(original_key)
                return True
            self._apply_inverses(instance)
            return False
        if original_key in self._tombstones:
            return True
        version = instance.version
        for op in instance.spec.ops:
            if isinstance(op, ReadOp):
                used, value = self.read_item(op.key, version)
                self.history.read(
                    ReadEvent(
                        time=self.sim.now, txn=instance.txn.name,
                        subtxn=instance.sid, node=self.node_id, key=op.key,
                        version_requested=version, version_used=used,
                        value=value,
                    )
                )
            elif isinstance(op, WriteOp):
                if kind == TxnKind.READ:
                    raise ProtocolError(
                        f"read-only transaction {instance.txn.name!r} "
                        "attempted a write"
                    )
                written = self.write_item(op.key, version, op.operation)
                self.history.wrote(
                    WriteEvent(
                        time=self.sim.now, txn=instance.txn.name,
                        subtxn=instance.sid, node=self.node_id, key=op.key,
                        version=version, versions_written=written,
                        operation=op.operation,
                    )
                )
        self._executed.add(instance.instance_key)
        return False

    def _apply_inverses(self, instance: SubtxnInstance) -> None:
        for op in reversed(instance.spec.ops):
            if not isinstance(op, WriteOp):
                continue
            inverse = op.operation.inverse()
            written = self.write_item(op.key, instance.version, inverse)
            self.history.wrote(
                WriteEvent(
                    time=self.sim.now, txn=instance.txn.name,
                    subtxn=instance.sid, node=self.node_id, key=op.key,
                    version=instance.version, versions_written=written,
                    operation=inverse, compensating=True,
                )
            )

    # ------------------------------------------------------------------
    # Dispatch / completion / compensation plumbing
    # ------------------------------------------------------------------

    def _dispatch_children(self, instance, tracker) -> None:
        for child_sid in instance.index.children[instance.sid]:
            child = instance.child_instance(child_sid, self.node_id)
            child.notify_key = instance.instance_key
            target = instance.index.node_of(child_sid)
            tracker.outstanding_children += 1
            self.network.send(
                self.node_id, target, MessageKind.SUBTXN_REQUEST, child
            )

    def _send_compensator(self, instance, tracker, target_sid: str) -> None:
        compensator = instance.compensator(target_sid, self.node_id)
        compensator.notify_key = instance.instance_key
        target = instance.index.node_of(target_sid)
        tracker.outstanding_children += 1
        self.network.send(
            self.node_id, target, MessageKind.COMPENSATION, compensator
        )

    def _fan_out_compensation(self, instance, tracker, skip) -> None:
        for neighbour_sid in instance.index.neighbours(instance.sid):
            if neighbour_sid != skip:
                self._send_compensator(instance, tracker, neighbour_sid)

    def _complete_instance(self, instance: SubtxnInstance) -> None:
        del self._trackers[instance.instance_key]
        if instance.notify_key is None:
            self.history.globally_completed(instance.txn.name, self.sim.now)
            return
        notice = CompletionNotice(
            txn_name=instance.txn.name,
            parent_key=instance.notify_key,
            child_key=instance.instance_key,
        )
        if instance.source_node == self.node_id:
            self._on_completion_notice(notice)
        else:
            self.network.send(
                self.node_id, instance.source_node,
                MessageKind.COMPLETION_NOTICE, notice,
            )

    def _on_completion_notice(self, notice: CompletionNotice) -> None:
        tracker = self._trackers.get(notice.parent_key)
        if tracker is None:
            raise ProtocolError(
                f"node {self.node_id}: completion notice for unknown "
                f"instance {notice.parent_key!r}"
            )
        tracker.outstanding_children -= 1
        if tracker.complete:
            self._complete_instance(tracker.instance)

    @property
    def active_subtxns(self) -> int:
        return len(self._trackers)

    # ------------------------------------------------------------------
    # Versioning hooks (override per baseline)
    # ------------------------------------------------------------------

    def admission_gate(self, instance: SubtxnInstance, kind: str):
        """Hook run before a root transaction is admitted (may yield)."""
        return
        yield  # pragma: no cover - makes this a generator

    def assign_version(self, kind: str) -> int:
        """Version for a newly arrived root transaction."""
        return 0

    def read_item(self, key, version: int):
        """Return ``(version_used, value)``."""
        used = self.store.version_max_leq(key, version)
        value = self.store.get_exact(key, used) if used is not None else None
        return used, value

    def write_item(self, key, version: int, operation) -> int:
        """Apply a write; return the number of version copies touched."""
        self.store.ensure_version(key, version)
        self.store.apply_exact(key, version, operation)
        return 1


class BaselineSystem:
    """Facade shared by the baseline implementations."""

    node_class = BaselineNode

    def __init__(
        self,
        node_ids: typing.Sequence[str],
        seed: int = 0,
        latency: typing.Optional[LatencyModel] = None,
        node_config: typing.Optional[NodeConfig] = None,
        detail: bool = True,
        fifo_links: bool = False,
    ):
        if not node_ids:
            raise ProtocolError("a system needs at least one node")
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        self.network = Network(
            self.sim, rngs=self.rngs, latency=latency, fifo_links=fifo_links
        )
        self.history = History(detail=detail)
        self.config = node_config if node_config is not None else NodeConfig()
        self.nodes: typing.Dict[str, BaselineNode] = {
            node_id: self.node_class(self, node_id) for node_id in node_ids
        }
        self._submitted = 0

    def load(self, node_id: str, key, value, version: int = 0) -> None:
        self.node(node_id).store.load(key, value, version=version)

    def node(self, node_id: str) -> BaselineNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ProtocolError(f"unknown node: {node_id!r}") from None

    def submit(self, spec: TransactionSpec) -> None:
        index = TxnIndex(spec)
        instance = SubtxnInstance(
            txn=spec, index=index, sid=index.root_id, version=None,
            source_node=spec.root.node,
        )
        self.node(spec.root.node).submit(instance)
        self._submitted += 1

    def submit_at(self, time: float, spec: TransactionSpec) -> None:
        self.sim.schedule(time - self.sim.now, self.submit, spec)

    @property
    def submitted_count(self) -> int:
        return self._submitted

    def value_at(self, node_id: str, key, version: typing.Optional[int] = None):
        node = self.node(node_id)
        bound = self.current_read_version(node) if version is None else version
        return node.store.read_max_leq(key, bound, default=None)

    def current_read_version(self, node: BaselineNode) -> int:
        """What version a query arriving now would use (hook)."""
        return 0

    def run(self, until: typing.Optional[float] = None) -> None:
        self.sim.run(until=until)

    def run_for(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def run_until_quiet(self, limit: float = float("inf")) -> None:
        while self.sim.pending_count:
            next_time = self.sim.peek_time()
            if next_time is not None and next_time > limit:
                raise ProtocolError(
                    f"system not quiet by simulated time {limit!r}"
                )
            self.sim.step()

    def stop_policy(self) -> None:
        """Parity with :class:`~repro.core.system.ThreeVSystem` (no-op)."""
