"""The "Global Synchronization" baseline (Section 1).

"The system can treat all global transactions ... as full-fledged
distributed transactions, performing global concurrency control and
two-phase commitment.  This solution guarantees global serializability ...
However, the delays due to global synchronization are often prohibitive."

Every transaction — reads included — runs under distributed strict
two-phase locking (shared NR locks for reads, exclusive NW locks for
writes) and commits with a full two-phase protocol (execution reports,
prepare round, votes, decision, acks).  Locks are held until the decision
arrives at each participant, so lock hold times include wide-area round
trips; deadlocks are avoided with wait-die on the root transaction's
submit timestamp, and aborted transactions can be retried a configurable
number of times.

The 2PL/2PC mechanics are :class:`~repro.runtime.twophase.TwoPhaseEngine`
(shared verbatim with NC3V); this baseline runs *everything* — not just
non-commuting transactions — through it, at the single version 0.

The point of this baseline is the *shape* of its cost: latency grows with
node count and network delay, readers block writers and vice versa, and
throughput saturates — exactly the behaviour that makes practitioners
turn off global coordination in data recording systems.
"""

from __future__ import annotations

import typing

from repro.net.message import Message
from repro.runtime.node import ProtocolNode
from repro.runtime.plugin import ProtocolPlugin
from repro.runtime.registry import PROTOCOLS
from repro.runtime.system import System
from repro.runtime.twophase import TwoPhaseEngine
from repro.txn.runtime import SubtxnInstance, TxnIndex
from repro.txn.spec import TransactionSpec

#: A 2PC node is the runtime node; the plugin attaches its engine as
#: ``node.twophase`` (with ``commits`` / ``deadlock_aborts`` counters).
TwoPCNode = ProtocolNode


class TwoPCEngine(TwoPhaseEngine):
    """The shared engine, reporting root outcomes for the retry loop."""

    def on_finished(self, instance: SubtxnInstance, committed: bool) -> None:
        self.node.system.txn_finished(instance.txn, committed)


class TwoPCPlugin(ProtocolPlugin):
    """Divert every transaction into the two-phase-commit engine."""

    def init_node(self, node) -> None:
        node.twophase = TwoPCEngine(node)

    def takeover(self, node, instance: SubtxnInstance, kind: str):
        return node.twophase.run_subtxn(instance)

    def handle_message(self, node, message: Message) -> None:
        if node.twophase.handles(message.kind):
            node.twophase.dispatch(message)
        else:
            super().handle_message(node, message)

    def on_recover(self, node) -> None:
        node.twophase.on_recover()


class TwoPCSystem(System):
    """A cluster where every transaction is a full distributed transaction.

    Args:
        retries: How many times an aborted transaction is automatically
            resubmitted (each attempt appears in the history under
            ``name~rK``).
        retry_backoff: Base delay before resubmission; doubles on each
            successive attempt (exponential backoff, so retries survive
            lock holders whose 2PC rounds span several network RTTs).
    """

    plugin_class = TwoPCPlugin

    def __init__(self, node_ids, retries: int = 3,
                 retry_backoff: float = 0.5, **kwargs):
        super().__init__(node_ids, **kwargs)
        self.retries = retries
        self.retry_backoff = retry_backoff
        self._attempts: typing.Dict[str, int] = {}

    def txn_finished(self, spec: TransactionSpec, committed: bool) -> None:
        """Root-node callback: schedule a retry for an aborted transaction."""
        if committed:
            return
        base_name = spec.name.split("~r")[0]
        attempt = self._attempts.get(base_name, 0)
        if attempt >= self.retries:
            return
        self._attempts[base_name] = attempt + 1
        retry_spec = _rename(spec, f"{base_name}~r{attempt + 1}")
        backoff = self.retry_backoff * (2 ** attempt)
        self.sim.schedule(backoff, self._resubmit, retry_spec)

    def _resubmit(self, spec: TransactionSpec) -> None:
        index = TxnIndex(spec)
        if self.placement is not None and spec.is_read_only:
            self.placement.route_reads(index)
        root_node = index.node_of(index.root_id)
        instance = SubtxnInstance(
            txn=spec, index=index, sid=index.root_id, version=None,
            source_node=root_node,
        )
        self.node(root_node).submit(instance)


def _rename(spec: TransactionSpec, new_name: str) -> TransactionSpec:
    """Clone a spec under a new name (tree structure is shared, immutable)."""
    return TransactionSpec(
        name=new_name, root=spec.root, priority_hint=spec.priority_hint
    )


def _build_2pc(node_ids, *, seed, latency, node_config, detail,
               advancement_period, safety_delay, poll_interval,
               allow_noncommuting, faults=None, batch_delivery=False,
               history=None, placement=None):
    return TwoPCSystem(
        node_ids, seed=seed, latency=latency, node_config=node_config,
        detail=detail, faults=faults, batch_delivery=batch_delivery,
        history=history, placement=placement,
    )


PROTOCOLS.register(
    "2pc", _build_2pc, order=4, strict_audit=True,
    description="distributed strict 2PL + two-phase commit for every "
                "transaction",
)
