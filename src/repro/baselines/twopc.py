"""The "Global Synchronization" baseline (Section 1).

"The system can treat all global transactions ... as full-fledged
distributed transactions, performing global concurrency control and
two-phase commitment.  This solution guarantees global serializability ...
However, the delays due to global synchronization are often prohibitive."

Every transaction — reads included — runs under distributed strict
two-phase locking (shared NR locks for reads, exclusive NW locks for
writes) and commits with a full two-phase protocol (execution reports,
prepare round, votes, decision, acks).  Locks are held until the decision
arrives at each participant, so lock hold times include wide-area round
trips; deadlocks are avoided with wait-die on the root transaction's
submit timestamp, and aborted transactions can be retried a configurable
number of times.

The point of this baseline is the *shape* of its cost: latency grows with
node count and network delay, readers block writers and vice versa, and
throughput saturates — exactly the behaviour that makes practitioners
turn off global coordination in data recording systems.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.baselines.base import BaselineNode, BaselineSystem
from repro.errors import DeadlockAbort, ProtocolError
from repro.net.message import Message, MessageKind
from repro.sim.events import Event
from repro.storage.locktable import LockMode
from repro.storage.values import undo_operation
from repro.txn.history import ReadEvent, WaitReason, WriteEvent
from repro.txn.runtime import SubtxnInstance, TxnIndex
from repro.txn.spec import ReadOp, TransactionSpec, WriteOp


@dataclasses.dataclass
class _UndoEntry:
    key: typing.Hashable
    undo: typing.Any


@dataclasses.dataclass
class _ParticipantState:
    txn_name: str
    undo_log: typing.List[_UndoEntry] = dataclasses.field(default_factory=list)
    failed: bool = False


@dataclasses.dataclass
class _RootState:
    instance: SubtxnInstance
    outstanding: typing.Set[str] = dataclasses.field(default_factory=set)
    participants: typing.Set[str] = dataclasses.field(default_factory=set)
    any_failure: bool = False
    reports_done: Event = None
    votes: typing.Set[str] = dataclasses.field(default_factory=set)
    vote_no: bool = False
    votes_done: Event = None
    acks: typing.Set[str] = dataclasses.field(default_factory=set)
    acks_done: Event = None
    expected_voters: typing.Set[str] = dataclasses.field(default_factory=set)
    expected_ackers: typing.Set[str] = dataclasses.field(default_factory=set)


class TwoPCNode(BaselineNode):
    """A node running distributed strict 2PL with two-phase commit."""

    _EXEC_REPORT = "exec-report"
    _PREPARE_VOTE = "prepare-vote"

    def __init__(self, system: "TwoPCSystem", node_id: str):
        super().__init__(system, node_id)
        self._participants: typing.Dict[str, _ParticipantState] = {}
        self._roots: typing.Dict[str, _RootState] = {}
        self.deadlock_aborts = 0
        self.commits = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_subtxn(self, instance: SubtxnInstance):
        node_id = self.node_id
        txn_name = instance.txn.name
        if instance.is_root:
            instance.version = 0
            self.history.begin_txn(
                txn_name, self.classify(instance), 0, self.sim.now, node_id
            )

        state = self._participants.get(txn_name)
        if state is None:
            state = _ParticipantState(txn_name=txn_name)
            self._participants[txn_name] = state

        ok = yield from self._execute_locally(instance, state)

        dispatched: typing.List[str] = []
        if ok:
            for child_sid in instance.index.children[instance.sid]:
                child = instance.child_instance(child_sid, node_id)
                target = instance.index.node_of(child_sid)
                self.network.send(
                    node_id, target, MessageKind.SUBTXN_REQUEST, child
                )
                dispatched.append(child_sid)

        if instance.is_root:
            yield from self._coordinate(instance, ok, dispatched)
        else:
            root_node = instance.index.node_of(instance.index.root_id)
            self.network.send(
                node_id, root_node, MessageKind.VOTE,
                (self._EXEC_REPORT, txn_name, instance.sid, node_id, ok,
                 dispatched),
            )

    def _execute_locally(self, instance: SubtxnInstance,
                         state: _ParticipantState):
        txn_name = instance.txn.name
        spec = instance.spec
        record = self.history.txns[txn_name]
        timestamp = record.submit_time

        for op in spec.ops:
            mode = LockMode.NW if isinstance(op, WriteOp) else LockMode.NR
            queued_at = self.sim.now
            event = self.locks.acquire(op.key, mode, txn_name, timestamp)
            try:
                yield event
            except DeadlockAbort:
                self.deadlock_aborts += 1
                state.failed = True
                return False
            self.history.waited(
                txn_name, WaitReason.LOCK, self.sim.now - queued_at
            )

        queued_at = self.sim.now
        yield self.executor.request()
        self.history.waited(
            txn_name, WaitReason.EXECUTOR, self.sim.now - queued_at
        )
        try:
            if spec.ops:
                service = self.rngs.sample("node.service", self.config.op_service)
                yield self.sim.timeout(service * len(spec.ops))
            for op in spec.ops:
                if isinstance(op, ReadOp):
                    used, value = self.read_item(op.key, 0)
                    self.history.read(
                        ReadEvent(
                            time=self.sim.now, txn=txn_name,
                            subtxn=instance.sid, node=self.node_id,
                            key=op.key, version_requested=0,
                            version_used=used, value=value,
                        )
                    )
                else:
                    self.store.ensure_version(op.key, 0)
                    previous = self.store.get_exact(op.key, 0)
                    state.undo_log.append(
                        _UndoEntry(op.key, undo_operation(op.operation, previous))
                    )
                    self.store.apply_exact(op.key, 0, op.operation)
                    self.history.wrote(
                        WriteEvent(
                            time=self.sim.now, txn=txn_name,
                            subtxn=instance.sid, node=self.node_id,
                            key=op.key, version=0, versions_written=1,
                            operation=op.operation,
                        )
                    )
        finally:
            self.executor.release()
        return True

    # ------------------------------------------------------------------
    # Two-phase commit (root side)
    # ------------------------------------------------------------------

    def _coordinate(self, instance: SubtxnInstance, root_ok: bool,
                    dispatched: typing.List[str]):
        txn_name = instance.txn.name
        state = _RootState(instance=instance)
        state.reports_done = Event(self.sim)
        state.votes_done = Event(self.sim)
        state.acks_done = Event(self.sim)
        state.outstanding = set(dispatched)
        state.participants = {self.node_id}
        state.any_failure = not root_ok
        self._roots[txn_name] = state

        remote_wait_start = self.sim.now
        if state.outstanding:
            yield state.reports_done

        decision_commit = not state.any_failure
        # Sorted: iteration drives message sends (and therefore latency RNG
        # draws), so set order must not leak the per-process hash seed.
        remote = sorted(state.participants - {self.node_id})
        if decision_commit and remote:
            state.expected_voters = set(remote)
            for participant in remote:
                self.network.send(
                    self.node_id, participant, MessageKind.PREPARE, txn_name
                )
            yield state.votes_done
            decision_commit = not state.vote_no

        self._apply_decision_locally(txn_name, decision_commit)
        if remote:
            state.expected_ackers = set(remote)
            for participant in remote:
                self.network.send(
                    self.node_id, participant, MessageKind.DECISION,
                    (txn_name, decision_commit),
                )
        self.history.waited(
            txn_name, WaitReason.REMOTE, self.sim.now - remote_wait_start
        )
        if decision_commit:
            self.commits += 1
            self.history.locally_committed(txn_name, self.sim.now)
        else:
            self.history.aborted(txn_name, self.sim.now, "2pc-abort")
        if remote:
            yield state.acks_done
        self.history.globally_completed(txn_name, self.sim.now)
        del self._roots[txn_name]
        self.system.txn_finished(instance.txn, decision_commit)

    # ------------------------------------------------------------------
    # Control messages
    # ------------------------------------------------------------------

    def handle_extra(self, message: Message) -> None:
        kind = message.kind
        if kind == MessageKind.VOTE:
            self._on_vote(message)
        elif kind == MessageKind.PREPARE:
            self._on_prepare(message)
        elif kind == MessageKind.DECISION:
            self._on_decision(message)
        elif kind == MessageKind.DECISION_ACK:
            self._on_decision_ack(message)
        else:
            super().handle_extra(message)

    def _on_vote(self, message: Message) -> None:
        tag = message.payload[0]
        if tag == self._EXEC_REPORT:
            _tag, txn_name, sid, participant, ok, dispatched = message.payload
            state = self._roots.get(txn_name)
            if state is None:
                raise ProtocolError(f"exec report for unknown root {txn_name!r}")
            state.outstanding.discard(sid)
            state.outstanding.update(dispatched)
            state.participants.add(participant)
            if not ok:
                state.any_failure = True
            if not state.outstanding and not state.reports_done.triggered:
                state.reports_done.succeed()
        elif tag == self._PREPARE_VOTE:
            _tag, txn_name, participant, vote_yes = message.payload
            state = self._roots.get(txn_name)
            if state is None:
                raise ProtocolError(f"vote for unknown root {txn_name!r}")
            state.votes.add(participant)
            if not vote_yes:
                state.vote_no = True
            if state.votes >= state.expected_voters and not (
                state.votes_done.triggered
            ):
                state.votes_done.succeed()
        else:
            raise ProtocolError(f"unknown vote tag {tag!r}")

    def _on_prepare(self, message: Message) -> None:
        txn_name = message.payload
        state = self._participants.get(txn_name)
        vote_yes = state is not None and not state.failed
        self.network.send(
            self.node_id, message.src, MessageKind.VOTE,
            (self._PREPARE_VOTE, txn_name, self.node_id, vote_yes),
        )

    def _on_decision(self, message: Message) -> None:
        txn_name, commit = message.payload
        self._apply_decision_locally(txn_name, commit)
        self.network.send(
            self.node_id, message.src, MessageKind.DECISION_ACK,
            (txn_name, self.node_id),
        )

    def _on_decision_ack(self, message: Message) -> None:
        txn_name, participant = message.payload
        state = self._roots.get(txn_name)
        if state is None:
            raise ProtocolError(f"decision ack for unknown root {txn_name!r}")
        state.acks.add(participant)
        if state.acks >= state.expected_ackers and not state.acks_done.triggered:
            state.acks_done.succeed()

    def _apply_decision_locally(self, txn_name: str, commit: bool) -> None:
        state = self._participants.pop(txn_name, None)
        if state is None:
            return
        if not commit:
            for entry in reversed(state.undo_log):
                self.store.apply_exact(entry.key, 0, entry.undo)
        self.locks.release_all(txn_name)
        self.locks.cancel_waits(txn_name)


class TwoPCSystem(BaselineSystem):
    """A cluster where every transaction is a full distributed transaction.

    Args:
        retries: How many times an aborted transaction is automatically
            resubmitted (each attempt appears in the history under
            ``name~rK``).
        retry_backoff: Base delay before resubmission; doubles on each
            successive attempt (exponential backoff, so retries survive
            lock holders whose 2PC rounds span several network RTTs).
    """

    node_class = TwoPCNode

    def __init__(self, node_ids, retries: int = 3,
                 retry_backoff: float = 0.5, **kwargs):
        super().__init__(node_ids, **kwargs)
        self.retries = retries
        self.retry_backoff = retry_backoff
        self._attempts: typing.Dict[str, int] = {}

    def txn_finished(self, spec: TransactionSpec, committed: bool) -> None:
        """Root-node callback: schedule a retry for an aborted transaction."""
        if committed:
            return
        base_name = spec.name.split("~r")[0]
        attempt = self._attempts.get(base_name, 0)
        if attempt >= self.retries:
            return
        self._attempts[base_name] = attempt + 1
        retry_spec = _rename(spec, f"{base_name}~r{attempt + 1}")
        backoff = self.retry_backoff * (2 ** attempt)
        self.sim.schedule(backoff, self._resubmit, retry_spec)

    def _resubmit(self, spec: TransactionSpec) -> None:
        index = TxnIndex(spec)
        instance = SubtxnInstance(
            txn=spec, index=index, sid=index.root_id, version=None,
            source_node=spec.root.node,
        )
        self.node(spec.root.node).submit(instance)


def _rename(spec: TransactionSpec, new_name: str) -> TransactionSpec:
    """Clone a spec under a new name (tree structure is shared, immutable)."""
    return TransactionSpec(
        name=new_name, root=spec.root, priority_hint=spec.priority_hint
    )
