"""The "Manual Versioning" baseline (Section 1).

"One can accumulate update transactions for some period, say a month, in a
new version that is not available for reading.  Some time after the month
ends, we *hope* that all updates have been applied to that month's version
... Meanwhile, accumulation of update transactions for the next month takes
place in a new version."

Two variants are provided:

* **Asynchronous** (default): every ``period`` the coordinator broadcasts a
  new update version, and after a fixed ``safety_delay`` makes the previous
  version readable — with *no termination detection*.  A straggler
  subtransaction that lands after the switch writes only its own version's
  copy (there is no dual-write rule), so an undersized safety delay yields
  exactly the paper's failure mode: "a bill generation query ... may still
  report only a part of the charges from the January 31st procedures".
* **Synchronous** (``synchronous=True``): the coordinator freezes admission
  of new root transactions, drains all in-flight transactions, switches
  both versions, and thaws — correct, but user transactions stall for the
  whole drain (the global synchronization the 3V protocol exists to avoid;
  used as the blocking comparator in experiments C2/C7).
"""

from __future__ import annotations

import typing

from repro.errors import ProtocolError
from repro.net.message import Message, MessageKind
from repro.runtime.node import ProtocolNode
from repro.runtime.plugin import ProtocolPlugin
from repro.runtime.registry import PROTOCOLS
from repro.runtime.system import System
from repro.sim.events import Event
from repro.txn.history import TxnKind

MANUAL_COORDINATOR_ID = "manual-coordinator"

#: A manual-versioning node is the runtime node with ``vu``/``vr`` and the
#: freeze/thaw state attached by the plugin.
ManualNode = ProtocolNode


class ManualPlugin(ProtocolPlugin):
    """Per-node policy: switch versions on command, with no safety checks."""

    def init_node(self, node) -> None:
        node.vu = 1
        node.vr = 0
        node._frozen = False
        node._thaw = Event(node.sim)
        node._thaw.succeed()  # starts open

    # -- versioning hooks ------------------------------------------------

    def assign_version(self, node, kind: str) -> int:
        return node.vr if kind == TxnKind.READ else node.vu

    def admission_gate(self, node, instance, kind):
        return self._gate(node)

    def _gate(self, node):
        while node._frozen:
            yield node._thaw

    # write_item: inherited apply_exact — deliberately *no* dual-write
    # rule; a straggler updates only its own version's copy.

    # -- control messages --------------------------------------------------

    def handle_message(self, node, message: Message) -> None:
        kind = message.kind
        if kind == MessageKind.START_ADVANCEMENT:
            if isinstance(message.payload, tuple):
                # Synchronous switch: new vu, new vr, and thaw arrive as
                # one atomic message (separate messages could be reordered
                # by the network, letting a thawed root see a stale vu).
                vu_new, vr_new = message.payload
                node.vu = max(node.vu, vu_new)
                node.vr = max(node.vr, vr_new)
                if node._frozen:
                    node._frozen = False
                    node._thaw.succeed()
            else:
                node.vu = max(node.vu, message.payload)
        elif kind == MessageKind.READ_ADVANCE:
            node.vr = max(node.vr, message.payload)
        elif kind == MessageKind.FREEZE:
            if not node._frozen:
                node._frozen = True
                node._thaw = Event(node.sim)
            node.network.send(
                node.node_id, message.src, MessageKind.FREEZE_ACK,
                node.node_id,
            )
        elif kind == MessageKind.UNFREEZE:
            if node._frozen:
                node._frozen = False
                node._thaw.succeed()
        elif kind == MessageKind.ACTIVE_QUERY:
            node.network.send(
                node.node_id, message.src, MessageKind.ACTIVE_REPLY,
                (node.node_id, node.active_subtxns),
            )
        else:
            raise ProtocolError(
                f"manual node {node.node_id}: unexpected {kind!r}"
            )


class ManualVersioningSystem(System):
    """Period-driven versioning with a fixed (hoped-sufficient) delay.

    Args:
        period: Time between update-version switches.
        safety_delay: How long after a switch the previous version becomes
            readable (asynchronous variant only).  The paper's practice is
            to set this "conservatively high", trading staleness for a
            lower chance of reading a half-applied transaction.
        synchronous: Use the blocking drain-the-world variant instead.
        poll_interval: Drain-poll cadence for the synchronous variant.
        start_after: Time of the first switch (defaults to ``period``).
    """

    plugin_class = ManualPlugin

    def __init__(
        self,
        node_ids: typing.Sequence[str],
        period: float,
        safety_delay: float = 0.0,
        synchronous: bool = False,
        poll_interval: float = 0.25,
        start_after: typing.Optional[float] = None,
        **kwargs,
    ):
        super().__init__(node_ids, **kwargs)
        if period <= 0:
            raise ProtocolError(f"switch period must be > 0: {period}")
        self.period = period
        self.safety_delay = safety_delay
        self.synchronous = synchronous
        self.poll_interval = poll_interval
        self.start_after = period if start_after is None else start_after
        self.vu = 1
        self.vr = 0
        #: When each version stopped accepting new updates (staleness base).
        self.version_closed_at: typing.Dict[int, float] = {}
        #: When each version became readable.
        self.version_readable_at: typing.Dict[int, float] = {0: 0.0}
        self._mailbox = self.network.register(MANUAL_COORDINATOR_ID)
        self._driver = self.sim.process(
            self._sync_driver() if synchronous else self._async_driver(),
            name="manual-switcher",
        )

    def current_read_version(self, node) -> int:
        return node.vr

    def stop_policy(self) -> None:
        self._driver.kill()

    # ------------------------------------------------------------------
    # Asynchronous (classic) switching
    # ------------------------------------------------------------------

    def _async_driver(self):
        yield self.sim.timeout(self.start_after)
        while True:
            old_update = self.vu
            self.vu += 1
            self.version_closed_at[old_update] = self.sim.now
            self.network.broadcast_to(
                MANUAL_COORDINATOR_ID, list(self.nodes),
                MessageKind.START_ADVANCEMENT, self.vu,
            )
            self.sim.process(
                self._delayed_read_switch(old_update),
                name=f"read-switch-{old_update}",
            )
            yield self.sim.timeout(self.period)

    def _delayed_read_switch(self, version: int):
        yield self.sim.timeout(self.safety_delay)
        self.vr = max(self.vr, version)
        self.version_readable_at[version] = self.sim.now
        self.network.broadcast_to(
            MANUAL_COORDINATOR_ID, list(self.nodes),
            MessageKind.READ_ADVANCE, version,
        )

    # ------------------------------------------------------------------
    # Synchronous (blocking) switching
    # ------------------------------------------------------------------

    def _sync_driver(self):
        yield self.sim.timeout(self.start_after)
        while True:
            self.network.broadcast_to(
                MANUAL_COORDINATOR_ID, list(self.nodes), MessageKind.FREEZE
            )
            # Wait until every node is actually frozen before checking for
            # quiescence — otherwise a root admitted on a not-yet-frozen
            # node can slip past a drain poll that already sampled it.
            acked: typing.Set[str] = set()
            while len(acked) < len(self.nodes):
                message = yield self._mailbox.get()
                if message.kind != MessageKind.FREEZE_ACK:
                    raise ProtocolError(
                        f"manual coordinator: unexpected {message.kind!r} "
                        "while collecting freeze acks"
                    )
                acked.add(message.payload)
            yield from self._drain()
            old_update = self.vu
            self.vu += 1
            self.vr = old_update
            self.version_closed_at[old_update] = self.sim.now
            self.version_readable_at[old_update] = self.sim.now
            # One atomic switch-and-thaw message per node (see handler).
            self.network.broadcast_to(
                MANUAL_COORDINATOR_ID, list(self.nodes),
                MessageKind.START_ADVANCEMENT, (self.vu, old_update),
            )
            yield self.sim.timeout(self.period)

    def _drain(self):
        """Poll until every node reports zero active subtransactions."""
        while True:
            self.network.broadcast_to(
                MANUAL_COORDINATOR_ID, list(self.nodes),
                MessageKind.ACTIVE_QUERY,
            )
            replies: typing.Dict[str, int] = {}
            while len(replies) < len(self.nodes):
                message = yield self._mailbox.get()
                if message.kind != MessageKind.ACTIVE_REPLY:
                    raise ProtocolError(
                        f"manual coordinator: unexpected {message.kind!r}"
                    )
                node_id, active = message.payload
                replies[node_id] = active
            if all(count == 0 for count in replies.values()):
                return
            yield self.sim.timeout(self.poll_interval)


def _build_manual(node_ids, *, seed, latency, node_config, detail,
                  advancement_period, safety_delay, poll_interval,
                  allow_noncommuting, faults=None, batch_delivery=False,
                  history=None, placement=None):
    return ManualVersioningSystem(
        node_ids, period=advancement_period, safety_delay=safety_delay,
        seed=seed, latency=latency, node_config=node_config, detail=detail,
        faults=faults, batch_delivery=batch_delivery, history=history,
        placement=placement,
    )


def _build_manual_sync(node_ids, *, seed, latency, node_config, detail,
                       advancement_period, safety_delay, poll_interval,
                       allow_noncommuting, faults=None, batch_delivery=False,
                       history=None, placement=None):
    return ManualVersioningSystem(
        node_ids, period=advancement_period, synchronous=True,
        seed=seed, latency=latency, node_config=node_config, detail=detail,
        faults=faults, batch_delivery=batch_delivery, history=history,
        placement=placement,
    )


PROTOCOLS.register(
    "manual", _build_manual, order=2, detects_termination=False,
    description="periodic version switches with a fixed safety delay "
                "(no termination detection)",
)
PROTOCOLS.register(
    "manual-sync", _build_manual_sync, order=3,
    description="manual versioning's blocking freeze-drain-switch variant",
)
