"""Message types exchanged between simulated nodes.

Every inter-node interaction in the library — subtransaction dispatch,
completion notices, version-advancement control traffic, lock releases,
two-phase-commit votes — travels as a :class:`Message`.  Keeping a single
envelope type lets the network layer account for *all* traffic uniformly,
which feeds the paper's "messages are asynchronous with user transactions"
accounting (experiment C7 and the message-overhead columns of C1).
"""

from __future__ import annotations

import dataclasses
import itertools
import sys
import typing

__all__ = ["Message", "MessageKind"]

# Kind constants are interned: every message carries one, and the stats /
# mailbox dispatch paths key dicts by kind on every send, so identity-equal
# strings let those lookups hit CPython's pointer-compare fast path.
_intern = sys.intern


class MessageKind:
    """String constants naming every message type in the system."""

    # User-transaction traffic.
    SUBTXN_REQUEST = _intern("subtxn-request")
    COMPLETION_NOTICE = _intern("completion-notice")
    COMPENSATION = _intern("compensation")
    # 3V version-advancement control traffic (Section 4.3 phases).
    START_ADVANCEMENT = _intern("start-advancement")
    START_ADVANCEMENT_ACK = _intern("start-advancement-ack")
    COUNTER_READ = _intern("counter-read")
    COUNTER_READ_REPLY = _intern("counter-read-reply")
    READ_ADVANCE = _intern("read-advance")
    READ_ADVANCE_ACK = _intern("read-advance-ack")
    GARBAGE_COLLECT = _intern("garbage-collect")
    GARBAGE_COLLECT_ACK = _intern("garbage-collect-ack")
    # Coordinator lease heartbeat (failover mode only: sent solely when a
    # lease interval is configured, so default runs carry none of these).
    COORDINATOR_HEARTBEAT = _intern("coordinator-heartbeat")
    # Baseline control traffic (manual versioning / synchronous switches).
    FREEZE = _intern("freeze")
    FREEZE_ACK = _intern("freeze-ack")
    UNFREEZE = _intern("unfreeze")
    ACTIVE_QUERY = _intern("active-query")
    ACTIVE_REPLY = _intern("active-reply")
    # Replica refresh traffic (recovery-readability, repro.placement).
    REFRESH_REQUEST = _intern("refresh-request")
    REFRESH_REPLY = _intern("refresh-reply")
    # NC3V / two-phase commit traffic (Section 5).
    LOCK_RELEASE = _intern("lock-release")
    PREPARE = _intern("prepare")
    VOTE = _intern("vote")
    DECISION = _intern("decision")
    DECISION_ACK = _intern("decision-ack")
    # Transport-level acknowledgement (repro.net.reliable).  Deliberately in
    # none of the kind buckets below: acks are consumed by the transport and
    # never reach a mailbox, so they must not inflate the paper's
    # user/control/commit message accounting.
    NET_ACK = _intern("net-ack")

    USER_KINDS = frozenset({SUBTXN_REQUEST, COMPLETION_NOTICE, COMPENSATION})
    CONTROL_KINDS = frozenset(
        {
            START_ADVANCEMENT,
            START_ADVANCEMENT_ACK,
            COUNTER_READ,
            COUNTER_READ_REPLY,
            READ_ADVANCE,
            READ_ADVANCE_ACK,
            GARBAGE_COLLECT,
            GARBAGE_COLLECT_ACK,
            COORDINATOR_HEARTBEAT,
            FREEZE,
            FREEZE_ACK,
            UNFREEZE,
            ACTIVE_QUERY,
            ACTIVE_REPLY,
            REFRESH_REQUEST,
            REFRESH_REPLY,
        }
    )
    COMMIT_KINDS = frozenset({LOCK_RELEASE, PREPARE, VOTE, DECISION, DECISION_ACK})


_message_ids = itertools.count()


@dataclasses.dataclass(slots=True)
class Message:
    """An envelope delivered from one node to another.

    Attributes:
        src: Sending node id.
        dst: Receiving node id.
        kind: One of the :class:`MessageKind` constants.
        payload: Arbitrary message body (specs, counters, version numbers).
        sent_at: Simulation time the message entered the network.
        delivered_at: Simulation time it reached the destination mailbox
            (filled in by the network on delivery).
        message_id: Unique per-simulation sequence number.
    """

    src: str
    dst: str
    kind: str
    payload: typing.Any = None
    sent_at: float = 0.0
    delivered_at: typing.Optional[float] = None
    message_id: int = dataclasses.field(default_factory=lambda: next(_message_ids))

    @property
    def latency(self) -> float:
        """Network delay experienced by the message (delivery - send)."""
        if self.delivered_at is None:
            raise ValueError("message not delivered yet")
        return self.delivered_at - self.sent_at

    @property
    def is_user_traffic(self) -> bool:
        """Whether the message carries user-transaction work."""
        return self.kind in MessageKind.USER_KINDS

    def __repr__(self) -> str:
        return (
            f"Message(#{self.message_id} {self.kind} {self.src}->{self.dst} "
            f"@{self.sent_at:.3f})"
        )


# --- accelerated-build hook (stripped from compiled mirrors) ----------
from repro._accel import install as _accel_install  # noqa: E402

_accel_install(globals())
# --- end accelerated-build hook ---------------------------------------
