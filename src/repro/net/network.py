"""The simulated message network.

The network owns one mailbox (:class:`~repro.sim.resources.Store`) per
registered endpoint and delivers messages after a latency sampled from the
configured :class:`~repro.net.latency.LatencyModel`.  Delivery is
*non-FIFO* by default — two messages on the same link may arrive out of
order whenever the latency distribution has variance — because the 3V
protocol is explicitly designed for that regime (a subtransaction can
overtake the start-advancement notice, Table 1 time 19).  Per-link FIFO can
be enabled for protocols that assume ordered channels.
"""

from __future__ import annotations

import typing

from repro._accel import mypyc_attr
from repro.errors import SimulationError
from repro.net.latency import LatencyModel, constant_latency
from repro.net.message import Message, MessageKind
from repro.sim.distributions import RngRegistry
from repro.sim.resources import Store
from repro.sim.simulator import Simulator

__all__ = ["Network", "NetworkStats"]


class NetworkStats:
    """Aggregate traffic accounting, split by message kind.

    Internally one dict of ``kind -> [count, total_latency]`` cells, so the
    per-send :meth:`record` call (made for every message in the system) is a
    single lookup and two in-place adds.  The ``sent_by_kind`` /
    ``total_latency_by_kind`` views are materialized on access.

    The four plain-int fault counters stay zero on a fault-free network;
    they are bumped by the reliable-delivery layer
    (:mod:`repro.net.reliable`) and the fault injector
    (:mod:`repro.faults`).
    """

    __slots__ = ("_by_kind", "retransmits", "dup_suppressed", "dropped",
                 "duplicated", "batches", "batched_messages",
                 "partition_dropped", "stale_epoch_dropped")

    def __init__(self):
        self._by_kind: typing.Dict[str, typing.List[float]] = {}
        #: Retransmissions sent by the reliable-delivery layer.
        self.retransmits = 0
        #: Duplicate deliveries suppressed by receiver-side dedup.
        self.dup_suppressed = 0
        #: Transmissions dropped by the fault injector.
        self.dropped = 0
        #: Extra copies injected by the fault injector.
        self.duplicated = 0
        #: Copies cut by an active network partition (fault injector).
        self.partition_dropped = 0
        #: Advancement messages fenced for carrying a dead coordinator
        #: incarnation's epoch (bumped by the 3V control plane).
        self.stale_epoch_dropped = 0
        #: Batch delivery events scheduled, one per distinct delivery
        #: tick (``batch_delivery`` mode only).
        self.batches = 0
        #: Messages that rode along in an already-scheduled batch.
        self.batched_messages = 0

    def record(self, kind: str, latency: float) -> None:
        try:
            cell = self._by_kind[kind]
        except KeyError:
            self._by_kind[kind] = [1, latency]
            return
        cell[0] += 1
        cell[1] += latency

    @property
    def sent_by_kind(self) -> typing.Dict[str, int]:
        """``{kind: number of messages sent}`` (materialized copy)."""
        return {kind: cell[0] for kind, cell in self._by_kind.items()}

    @property
    def total_latency_by_kind(self) -> typing.Dict[str, float]:
        """``{kind: summed delivery latency}`` (materialized copy)."""
        return {kind: cell[1] for kind, cell in self._by_kind.items()}

    @property
    def total_sent(self) -> int:
        return sum(cell[0] for cell in self._by_kind.values())

    @property
    def user_messages(self) -> int:
        """Messages carrying user-transaction work."""
        return sum(
            cell[0]
            for kind, cell in self._by_kind.items()
            if kind in MessageKind.USER_KINDS
        )

    @property
    def control_messages(self) -> int:
        """Version-advancement control messages."""
        return sum(
            cell[0]
            for kind, cell in self._by_kind.items()
            if kind in MessageKind.CONTROL_KINDS
        )

    @property
    def commit_messages(self) -> int:
        """Locking / two-phase-commit messages (NC3V and 2PC baseline)."""
        return sum(
            cell[0]
            for kind, cell in self._by_kind.items()
            if kind in MessageKind.COMMIT_KINDS
        )


@mypyc_attr(allow_interpreted_subclasses=True)
class Network:
    """Message transport between named endpoints.

    Faults are injected by *subclassing*, never by monkey-patching: the
    reliable-delivery layer overrides :meth:`_dispatch_send` and the fault
    injector overrides :meth:`_transmit`.  Those subclasses stay
    interpreted under an accelerated build — the ``mypyc_attr`` decorator
    keeps the compiled base class's method slots dynamically overridable,
    so the fault seam survives compilation without any hot-path
    indirection in the fault-free case.

    Args:
        sim: The owning simulator.
        rngs: RNG registry for latency sampling.
        latency: Latency model; defaults to a constant 1.0 time units.
        fifo_links: If ``True``, enforce per-``(src, dst)`` FIFO delivery by
            clamping each delivery time to be no earlier than the previous
            delivery on the same link.
        batch_delivery: If ``True``, coalesce all deliveries due at the
            same simulated time into one scheduled batch event (one heap
            entry, and one mailbox wake per destination, instead of N of
            each).  Within the tick messages deliver in transmission
            order — exactly the order the unbatched per-message callbacks
            would have run in, so anything triggered *by* a delivery
            (e.g. the reliable layer's acks) also keeps its order and its
            fault-RNG draw sequence.  Only the scheduled-callback trace
            differs, so determinism digests are comparable between runs
            with the same setting only (hence opt-in, default off).
    """

    def __init__(
        self,
        sim: Simulator,
        rngs: typing.Optional[RngRegistry] = None,
        latency: typing.Optional[LatencyModel] = None,
        fifo_links: bool = False,
        batch_delivery: bool = False,
    ):
        self.sim = sim
        self.rngs = rngs if rngs is not None else RngRegistry(0)
        self.latency = latency if latency is not None else constant_latency(1.0)
        self.latency.bind_clock(lambda: sim.now)
        self.fifo_links = fifo_links
        # bool() so the experiment layer's 0/1 integer parameter works.
        self.batch_delivery = bool(batch_delivery)
        self.stats = NetworkStats()
        self._mailboxes: typing.Dict[str, Store] = {}
        self._last_delivery: typing.Dict[typing.Tuple[str, str], float] = {}
        #: Open delivery batches, keyed by delivery tick (batch mode).
        self._batches: typing.Dict[float, list] = {}

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def register(self, endpoint: str) -> Store:
        """Create (or return) the mailbox for ``endpoint``."""
        if endpoint not in self._mailboxes:
            self._mailboxes[endpoint] = Store(self.sim)
        return self._mailboxes[endpoint]

    def mailbox(self, endpoint: str) -> Store:
        """Return the mailbox of a registered endpoint."""
        try:
            return self._mailboxes[endpoint]
        except KeyError:
            raise SimulationError(f"unknown endpoint: {endpoint!r}") from None

    @property
    def endpoints(self) -> typing.List[str]:
        return list(self._mailboxes)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload=None) -> Message:
        """Send a message; returns the in-flight envelope.

        Sending never blocks the caller: the message is queued for delivery
        after a sampled latency.  This is the mechanism behind the paper's
        requirement that all inter-node communication is asynchronous with
        user transactions.
        """
        if dst not in self._mailboxes:
            raise SimulationError(f"send to unknown endpoint: {dst!r}")
        message = Message(src=src, dst=dst, kind=kind, payload=payload,
                          sent_at=self.sim.now)
        self._dispatch_send(message)
        return message

    def _dispatch_send(self, message: Message) -> None:
        """Hand a freshly built envelope to the transmission path.

        The reliable-delivery layer overrides this to register the message
        for retransmission before the (possibly lossy) first transmission.
        """
        self._transmit(message)

    def _transmit(self, message: Message, extra_delay: float = 0.0) -> None:
        """Put one physical copy of ``message`` on the wire.

        Samples the link latency, applies FIFO clamping, records stats, and
        schedules delivery.  The fault injector overrides this to drop,
        duplicate, or delay individual copies; retransmissions re-enter
        here, so each copy draws a fresh latency.
        """
        sim = self.sim
        now = sim.now
        delay = self.latency.delay(message.src, message.dst, self.rngs)
        if delay < 0:
            raise SimulationError(f"latency model returned negative delay: {delay}")
        delay += extra_delay
        if self.fifo_links:
            link = (message.src, message.dst)
            deliver_at = max(now + delay, self._last_delivery.get(link, 0.0))
            self._last_delivery[link] = deliver_at
            delay = deliver_at - now
        self.stats.record(message.kind, delay)
        self._schedule_delivery(message, delay)

    def _schedule_delivery(self, message: Message, delay: float) -> None:
        """Schedule one already-faulted, already-recorded physical copy.

        Sits *below* the fault injector's ``_transmit`` override: drops,
        spikes, and duplications have all happened by the time a copy
        reaches here, so batching cannot perturb per-message fault draws.
        In batch mode all copies due at the same tick share one scheduled
        callback and deliver in transmission order — the exact order
        separate same-tick callbacks would have run them in.  Keying by
        tick alone (not per destination) matters for fault equivalence:
        anything a delivery *triggers* (the reliable layer transmits an
        ack per data copy) happens in the same global order as unbatched,
        so the fault injector's RNG streams are consumed identically.
        """
        sim = self.sim
        if not self.batch_delivery:
            sim.schedule(delay, self._deliver, message)
            return
        key = sim.now + delay
        batch = self._batches.get(key)
        if batch is not None:
            batch.append(message)
            self.stats.batched_messages += 1
            return
        self._batches[key] = [message]
        self.stats.batches += 1
        sim.schedule_at(key, self._deliver_batch, key)

    def _deliver_batch(self, key: float) -> None:
        # Delivery goes through _deliver per message, preserving the
        # reliable layer's per-copy ack/dedup override.
        for message in self._batches.pop(key):
            self._deliver(message)

    def _deliver(self, message: Message) -> None:
        message.delivered_at = self.sim.now
        self._mailboxes[message.dst].put(message)

    def broadcast(self, src: str, kind: str, payload=None,
                  include_self: bool = True) -> typing.List[Message]:
        """Send the same message to every registered endpoint."""
        return [
            self.send(src, dst, kind, payload)
            for dst in self._mailboxes
            if include_self or dst != src
        ]

    def broadcast_to(self, src: str, dsts: typing.Iterable[str], kind: str,
                     payload=None) -> typing.List[Message]:
        """Send the same message to an explicit list of endpoints."""
        return [self.send(src, dst, kind, payload) for dst in dsts]


# --- accelerated-build hook (stripped from compiled mirrors) ----------
from repro._accel import install as _accel_install  # noqa: E402

_accel_install(globals())
# --- end accelerated-build hook ---------------------------------------
