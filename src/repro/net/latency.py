"""Latency models for the simulated network.

A latency model maps a ``(src, dst)`` pair to a delay sample.  Models are
deliberately small compositions over :mod:`repro.sim.distributions`; the two
non-trivial ones are :class:`SkewedLatency` (a subset of slow links, used to
manufacture the straggler subtransactions that exercise the 3V dual-write
path) and :class:`PartitionedLatency` (temporarily very slow links, used in
fault-injection tests to show advancement still terminates).
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError
from repro.sim.distributions import Constant, Distribution, RngRegistry


class LatencyModel:
    """Base class: sample a one-way delay for a message on ``src -> dst``."""

    def delay(self, src: str, dst: str, rngs: RngRegistry) -> float:
        raise NotImplementedError  # pragma: no cover

    def bind_clock(self, now: typing.Callable[[], float]) -> None:
        """Attach the owning simulator's clock.

        :class:`~repro.net.network.Network` calls this on construction, so
        time-dependent models (:class:`PartitionedLatency`) see simulation
        time without callers threading a closure through.  Stateless models
        ignore it.
        """


class UniformLatency(LatencyModel):
    """Every link draws from the same distribution.

    A distribution with variance produces message *reordering* on a link,
    which is exactly the asynchrony the 3V protocol must tolerate.
    """

    def __init__(self, distribution: Distribution):
        self.distribution = distribution

    def delay(self, src: str, dst: str, rngs: RngRegistry) -> float:
        return rngs.sample("net.latency", self.distribution)

    def __repr__(self) -> str:
        return f"UniformLatency({self.distribution!r})"


class LocalRemoteLatency(LatencyModel):
    """Fast self-loop, slower remote links (LAN/WAN split)."""

    def __init__(self, local: Distribution, remote: Distribution):
        self.local = local
        self.remote = remote

    def delay(self, src: str, dst: str, rngs: RngRegistry) -> float:
        distribution = self.local if src == dst else self.remote
        return rngs.sample("net.latency", distribution)


class SkewedLatency(LatencyModel):
    """A designated set of slow links; every other link is fast.

    Args:
        fast: Distribution for ordinary links.
        slow: Distribution for the slow links.
        slow_links: Set of ``(src, dst)`` pairs that are slow.
    """

    def __init__(
        self,
        fast: Distribution,
        slow: Distribution,
        slow_links: typing.Iterable[typing.Tuple[str, str]],
    ):
        self.fast = fast
        self.slow = slow
        self.slow_links = frozenset(slow_links)

    def delay(self, src: str, dst: str, rngs: RngRegistry) -> float:
        distribution = self.slow if (src, dst) in self.slow_links else self.fast
        return rngs.sample("net.latency", distribution)


class PartitionedLatency(LatencyModel):
    """Wraps a base model; designated links stall during a time window.

    Messages sent on a stalled link are held until the window closes (plus
    the base delay).  Used to show that version advancement is delayed but
    user transactions are not (fault-injection tests).

    The model needs the simulation clock to know whether a send falls in
    the stall window; the owning ``Network`` provides it via
    :meth:`bind_clock` at construction, so callers no longer pass one.
    """

    def __init__(
        self,
        base: LatencyModel,
        stalled_links: typing.Iterable[typing.Tuple[str, str]],
        start: float,
        end: float,
    ):
        if end < start:
            raise SimulationError(f"partition window reversed: [{start}, {end}]")
        self.base = base
        self.stalled_links = frozenset(stalled_links)
        self.start = start
        self.end = end
        self._now: typing.Optional[typing.Callable[[], float]] = None

    def bind_clock(self, now: typing.Callable[[], float]) -> None:
        self._now = now
        self.base.bind_clock(now)

    def delay(self, src: str, dst: str, rngs: RngRegistry) -> float:
        base_delay = self.base.delay(src, dst, rngs)
        if self._now is None:
            raise SimulationError(
                "PartitionedLatency has no clock; attach the model to a "
                "Network/System first (bind_clock happens on construction)"
            )
        now = self._now()
        if (src, dst) in self.stalled_links and self.start <= now < self.end:
            return (self.end - now) + base_delay
        return base_delay


class LinkLatency(LatencyModel):
    """Explicit per-directed-link latencies with a default for the rest.

    Used to script exact event orderings — e.g. the paper's Table 1, where
    subtransaction ``jp`` must overtake the start-advancement notice on the
    way to node ``p``.
    """

    def __init__(
        self,
        links: typing.Mapping[typing.Tuple[str, str], Distribution],
        default: typing.Optional[Distribution] = None,
    ):
        self.links = dict(links)
        self.default = default if default is not None else Constant(1.0)

    def delay(self, src: str, dst: str, rngs: RngRegistry) -> float:
        distribution = self.links.get((src, dst), self.default)
        return rngs.sample("net.latency", distribution)


def constant_latency(value: float) -> UniformLatency:
    """Convenience: a deterministic network with the same delay everywhere."""
    return UniformLatency(Constant(value))
