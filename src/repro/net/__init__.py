"""Simulated message network: envelopes, latency models, transport."""

from repro.net.latency import (
    LatencyModel,
    LinkLatency,
    LocalRemoteLatency,
    PartitionedLatency,
    SkewedLatency,
    UniformLatency,
    constant_latency,
)
from repro.net.message import Message, MessageKind
from repro.net.network import Network, NetworkStats
from repro.net.reliable import ReliableNetwork, RetransmitPolicy

__all__ = [
    "LatencyModel",
    "LinkLatency",
    "LocalRemoteLatency",
    "Message",
    "MessageKind",
    "Network",
    "NetworkStats",
    "PartitionedLatency",
    "ReliableNetwork",
    "RetransmitPolicy",
    "SkewedLatency",
    "UniformLatency",
    "constant_latency",
]
