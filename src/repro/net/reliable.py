"""Reliable delivery over a lossy channel: acks, retransmission, dedup.

The protocol plugins assume the exactly-once channel of the base
:class:`~repro.net.network.Network` (the paper's reliable-delivery
assumption).  When the fault injector makes the channel lossy, this layer
restores that contract with the standard at-least-once-plus-dedup
discipline real replicated stores use:

* every data message is held by the *sender* until a transport-level
  :data:`~repro.net.message.MessageKind.NET_ACK` for its ``message_id``
  comes back;
* unacked messages are retransmitted on a timer with exponential backoff
  (capped) plus deterministic jitter drawn from the ``net.retransmit``
  RNG stream;
* the *receiver* acks every copy it sees (so lost acks are repaired) but
  delivers each ``message_id`` to the mailbox at most once, counting the
  suppressed duplicates.

Acks are pure transport frames: they are never acked, never retransmitted,
and never reach a mailbox, so the paper's user/control/commit message
accounting is untouched.  Retransmission never gives up — eventual
delivery is guaranteed as long as the link's drop probability is below 1 —
and the caller's ``run_until_quiet(limit=...)`` bounds how long we wait
for the storm to drain.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.net.message import Message, MessageKind
from repro.net.network import Network


@dataclasses.dataclass(frozen=True)
class RetransmitPolicy:
    """Retransmission timing: exponential backoff, capped, with jitter.

    The first retransmit fires ``timeout`` (plus jitter) after the send;
    each subsequent one multiplies the interval by ``backoff`` up to
    ``max_interval``.  Jitter is uniform on ``[0, jitter)`` per timer,
    drawn from a named RNG stream, so two runs with the same seed produce
    identical retransmission schedules.
    """

    timeout: float = 5.0
    backoff: float = 2.0
    max_interval: float = 40.0
    jitter: float = 0.5


class ReliableNetwork(Network):
    """A :class:`Network` with per-message acks, retransmission, and dedup.

    Composes with the fault injector by overriding the two seams the base
    class exposes: :meth:`_dispatch_send` (register for retransmission
    before the possibly-lossy first transmission) and :meth:`_deliver`
    (consume acks, ack + dedup data frames).
    """

    def __init__(self, sim, policy: typing.Optional[RetransmitPolicy] = None,
                 **kwargs):
        super().__init__(sim, **kwargs)
        self.policy = policy if policy is not None else RetransmitPolicy()
        #: In-flight (unacked) messages by id.
        self._pending: typing.Dict[int, Message] = {}
        #: Per-destination set of message ids already delivered.
        self._seen: typing.Dict[str, typing.Set[int]] = {}
        self._jitter_rng = self.rngs.stream("net.retransmit")

    @property
    def pending_unacked(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------

    def _dispatch_send(self, message: Message) -> None:
        self._pending[message.message_id] = message
        self._transmit(message)
        self._arm_timer(message, self.policy.timeout)

    def _arm_timer(self, message: Message, interval: float) -> None:
        jitter = self._jitter_rng.random() * self.policy.jitter
        self.sim.schedule(
            interval + jitter, self._maybe_retransmit, message, interval
        )

    def _maybe_retransmit(self, message: Message, interval: float) -> None:
        if message.message_id not in self._pending:
            return  # acked in the meantime; the timer dies quietly
        self.stats.retransmits += 1
        # A fresh envelope per physical copy: the original may be sitting
        # in the delivery heap (merely slow, not lost), and delivery
        # mutates the envelope's delivered_at.
        self._transmit(dataclasses.replace(message, delivered_at=None))
        self._arm_timer(
            message, min(interval * self.policy.backoff,
                         self.policy.max_interval)
        )

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def _deliver(self, message: Message) -> None:
        if message.kind is MessageKind.NET_ACK:
            # payload = the acked data message's id.  Duplicate/stale acks
            # are no-ops.
            self._pending.pop(message.payload, None)
            return
        # Ack every copy received — a dropped ack leaves the sender
        # retransmitting, and only the next ack can stop it.
        self._transmit(
            Message(
                src=message.dst, dst=message.src, kind=MessageKind.NET_ACK,
                payload=message.message_id, sent_at=self.sim.now,
            )
        )
        seen = self._seen.setdefault(message.dst, set())
        if message.message_id in seen:
            self.stats.dup_suppressed += 1
            return
        seen.add(message.message_id)
        super()._deliver(message)
