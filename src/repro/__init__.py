"""Reproduction of "Scalable Versioning in Distributed Databases with
Commuting Updates" (Jagadish, Mumick, Rabinovich; ICDE 1997).

The package implements the paper's **3V** multiversioning protocol and its
**NC3V** extension for non-commuting updates on top of a deterministic
discrete-event simulation of a distributed database, together with the
three baseline designs the paper argues against (global two-phase commit,
no coordination, manual versioning), data-recording workloads, and
analysis tooling for serializability, anomaly, staleness, and scaling
measurements.

Quick start::

    from repro import run_recording_experiment, audit

    result = run_recording_experiment("3v", nodes=4, duration=30.0, seed=1)
    report = audit(result.history, result.workload, check_snapshots=True)
    assert report.clean

See ``README.md`` for the full tour and ``DESIGN.md`` for the system map.
"""

from repro._accel import (
    accel_backend,
    accel_status,
    accelerated_modules,
    build_mode,
)
from repro.analysis import (
    AnomalyReport,
    LatencySummary,
    Table,
    audit,
    latency_summary,
    max_remote_wait,
    staleness_summary,
    throughput,
)
from repro.baselines import (
    ManualVersioningSystem,
    NoCoordSystem,
    TwoPCSystem,
)
from repro.core import (
    AdvancementCoordinator,
    CountPolicy,
    InvariantMonitor,
    ManualPolicy,
    NodeConfig,
    PeriodicPolicy,
    ThreeVNode,
    ThreeVSystem,
    check_all,
)
from repro.errors import (
    InvariantViolation,
    ProtocolError,
    ReproError,
    TransactionAborted,
)
from repro.net import LinkLatency, Network, UniformLatency, constant_latency
from repro.sim import Constant, Exponential, LogNormal, RngRegistry, Simulator, Uniform
from repro.storage import Assign, Increment, MVStore, Record
from repro.txn import (
    History,
    ReadOp,
    SubtxnSpec,
    TransactionSpec,
    TxnKind,
    WriteOp,
)
from repro.workloads import (
    RecordingConfig,
    RecordingWorkload,
    build_system,
    hospital_workload,
    retail_workload,
    run_recording_experiment,
    telecom_workload,
)

__version__ = "1.0.0"

__all__ = [
    "AdvancementCoordinator",
    "AnomalyReport",
    "Assign",
    "Constant",
    "CountPolicy",
    "Exponential",
    "History",
    "Increment",
    "InvariantMonitor",
    "InvariantViolation",
    "LatencySummary",
    "LinkLatency",
    "LogNormal",
    "MVStore",
    "ManualPolicy",
    "ManualVersioningSystem",
    "Network",
    "NoCoordSystem",
    "NodeConfig",
    "PeriodicPolicy",
    "ProtocolError",
    "ReadOp",
    "Record",
    "RecordingConfig",
    "RecordingWorkload",
    "ReproError",
    "RngRegistry",
    "Simulator",
    "SubtxnSpec",
    "Table",
    "ThreeVNode",
    "ThreeVSystem",
    "TransactionAborted",
    "TransactionSpec",
    "TwoPCSystem",
    "TxnKind",
    "Uniform",
    "UniformLatency",
    "WriteOp",
    "accel_backend",
    "accel_status",
    "accelerated_modules",
    "audit",
    "build_mode",
    "build_system",
    "check_all",
    "constant_latency",
    "hospital_workload",
    "latency_summary",
    "max_remote_wait",
    "retail_workload",
    "run_recording_experiment",
    "staleness_summary",
    "telecom_workload",
    "throughput",
]
