/* Compiled twin of repro.storage.counters (the "ckernel" accel backend).
 *
 * Drop-in replacements for CounterTable, quiescent(), and
 * aggregate_quiescent() with C-native storage: each side (requests /
 * completions) is a small array of per-version rows, each row a small
 * array of (peer, count) cells plus the incrementally maintained total.
 * Rows and cells are found by linear scan — the paper bounds live
 * versions at three and peer sets at the node count, so scans beat
 * hashing at these sizes — with a pointer-equality fast path for peer
 * ids (interned node-id strings in practice).
 *
 * Semantics must match the pure module bit-for-bit: same error types and
 * messages, same dict ordering (cells are appended in first-increment
 * order, exactly like pure dict insertion order), same gc-floor
 * lost-increment accounting.  tests/test_counters.py and the
 * aggregate-quiescence Hypothesis suite run against both builds.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* ------------------------------------------------------------------ */
/* Lazy error-class resolution (repro.errors must not be imported at   */
/* extension-init time: the module may be imported mid-package-init).  */
/* ------------------------------------------------------------------ */

static PyObject *counter_error_cls = NULL;

static PyObject *
get_counter_error(void)
{
    if (counter_error_cls == NULL) {
        PyObject *mod = PyImport_ImportModule("repro.errors");
        if (mod == NULL)
            return NULL;
        counter_error_cls = PyObject_GetAttrString(mod, "CounterError");
        Py_DECREF(mod);
    }
    return counter_error_cls;
}

/* ------------------------------------------------------------------ */
/* Storage                                                             */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject *peer;     /* owned */
    long long count;
} Cell;

typedef struct {
    long long version;
    long long total;    /* incrementally maintained sum of cell counts */
    int n, cap;
    Cell *cells;
} Row;

typedef struct {
    int n, cap;
    Row *rows;
} Side;

typedef struct {
    PyObject_HEAD
    PyObject *node_id;      /* owned */
    Side req;
    Side comp;
    long long gc_floor;
    int has_gc_floor;
    long long lost_increments;
} CounterTableObject;

static Row *
side_find(Side *side, long long version)
{
    Row *rows = side->rows;
    int n = side->n;
    for (int i = 0; i < n; i++) {
        if (rows[i].version == version)
            return &rows[i];
    }
    return NULL;
}

static Row *
side_add(Side *side, long long version)
{
    if (side->n == side->cap) {
        int cap = side->cap ? side->cap * 2 : 4;
        Row *rows = PyMem_Realloc(side->rows, (size_t)cap * sizeof(Row));
        if (rows == NULL) {
            PyErr_NoMemory();
            return NULL;
        }
        side->rows = rows;
        side->cap = cap;
    }
    Row *row = &side->rows[side->n++];
    row->version = version;
    row->total = 0;
    row->n = 0;
    row->cap = 0;
    row->cells = NULL;
    return row;
}

/* Find-or-create the cell for `peer`; returns NULL on error. */
static Cell *
row_cell(Row *row, PyObject *peer)
{
    Cell *cells = row->cells;
    int n = row->n;
    for (int i = 0; i < n; i++) {
        if (cells[i].peer == peer)
            return &cells[i];
    }
    for (int i = 0; i < n; i++) {
        int eq = PyObject_RichCompareBool(cells[i].peer, peer, Py_EQ);
        if (eq < 0)
            return NULL;
        if (eq)
            return &cells[i];
    }
    if (row->n == row->cap) {
        int cap = row->cap ? row->cap * 2 : 4;
        Cell *grown = PyMem_Realloc(row->cells, (size_t)cap * sizeof(Cell));
        if (grown == NULL) {
            PyErr_NoMemory();
            return NULL;
        }
        row->cells = grown;
        row->cap = cap;
    }
    Cell *cell = &row->cells[row->n++];
    Py_INCREF(peer);
    cell->peer = peer;
    cell->count = 0;
    return cell;
}

static void
row_free(Row *row)
{
    for (int i = 0; i < row->n; i++)
        Py_CLEAR(row->cells[i].peer);
    PyMem_Free(row->cells);
    row->cells = NULL;
    row->n = row->cap = 0;
}

static void
side_free(Side *side)
{
    for (int i = 0; i < side->n; i++)
        row_free(&side->rows[i]);
    PyMem_Free(side->rows);
    side->rows = NULL;
    side->n = side->cap = 0;
}

/* Drop every row with version < floor. */
static void
side_gc_below(Side *side, long long floor)
{
    int keep = 0;
    for (int i = 0; i < side->n; i++) {
        if (side->rows[i].version < floor) {
            row_free(&side->rows[i]);
        } else {
            side->rows[keep++] = side->rows[i];
        }
    }
    side->n = keep;
}

/* ------------------------------------------------------------------ */
/* CounterTable methods                                                */
/* ------------------------------------------------------------------ */

static int
CounterTable_init(CounterTableObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"node_id", NULL};
    PyObject *node_id;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O:CounterTable", kwlist,
                                     &node_id))
        return -1;
    Py_INCREF(node_id);
    Py_XSETREF(self->node_id, node_id);
    side_free(&self->req);
    side_free(&self->comp);
    self->gc_floor = 0;
    self->has_gc_floor = 0;
    self->lost_increments = 0;
    return 0;
}

static int
CounterTable_traverse(CounterTableObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->node_id);
    for (int i = 0; i < self->req.n; i++)
        for (int j = 0; j < self->req.rows[i].n; j++)
            Py_VISIT(self->req.rows[i].cells[j].peer);
    for (int i = 0; i < self->comp.n; i++)
        for (int j = 0; j < self->comp.rows[i].n; j++)
            Py_VISIT(self->comp.rows[i].cells[j].peer);
    return 0;
}

static int
CounterTable_clear(CounterTableObject *self)
{
    Py_CLEAR(self->node_id);
    side_free(&self->req);
    side_free(&self->comp);
    return 0;
}

static void
CounterTable_dealloc(CounterTableObject *self)
{
    PyObject_GC_UnTrack(self);
    CounterTable_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
as_version(PyObject *obj, long long *out)
{
    long long v = PyLong_AsLongLong(obj);
    if (v == -1 && PyErr_Occurred())
        return -1;
    *out = v;
    return 0;
}

static PyObject *
CounterTable_ensure_version(CounterTableObject *self, PyObject *arg)
{
    long long version;
    if (as_version(arg, &version) < 0)
        return NULL;
    if (self->has_gc_floor && version < self->gc_floor)
        Py_RETURN_NONE;
    if (side_find(&self->req, version) == NULL &&
        side_add(&self->req, version) == NULL)
        return NULL;
    if (side_find(&self->comp, version) == NULL &&
        side_add(&self->comp, version) == NULL)
        return NULL;
    Py_RETURN_NONE;
}

static int
cmp_longlong(const void *a, const void *b)
{
    long long x = *(const long long *)a, y = *(const long long *)b;
    return (x > y) - (x < y);
}

static PyObject *
CounterTable_versions(CounterTableObject *self, PyObject *unused)
{
    int total = self->req.n + self->comp.n;
    long long small[16];
    long long *buf = small;
    if (total > 16) {
        buf = PyMem_Malloc((size_t)total * sizeof(long long));
        if (buf == NULL)
            return PyErr_NoMemory();
    }
    int n = 0;
    for (int i = 0; i < self->req.n; i++)
        buf[n++] = self->req.rows[i].version;
    for (int i = 0; i < self->comp.n; i++)
        buf[n++] = self->comp.rows[i].version;
    qsort(buf, (size_t)n, sizeof(long long), cmp_longlong);
    PyObject *list = PyList_New(0);
    if (list == NULL)
        goto fail;
    for (int i = 0; i < n; i++) {
        if (i > 0 && buf[i] == buf[i - 1])
            continue;
        PyObject *num = PyLong_FromLongLong(buf[i]);
        if (num == NULL || PyList_Append(list, num) < 0) {
            Py_XDECREF(num);
            Py_DECREF(list);
            goto fail;
        }
        Py_DECREF(num);
    }
    if (buf != small)
        PyMem_Free(buf);
    return list;
fail:
    if (buf != small)
        PyMem_Free(buf);
    return NULL;
}

static PyObject *
CounterTable_gc_below(CounterTableObject *self, PyObject *arg)
{
    long long version;
    if (as_version(arg, &version) < 0)
        return NULL;
    if (!self->has_gc_floor || version > self->gc_floor) {
        self->gc_floor = version;
        self->has_gc_floor = 1;
    }
    side_gc_below(&self->req, version);
    side_gc_below(&self->comp, version);
    Py_RETURN_NONE;
}

/* Cold path: increment against an unallocated version. */
static PyObject *
counter_miss(CounterTableObject *self, const char *kind, long long version)
{
    if (self->has_gc_floor && version < self->gc_floor) {
        self->lost_increments++;
        Py_RETURN_NONE;
    }
    PyObject *cls = get_counter_error();
    if (cls == NULL)
        return NULL;
    PyObject *msg = PyUnicode_FromFormat(
        "node %S: %s counter for unallocated version %lld",
        self->node_id, kind, version);
    if (msg == NULL)
        return NULL;
    PyErr_SetObject(cls, msg);
    Py_DECREF(msg);
    return NULL;
}

static PyObject *
counter_inc(CounterTableObject *self, Side *side, const char *kind,
            PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_Format(PyExc_TypeError,
                     "inc_%s() takes exactly 2 arguments (%zd given)",
                     kind, nargs);
        return NULL;
    }
    long long version;
    if (as_version(args[0], &version) < 0)
        return NULL;
    Row *row = side_find(side, version);
    if (row == NULL)
        return counter_miss(self, kind, version);
    Cell *cell = row_cell(row, args[1]);
    if (cell == NULL)
        return NULL;
    row->total++;
    cell->count++;
    Py_RETURN_NONE;
}

static PyObject *
CounterTable_inc_request(CounterTableObject *self, PyObject *const *args,
                         Py_ssize_t nargs)
{
    return counter_inc(self, &self->req, "request", args, nargs);
}

static PyObject *
CounterTable_inc_completion(CounterTableObject *self, PyObject *const *args,
                            Py_ssize_t nargs)
{
    return counter_inc(self, &self->comp, "completion", args, nargs);
}

/* Materialize one row as {peer: count} in first-increment order (the
 * same order pure-Python dict insertion produces). */
static PyObject *
row_as_dict(Row *row)
{
    PyObject *result = PyDict_New();
    if (result == NULL)
        return NULL;
    if (row == NULL)
        return result;
    for (int i = 0; i < row->n; i++) {
        PyObject *num = PyLong_FromLongLong(row->cells[i].count);
        if (num == NULL ||
            PyDict_SetItem(result, row->cells[i].peer, num) < 0) {
            Py_XDECREF(num);
            Py_DECREF(result);
            return NULL;
        }
        Py_DECREF(num);
    }
    return result;
}

static PyObject *
side_row_dict(CounterTableObject *self, Side *side, PyObject *arg)
{
    long long version;
    if (as_version(arg, &version) < 0)
        return NULL;
    return row_as_dict(side_find(side, version));
}

static PyObject *
CounterTable_requests(CounterTableObject *self, PyObject *arg)
{
    return side_row_dict(self, &self->req, arg);
}

static PyObject *
CounterTable_completions(CounterTableObject *self, PyObject *arg)
{
    return side_row_dict(self, &self->comp, arg);
}

/* The compiled table has no live Python row objects to alias, so the
 * "zero-copy view" accessors materialize a snapshot — every caller in
 * the tree copies the view immediately anyway (see the pure docstring's
 * aliasing caveat), making a fresh dict strictly safer. */
static PyObject *
CounterTable_requests_view(CounterTableObject *self, PyObject *arg)
{
    return side_row_dict(self, &self->req, arg);
}

static PyObject *
CounterTable_completions_view(CounterTableObject *self, PyObject *arg)
{
    return side_row_dict(self, &self->comp, arg);
}

static PyObject *
side_cell_count(Side *side, PyObject *const *args, Py_ssize_t nargs,
                const char *name)
{
    if (nargs != 2) {
        PyErr_Format(PyExc_TypeError,
                     "%s() takes exactly 2 arguments (%zd given)",
                     name, nargs);
        return NULL;
    }
    long long version;
    if (as_version(args[0], &version) < 0)
        return NULL;
    Row *row = side_find(side, version);
    if (row == NULL)
        return PyLong_FromLong(0);
    PyObject *peer = args[1];
    for (int i = 0; i < row->n; i++) {
        if (row->cells[i].peer == peer)
            return PyLong_FromLongLong(row->cells[i].count);
    }
    for (int i = 0; i < row->n; i++) {
        int eq = PyObject_RichCompareBool(row->cells[i].peer, peer, Py_EQ);
        if (eq < 0)
            return NULL;
        if (eq)
            return PyLong_FromLongLong(row->cells[i].count);
    }
    return PyLong_FromLong(0);
}

static PyObject *
CounterTable_request_count(CounterTableObject *self, PyObject *const *args,
                           Py_ssize_t nargs)
{
    return side_cell_count(&self->req, args, nargs, "request_count");
}

static PyObject *
CounterTable_completion_count(CounterTableObject *self, PyObject *const *args,
                              Py_ssize_t nargs)
{
    return side_cell_count(&self->comp, args, nargs, "completion_count");
}

static PyObject *
CounterTable_request_total(CounterTableObject *self, PyObject *arg)
{
    long long version;
    if (as_version(arg, &version) < 0)
        return NULL;
    Row *row = side_find(&self->req, version);
    return PyLong_FromLongLong(row ? row->total : 0);
}

static PyObject *
CounterTable_completion_total(CounterTableObject *self, PyObject *arg)
{
    long long version;
    if (as_version(arg, &version) < 0)
        return NULL;
    Row *row = side_find(&self->comp, version);
    return PyLong_FromLongLong(row ? row->total : 0);
}

static PyObject *
CounterTable_outstanding(CounterTableObject *self, PyObject *arg)
{
    long long version;
    if (as_version(arg, &version) < 0)
        return NULL;
    Row *req = side_find(&self->req, version);
    Row *comp = side_find(&self->comp, version);
    return PyLong_FromLongLong((req ? req->total : 0) -
                               (comp ? comp->total : 0));
}

static PyMethodDef CounterTable_methods[] = {
    {"ensure_version", (PyCFunction)CounterTable_ensure_version, METH_O,
     "Allocate (zeroed) counter rows for version if absent."},
    {"versions", (PyCFunction)CounterTable_versions, METH_NOARGS,
     "Sorted list of versions with allocated counters."},
    {"gc_below", (PyCFunction)CounterTable_gc_below, METH_O,
     "Drop counters for all versions strictly below version."},
    {"inc_request", (PyCFunction)CounterTable_inc_request, METH_FASTCALL,
     "Count a subtransaction sent from this node to dst."},
    {"inc_completion", (PyCFunction)CounterTable_inc_completion,
     METH_FASTCALL,
     "Count a subtransaction invoked from src completing here."},
    {"requests", (PyCFunction)CounterTable_requests, METH_O,
     "Snapshot of R[version][dst] for this node (copies)."},
    {"completions", (PyCFunction)CounterTable_completions, METH_O,
     "Snapshot of C[version][src] for this node (copies)."},
    {"requests_view", (PyCFunction)CounterTable_requests_view, METH_O,
     "Point-in-time view of R[version][dst] (materialized snapshot)."},
    {"completions_view", (PyCFunction)CounterTable_completions_view, METH_O,
     "Point-in-time view of C[version][src] (materialized snapshot)."},
    {"request_count", (PyCFunction)CounterTable_request_count, METH_FASTCALL,
     "R[version][dst] (0 when absent)."},
    {"completion_count", (PyCFunction)CounterTable_completion_count,
     METH_FASTCALL, "C[version][src] (0 when absent)."},
    {"request_total", (PyCFunction)CounterTable_request_total, METH_O,
     "Incrementally-maintained sum(R[version].values())."},
    {"completion_total", (PyCFunction)CounterTable_completion_total, METH_O,
     "Incrementally-maintained sum(C[version].values())."},
    {"outstanding", (PyCFunction)CounterTable_outstanding, METH_O,
     "sum(R[version]) - sum(C[version]) for this node's tables."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef CounterTable_members[] = {
    {"node_id", T_OBJECT_EX, offsetof(CounterTableObject, node_id), 0,
     "Owning node id."},
    {"lost_increments", T_LONGLONG,
     offsetof(CounterTableObject, lost_increments), 0,
     "Increments dropped against garbage-collected versions."},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CounterTableType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.storage.counters.CounterTable",
    .tp_basicsize = sizeof(CounterTableObject),
    .tp_dealloc = (destructor)CounterTable_dealloc,
    .tp_flags = (Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE |
                 Py_TPFLAGS_HAVE_GC),
    .tp_doc = "Request/completion counters held by a single node "
              "(compiled).",
    .tp_traverse = (traverseproc)CounterTable_traverse,
    .tp_clear = (inquiry)CounterTable_clear,
    .tp_methods = CounterTable_methods,
    .tp_members = CounterTable_members,
    .tp_init = (initproc)CounterTable_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* Module-level quiescence checks                                      */
/* ------------------------------------------------------------------ */

static int
dict_cell(PyObject *outer, PyObject *outer_key, PyObject *inner_key,
          long long *out)
{
    /* outer.get(outer_key, {}).get(inner_key, 0) for int-valued dicts. */
    *out = 0;
    PyObject *row = PyDict_GetItemWithError(outer, outer_key);
    if (row == NULL)
        return PyErr_Occurred() ? -1 : 0;
    if (!PyDict_Check(row)) {
        PyErr_SetString(PyExc_TypeError,
                        "quiescent() snapshot rows must be dicts");
        return -1;
    }
    PyObject *value = PyDict_GetItemWithError(row, inner_key);
    if (value == NULL)
        return PyErr_Occurred() ? -1 : 0;
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    *out = v;
    return 0;
}

/* One direction of the pairwise scan: every cell of `first` must equal
 * its mirror in `second` (missing mirrors count as zero). */
static int
scan_side(PyObject *first, PyObject *second, int *equal)
{
    Py_ssize_t outer_pos = 0;
    PyObject *p, *row;
    while (PyDict_Next(first, &outer_pos, &p, &row)) {
        if (!PyDict_Check(row)) {
            PyErr_SetString(PyExc_TypeError,
                            "quiescent() snapshot rows must be dicts");
            return -1;
        }
        Py_ssize_t inner_pos = 0;
        PyObject *q, *value;
        while (PyDict_Next(row, &inner_pos, &q, &value)) {
            long long sent = PyLong_AsLongLong(value);
            if (sent == -1 && PyErr_Occurred())
                return -1;
            long long mirror;
            if (dict_cell(second, q, p, &mirror) < 0)
                return -1;
            if (sent != mirror) {
                *equal = 0;
                return 0;
            }
        }
    }
    return 0;
}

static PyObject *
py_quiescent(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_Format(PyExc_TypeError,
                     "quiescent() takes exactly 2 arguments (%zd given)",
                     nargs);
        return NULL;
    }
    PyObject *reqs = args[0], *comps = args[1];
    if (!PyDict_Check(reqs) || !PyDict_Check(comps)) {
        PyErr_SetString(PyExc_TypeError,
                        "quiescent() requires dict snapshots");
        return NULL;
    }
    int equal = 1;
    if (scan_side(reqs, comps, &equal) < 0)
        return NULL;
    if (equal && scan_side(comps, reqs, &equal) < 0)
        return NULL;
    return PyBool_FromLong(equal);
}

static int
sum_values(PyObject *mapping, long long *out)
{
    long long total = 0;
    if (PyDict_Check(mapping)) {
        Py_ssize_t pos = 0;
        PyObject *key, *value;
        while (PyDict_Next(mapping, &pos, &key, &value)) {
            long long v = PyLong_AsLongLong(value);
            if (v == -1 && PyErr_Occurred())
                return -1;
            total += v;
        }
    } else {
        PyObject *values = PyMapping_Values(mapping);
        if (values == NULL)
            return -1;
        Py_ssize_t n = PyList_GET_SIZE(values);
        for (Py_ssize_t i = 0; i < n; i++) {
            long long v = PyLong_AsLongLong(PyList_GET_ITEM(values, i));
            if (v == -1 && PyErr_Occurred()) {
                Py_DECREF(values);
                return -1;
            }
            total += v;
        }
        Py_DECREF(values);
    }
    *out = total;
    return 0;
}

static PyObject *
py_aggregate_quiescent(PyObject *module, PyObject *const *args,
                       Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_Format(
            PyExc_TypeError,
            "aggregate_quiescent() takes exactly 2 arguments (%zd given)",
            nargs);
        return NULL;
    }
    long long reqs, comps;
    if (sum_values(args[0], &reqs) < 0 || sum_values(args[1], &comps) < 0)
        return NULL;
    return PyBool_FromLong(reqs == comps);
}

static PyMethodDef module_methods[] = {
    {"quiescent", (PyCFunction)py_quiescent, METH_FASTCALL,
     "Check R[v][p][q] == C[v][p][q] for all node pairs."},
    {"aggregate_quiescent", (PyCFunction)py_aggregate_quiescent,
     METH_FASTCALL,
     "O(nodes) quiescence check from per-node aggregate totals."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef counters_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._accel.storage_counters",
    .m_doc = "Compiled twin of repro.storage.counters.",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit_storage_counters(void)
{
    if (PyType_Ready(&CounterTableType) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&counters_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&CounterTableType);
    if (PyModule_AddObject(module, "CounterTable",
                           (PyObject *)&CounterTableType) < 0) {
        Py_DECREF(&CounterTableType);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
