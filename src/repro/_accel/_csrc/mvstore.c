/* Compiled twin of repro.storage.mvstore (the "ckernel" accel backend).
 *
 * MVStore keeps one Chain object per key in a Python dict; a Chain is a
 * C array of (version, value) entries sorted ascending by version.  The
 * paper bounds live versions per item at three, so version lookups are
 * one or two comparisons from the array tail — no per-read Python dict
 * probing, no cached-max bookkeeping (the tail *is* the max).
 *
 * Semantics must match the pure module exactly: same error types and
 * argument shapes (MissingItemError((key, version)) etc.), same return
 * values (apply_geq's ascending tuple), same statistics accounting.
 * Snapshot inner-dict ordering is version-ascending here vs. insertion
 * order pure — explicitly unspecified by the API (compare with ==).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* Lazily resolved repro.errors classes. */
static PyObject *missing_item_cls = NULL;
static PyObject *missing_version_cls = NULL;
static PyObject *storage_error_cls = NULL;

static PyObject *
get_error(PyObject **cache, const char *name)
{
    if (*cache == NULL) {
        PyObject *mod = PyImport_ImportModule("repro.errors");
        if (mod == NULL)
            return NULL;
        *cache = PyObject_GetAttrString(mod, name);
        Py_DECREF(mod);
    }
    return *cache;
}

/* Raise cls((key, version)) — the pure error signature. */
static PyObject *
raise_keyed(PyObject **cache, const char *name, PyObject *key,
            long long version)
{
    PyObject *cls = get_error(cache, name);
    if (cls == NULL)
        return NULL;
    PyObject *vnum = PyLong_FromLongLong(version);
    if (vnum == NULL)
        return NULL;
    PyObject *pair = PyTuple_Pack(2, key, vnum);
    Py_DECREF(vnum);
    if (pair == NULL)
        return NULL;
    PyErr_SetObject(cls, pair);
    Py_DECREF(pair);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Chain — internal per-key version array                              */
/* ------------------------------------------------------------------ */

typedef struct {
    long long version;
    PyObject *value;    /* owned; may be NULL only transiently */
} VEntry;

typedef struct {
    PyObject_HEAD
    int n, cap;
    VEntry *entries;    /* sorted ascending by version */
} ChainObject;

static PyTypeObject ChainType;  /* forward */

static ChainObject *
chain_new(void)
{
    ChainObject *chain = PyObject_GC_New(ChainObject, &ChainType);
    if (chain == NULL)
        return NULL;
    chain->n = 0;
    chain->cap = 0;
    chain->entries = NULL;
    PyObject_GC_Track((PyObject *)chain);
    return chain;
}

static int
chain_traverse(ChainObject *self, visitproc visit, void *arg)
{
    for (int i = 0; i < self->n; i++)
        Py_VISIT(self->entries[i].value);
    return 0;
}

static int
chain_clear(ChainObject *self)
{
    for (int i = 0; i < self->n; i++)
        Py_CLEAR(self->entries[i].value);
    self->n = 0;
    return 0;
}

static void
chain_dealloc(ChainObject *self)
{
    PyObject_GC_UnTrack(self);
    chain_clear(self);
    PyMem_Free(self->entries);
    PyObject_GC_Del(self);
}

static PyTypeObject ChainType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._accel.storage_mvstore._Chain",
    .tp_basicsize = sizeof(ChainObject),
    .tp_dealloc = (destructor)chain_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)chain_traverse,
    .tp_clear = (inquiry)chain_clear,
};

/* Index of exact `version`, or -1. */
static int
chain_index(ChainObject *chain, long long version)
{
    for (int i = chain->n - 1; i >= 0; i--) {
        if (chain->entries[i].version == version)
            return i;
        if (chain->entries[i].version < version)
            return -1;
    }
    return -1;
}

/* Index of the largest entry with version <= bound, or -1. */
static int
chain_max_leq(ChainObject *chain, long long bound)
{
    for (int i = chain->n - 1; i >= 0; i--) {
        if (chain->entries[i].version <= bound)
            return i;
    }
    return -1;
}

/* Insert (version, value) keeping ascending order; steals no reference
 * (increfs value itself).  Returns 0/-1. */
static int
chain_insert(ChainObject *chain, long long version, PyObject *value)
{
    if (chain->n == chain->cap) {
        int cap = chain->cap ? chain->cap * 2 : 4;
        VEntry *grown = PyMem_Realloc(chain->entries,
                                      (size_t)cap * sizeof(VEntry));
        if (grown == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        chain->entries = grown;
        chain->cap = cap;
    }
    int pos = chain->n;
    while (pos > 0 && chain->entries[pos - 1].version > version) {
        chain->entries[pos] = chain->entries[pos - 1];
        pos--;
    }
    Py_INCREF(value);
    chain->entries[pos].version = version;
    chain->entries[pos].value = value;
    chain->n++;
    return 0;
}

/* ------------------------------------------------------------------ */
/* MVStore                                                             */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *chains;           /* dict: key -> ChainObject */
    long long max_live_versions;
    long long dual_writes;
    long long total_writes;
} MVStoreObject;

static int
MVStore_init(MVStoreObject *self, PyObject *args, PyObject *kwds)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwds && PyDict_GET_SIZE(kwds))) {
        PyErr_SetString(PyExc_TypeError, "MVStore() takes no arguments");
        return -1;
    }
    PyObject *chains = PyDict_New();
    if (chains == NULL)
        return -1;
    Py_XSETREF(self->chains, chains);
    self->max_live_versions = 0;
    self->dual_writes = 0;
    self->total_writes = 0;
    return 0;
}

static int
MVStore_traverse(MVStoreObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->chains);
    return 0;
}

static int
MVStore_clear_slots(MVStoreObject *self)
{
    Py_CLEAR(self->chains);
    return 0;
}

static void
MVStore_dealloc(MVStoreObject *self)
{
    PyObject_GC_UnTrack(self);
    MVStore_clear_slots(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static ChainObject *
store_chain(MVStoreObject *self, PyObject *key)
{
    /* Borrowed reference or NULL (with error set only on real failure). */
    PyObject *chain = PyDict_GetItemWithError(self->chains, key);
    return (ChainObject *)chain;
}

static void
note_chain_size(MVStoreObject *self, ChainObject *chain)
{
    if (chain->n > self->max_live_versions)
        self->max_live_versions = chain->n;
}

static int
as_version(PyObject *obj, long long *out)
{
    long long v = PyLong_AsLongLong(obj);
    if (v == -1 && PyErr_Occurred())
        return -1;
    *out = v;
    return 0;
}

static int
MVStore_contains(MVStoreObject *self, PyObject *key)
{
    return PyDict_Contains(self->chains, key);
}

static PyObject *
MVStore_keys(MVStoreObject *self, PyObject *unused)
{
    return PyObject_CallMethod(self->chains, "keys", NULL);
}

static PyObject *
MVStore_versions(MVStoreObject *self, PyObject *key)
{
    ChainObject *chain = store_chain(self, key);
    if (chain == NULL && PyErr_Occurred())
        return NULL;
    int n = chain ? chain->n : 0;
    PyObject *list = PyList_New(n);
    if (list == NULL)
        return NULL;
    for (int i = 0; i < n; i++) {
        PyObject *num = PyLong_FromLongLong(chain->entries[i].version);
        if (num == NULL) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, i, num);
    }
    return list;
}

static PyObject *
MVStore_exists(MVStoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_Format(PyExc_TypeError,
                     "exists() takes exactly 2 arguments (%zd given)", nargs);
        return NULL;
    }
    long long version;
    if (as_version(args[1], &version) < 0)
        return NULL;
    ChainObject *chain = store_chain(self, args[0]);
    if (chain == NULL && PyErr_Occurred())
        return NULL;
    return PyBool_FromLong(chain != NULL && chain_index(chain, version) >= 0);
}

static PyObject *
MVStore_exists_above(MVStoreObject *self, PyObject *const *args,
                     Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_Format(PyExc_TypeError,
                     "exists_above() takes exactly 2 arguments (%zd given)",
                     nargs);
        return NULL;
    }
    long long version;
    if (as_version(args[1], &version) < 0)
        return NULL;
    ChainObject *chain = store_chain(self, args[0]);
    if (chain == NULL && PyErr_Occurred())
        return NULL;
    return PyBool_FromLong(
        chain != NULL && chain->n > 0 &&
        chain->entries[chain->n - 1].version > version);
}

static PyObject *
MVStore_get_exact(MVStoreObject *self, PyObject *const *args,
                  Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_Format(PyExc_TypeError,
                     "get_exact() takes exactly 2 arguments (%zd given)",
                     nargs);
        return NULL;
    }
    long long version;
    if (as_version(args[1], &version) < 0)
        return NULL;
    ChainObject *chain = store_chain(self, args[0]);
    if (chain == NULL && PyErr_Occurred())
        return NULL;
    int idx = chain ? chain_index(chain, version) : -1;
    if (idx < 0)
        return raise_keyed(&missing_version_cls, "MissingVersionError",
                           args[0], version);
    PyObject *value = chain->entries[idx].value;
    Py_INCREF(value);
    return value;
}

static PyObject *raise_sentinel = NULL;  /* module-private default marker */

/* Minimal fastcall+keywords parser: fill out[0..2] from positionals then
 * keywords (names must match one of `names`), requiring the first
 * `required` slots.  Optional slots keep their preset value. */
static int
parse_fastcall_kw(const char *fname, const char *const names[3],
                  PyObject *const *args, Py_ssize_t nargs,
                  PyObject *kwnames, Py_ssize_t required, PyObject *out[3])
{
    if (nargs > 3) {
        PyErr_Format(PyExc_TypeError,
                     "%s() takes at most 3 arguments (%zd given)",
                     fname, nargs);
        return 0;
    }
    for (Py_ssize_t i = 0; i < nargs; i++)
        out[i] = args[i];
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    for (Py_ssize_t k = 0; k < nkw; k++) {
        PyObject *name = PyTuple_GET_ITEM(kwnames, k);
        int matched = 0;
        for (int slot = 0; slot < 3 && names[slot] != NULL; slot++) {
            if (PyUnicode_CompareWithASCIIString(name, names[slot]) == 0) {
                if (slot < nargs || out[slot] != NULL) {
                    PyErr_Format(PyExc_TypeError,
                                 "%s() got multiple values for argument "
                                 "'%s'", fname, names[slot]);
                    return 0;
                }
                out[slot] = args[nargs + k];
                matched = 1;
                break;
            }
        }
        if (!matched) {
            PyErr_Format(PyExc_TypeError,
                         "%s() got an unexpected keyword argument %R",
                         fname, name);
            return 0;
        }
    }
    for (Py_ssize_t i = 0; i < required; i++) {
        if (out[i] == NULL) {
            PyErr_Format(PyExc_TypeError,
                         "%s() missing required argument '%s'",
                         fname, names[i]);
            return 0;
        }
    }
    return 1;
}

static PyObject *
MVStore_read_max_leq(MVStoreObject *self, PyObject *const *args,
                     Py_ssize_t nargs, PyObject *kwnames)
{
    static const char *const names[3] = {"key", "version", "default"};
    PyObject *out[3] = {NULL, NULL, NULL};
    if (!parse_fastcall_kw("read_max_leq", names, args, nargs, kwnames,
                           2, out))
        return NULL;
    PyObject *key = out[0], *version_obj = out[1];
    PyObject *dflt = out[2] ? out[2] : raise_sentinel;
    long long version;
    if (as_version(version_obj, &version) < 0)
        return NULL;
    ChainObject *chain = store_chain(self, key);
    if (chain == NULL && PyErr_Occurred())
        return NULL;
    if (chain != NULL && chain->n > 0) {
        int idx = chain_max_leq(chain, version);
        if (idx >= 0) {
            PyObject *value = chain->entries[idx].value;
            Py_INCREF(value);
            return value;
        }
    }
    if (dflt == raise_sentinel)
        return raise_keyed(&missing_item_cls, "MissingItemError",
                           key, version);
    Py_INCREF(dflt);
    return dflt;
}

static PyObject *
MVStore_version_max_leq(MVStoreObject *self, PyObject *const *args,
                        Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_Format(PyExc_TypeError,
                     "version_max_leq() takes exactly 2 arguments "
                     "(%zd given)", nargs);
        return NULL;
    }
    long long version;
    if (as_version(args[1], &version) < 0)
        return NULL;
    ChainObject *chain = store_chain(self, args[0]);
    if (chain == NULL && PyErr_Occurred())
        return NULL;
    int idx = (chain && chain->n) ? chain_max_leq(chain, version) : -1;
    if (idx < 0)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(chain->entries[idx].version);
}

static PyObject *
MVStore_load(MVStoreObject *self, PyObject *const *args, Py_ssize_t nargs,
             PyObject *kwnames)
{
    static const char *const names[3] = {"key", "value", "version"};
    PyObject *out[3] = {NULL, NULL, NULL};
    if (!parse_fastcall_kw("load", names, args, nargs, kwnames, 2, out))
        return NULL;
    PyObject *key = out[0], *value = out[1], *version_obj = out[2];
    long long version = 0;
    if (version_obj != NULL && as_version(version_obj, &version) < 0)
        return NULL;
    ChainObject *chain = store_chain(self, key);
    if (chain == NULL) {
        if (PyErr_Occurred())
            return NULL;
        chain = chain_new();
        if (chain == NULL)
            return NULL;
        if (chain_insert(chain, version, value) < 0 ||
            PyDict_SetItem(self->chains, key, (PyObject *)chain) < 0) {
            Py_DECREF(chain);
            return NULL;
        }
        Py_DECREF(chain);
        if (self->max_live_versions < 1)
            self->max_live_versions = 1;
        Py_RETURN_NONE;
    }
    if (chain_index(chain, version) >= 0) {
        PyObject *cls = get_error(&storage_error_cls, "StorageError");
        if (cls == NULL)
            return NULL;
        PyObject *msg = PyUnicode_FromFormat(
            "duplicate load of %R version %lld", key, version);
        if (msg == NULL)
            return NULL;
        PyErr_SetObject(cls, msg);
        Py_DECREF(msg);
        return NULL;
    }
    if (chain_insert(chain, version, value) < 0)
        return NULL;
    note_chain_size(self, chain);
    Py_RETURN_NONE;
}

static PyObject *
MVStore_ensure_version(MVStoreObject *self, PyObject *const *args,
                       Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_Format(PyExc_TypeError,
                     "ensure_version() takes exactly 2 arguments "
                     "(%zd given)", nargs);
        return NULL;
    }
    PyObject *key = args[0];
    long long version;
    if (as_version(args[1], &version) < 0)
        return NULL;
    ChainObject *chain = store_chain(self, key);
    if (chain == NULL) {
        if (PyErr_Occurred())
            return NULL;
        chain = chain_new();
        if (chain == NULL)
            return NULL;
        if (chain_insert(chain, version, Py_None) < 0 ||
            PyDict_SetItem(self->chains, key, (PyObject *)chain) < 0) {
            Py_DECREF(chain);
            return NULL;
        }
        Py_DECREF(chain);
        if (self->max_live_versions < 1)
            self->max_live_versions = 1;
        Py_RETURN_TRUE;
    }
    if (chain_index(chain, version) >= 0)
        Py_RETURN_FALSE;
    int base = chain_max_leq(chain, version);
    PyObject *value = base >= 0 ? chain->entries[base].value : Py_None;
    if (chain_insert(chain, version, value) < 0)
        return NULL;
    note_chain_size(self, chain);
    Py_RETURN_TRUE;
}

static PyObject *apply_name = NULL;  /* interned "apply" */

static int
apply_operation(ChainObject *chain, int idx, PyObject *operation)
{
    PyObject *fresh = PyObject_CallMethodOneArg(
        operation, apply_name, chain->entries[idx].value);
    if (fresh == NULL)
        return -1;
    Py_SETREF(chain->entries[idx].value, fresh);
    return 0;
}

static PyObject *
MVStore_apply_geq(MVStoreObject *self, PyObject *const *args,
                  Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_Format(PyExc_TypeError,
                     "apply_geq() takes exactly 3 arguments (%zd given)",
                     nargs);
        return NULL;
    }
    PyObject *key = args[0], *operation = args[2];
    long long version;
    if (as_version(args[1], &version) < 0)
        return NULL;
    ChainObject *chain = store_chain(self, key);
    if (chain == NULL && PyErr_Occurred())
        return NULL;
    int idx = chain ? chain_index(chain, version) : -1;
    if (idx < 0)
        return raise_keyed(&missing_version_cls, "MissingVersionError",
                           key, version);
    int count = chain->n - idx;
    PyObject *written = PyTuple_New(count);
    if (written == NULL)
        return NULL;
    for (int i = idx; i < chain->n; i++) {
        if (apply_operation(chain, i, operation) < 0) {
            Py_DECREF(written);
            return NULL;
        }
        PyObject *num = PyLong_FromLongLong(chain->entries[i].version);
        if (num == NULL) {
            Py_DECREF(written);
            return NULL;
        }
        PyTuple_SET_ITEM(written, i - idx, num);
    }
    self->total_writes += count;
    if (count > 1)
        self->dual_writes++;
    return written;
}

static PyObject *
MVStore_apply_exact(MVStoreObject *self, PyObject *const *args,
                    Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_Format(PyExc_TypeError,
                     "apply_exact() takes exactly 3 arguments (%zd given)",
                     nargs);
        return NULL;
    }
    PyObject *key = args[0], *operation = args[2];
    long long version;
    if (as_version(args[1], &version) < 0)
        return NULL;
    ChainObject *chain = store_chain(self, key);
    if (chain == NULL && PyErr_Occurred())
        return NULL;
    int idx = chain ? chain_index(chain, version) : -1;
    if (idx < 0)
        return raise_keyed(&missing_version_cls, "MissingVersionError",
                           key, version);
    if (apply_operation(chain, idx, operation) < 0)
        return NULL;
    self->total_writes++;
    Py_RETURN_NONE;
}

static PyObject *
MVStore_collect(MVStoreObject *self, PyObject *arg)
{
    long long read_version;
    if (as_version(arg, &read_version) < 0)
        return NULL;
    long long dropped = 0;
    Py_ssize_t pos = 0;
    PyObject *key, *chain_obj;
    while (PyDict_Next(self->chains, &pos, &key, &chain_obj)) {
        ChainObject *chain = (ChainObject *)chain_obj;
        if (chain->n == 0)
            continue;
        if (chain->entries[chain->n - 1].version < read_version) {
            /* Whole chain below the new read version: rename the head
             * (the chain max) to read_version, drop everything else. */
            PyObject *value = chain->entries[chain->n - 1].value;
            Py_INCREF(value);
            dropped += chain->n;
            for (int i = 0; i < chain->n; i++)
                Py_CLEAR(chain->entries[i].value);
            chain->n = 0;
            if (chain_insert(chain, read_version, value) < 0) {
                Py_DECREF(value);
                return NULL;
            }
            Py_DECREF(value);
            continue;
        }
        /* First index at or above read_version (exists: the tail is). */
        int ge = 0;
        while (chain->entries[ge].version < read_version)
            ge++;
        if (ge == 0)
            continue;
        int has_exact = chain->entries[ge].version == read_version;
        PyObject *carry = NULL;
        if (!has_exact) {
            carry = chain->entries[ge - 1].value;
            Py_INCREF(carry);
        }
        for (int i = 0; i < ge; i++)
            Py_CLEAR(chain->entries[i].value);
        int remaining = chain->n - ge;
        memmove(chain->entries, chain->entries + ge,
                (size_t)remaining * sizeof(VEntry));
        chain->n = remaining;
        dropped += ge;
        if (carry != NULL) {
            if (chain_insert(chain, read_version, carry) < 0) {
                Py_DECREF(carry);
                return NULL;
            }
            Py_DECREF(carry);
        }
    }
    return PyLong_FromLongLong(dropped);
}

static PyObject *
MVStore_live_version_histogram(MVStoreObject *self, PyObject *unused)
{
    PyObject *histogram = PyDict_New();
    if (histogram == NULL)
        return NULL;
    Py_ssize_t pos = 0;
    PyObject *key, *chain_obj;
    while (PyDict_Next(self->chains, &pos, &key, &chain_obj)) {
        ChainObject *chain = (ChainObject *)chain_obj;
        PyObject *size = PyLong_FromLong(chain->n);
        if (size == NULL)
            goto fail;
        PyObject *count = PyDict_GetItemWithError(histogram, size);
        if (count == NULL && PyErr_Occurred()) {
            Py_DECREF(size);
            goto fail;
        }
        PyObject *bumped = PyLong_FromLong(
            count ? PyLong_AsLong(count) + 1 : 1);
        if (bumped == NULL ||
            PyDict_SetItem(histogram, size, bumped) < 0) {
            Py_XDECREF(bumped);
            Py_DECREF(size);
            goto fail;
        }
        Py_DECREF(bumped);
        Py_DECREF(size);
    }
    return histogram;
fail:
    Py_DECREF(histogram);
    return NULL;
}

static PyObject *
MVStore_snapshot(MVStoreObject *self, PyObject *unused)
{
    PyObject *snapshot = PyDict_New();
    if (snapshot == NULL)
        return NULL;
    Py_ssize_t pos = 0;
    PyObject *key, *chain_obj;
    while (PyDict_Next(self->chains, &pos, &key, &chain_obj)) {
        ChainObject *chain = (ChainObject *)chain_obj;
        PyObject *copy = PyDict_New();
        if (copy == NULL)
            goto fail;
        for (int i = 0; i < chain->n; i++) {
            PyObject *num = PyLong_FromLongLong(chain->entries[i].version);
            if (num == NULL ||
                PyDict_SetItem(copy, num, chain->entries[i].value) < 0) {
                Py_XDECREF(num);
                Py_DECREF(copy);
                goto fail;
            }
            Py_DECREF(num);
        }
        if (PyDict_SetItem(snapshot, key, copy) < 0) {
            Py_DECREF(copy);
            goto fail;
        }
        Py_DECREF(copy);
    }
    return snapshot;
fail:
    Py_DECREF(snapshot);
    return NULL;
}

static PyMethodDef MVStore_methods[] = {
    {"keys", (PyCFunction)MVStore_keys, METH_NOARGS,
     "View of the stored keys."},
    {"versions", (PyCFunction)MVStore_versions, METH_O,
     "Sorted list of live versions of key (empty if absent)."},
    {"exists", (PyCFunction)MVStore_exists, METH_FASTCALL,
     "Does key exist at exactly version?"},
    {"exists_above", (PyCFunction)MVStore_exists_above, METH_FASTCALL,
     "Does any version of key strictly greater than version exist?"},
    {"get_exact", (PyCFunction)MVStore_get_exact, METH_FASTCALL,
     "Value of key at exactly version."},
    {"read_max_leq", (PyCFunction)MVStore_read_max_leq,
     METH_FASTCALL | METH_KEYWORDS,
     "Value at the maximum existing version of key not above version."},
    {"version_max_leq", (PyCFunction)MVStore_version_max_leq, METH_FASTCALL,
     "The maximum existing version of key not above version."},
    {"load", (PyCFunction)MVStore_load, METH_FASTCALL | METH_KEYWORDS,
     "Install an initial value (bulk load before the simulation starts)."},
    {"ensure_version", (PyCFunction)MVStore_ensure_version, METH_FASTCALL,
     "Atomically check-and-create key at version (copy-on-update)."},
    {"apply_geq", (PyCFunction)MVStore_apply_geq, METH_FASTCALL,
     "Apply operation to every live version of key >= version."},
    {"apply_exact", (PyCFunction)MVStore_apply_exact, METH_FASTCALL,
     "Apply operation to exactly one version (NC3V step 4)."},
    {"collect", (PyCFunction)MVStore_collect, METH_O,
     "Garbage-collect versions older than the new read version."},
    {"live_version_histogram", (PyCFunction)MVStore_live_version_histogram,
     METH_NOARGS, "Map number of live versions -> count of keys."},
    {"snapshot", (PyCFunction)MVStore_snapshot, METH_NOARGS,
     "Deep-enough copy of the whole store (values are immutable)."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef MVStore_members[] = {
    {"max_live_versions", T_LONGLONG,
     offsetof(MVStoreObject, max_live_versions), 0,
     "Highest number of simultaneously live versions ever seen."},
    {"dual_writes", T_LONGLONG, offsetof(MVStoreObject, dual_writes), 0,
     "apply_geq calls that touched more than one version."},
    {"total_writes", T_LONGLONG, offsetof(MVStoreObject, total_writes), 0,
     "Total number of version applications performed."},
    {NULL, 0, 0, 0, NULL},
};

static PySequenceMethods MVStore_as_sequence = {
    .sq_contains = (objobjproc)MVStore_contains,
};

static PyTypeObject MVStoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.storage.mvstore.MVStore",
    .tp_basicsize = sizeof(MVStoreObject),
    .tp_dealloc = (destructor)MVStore_dealloc,
    .tp_as_sequence = &MVStore_as_sequence,
    .tp_flags = (Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE |
                 Py_TPFLAGS_HAVE_GC),
    .tp_doc = "A per-node store mapping key -> {version -> value} "
              "(compiled).",
    .tp_traverse = (traverseproc)MVStore_traverse,
    .tp_clear = (inquiry)MVStore_clear_slots,
    .tp_methods = MVStore_methods,
    .tp_members = MVStore_members,
    .tp_init = (initproc)MVStore_init,
    .tp_new = PyType_GenericNew,
};

static struct PyModuleDef mvstore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._accel.storage_mvstore",
    .m_doc = "Compiled twin of repro.storage.mvstore.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit_storage_mvstore(void)
{
    apply_name = PyUnicode_InternFromString("apply");
    if (apply_name == NULL)
        return NULL;
    raise_sentinel = PyObject_CallObject((PyObject *)&PyBaseObject_Type,
                                         NULL);
    if (raise_sentinel == NULL)
        return NULL;
    if (PyType_Ready(&ChainType) < 0 || PyType_Ready(&MVStoreType) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&mvstore_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&MVStoreType);
    if (PyModule_AddObject(module, "MVStore", (PyObject *)&MVStoreType) < 0) {
        Py_DECREF(&MVStoreType);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
