/* Compiled twin of repro.sim.simulator (the "ckernel" accel backend).
 *
 * Same two-queue design as the pure Simulator — a binary heap for
 * positive-delay callbacks plus a FIFO ring for zero-delay ones — but
 * with C struct entries {time, seq, callback, args} instead of Python
 * tuples, so the run loop never allocates or compares tuples.  Ordering
 * is by (time, sequence): identical to the pure kernel and verified by
 * the ReferenceSimulator differential suite under both builds.
 *
 * Event/Process/Timeout/AllOf/AnyOf remain the canonical (pure) classes:
 * the factory methods resolve them lazily from repro.sim.events /
 * repro.sim.process on first use, so whatever the module-selection shim
 * installed there is what this simulator hands out.
 *
 * One normalization: timestamps are stored as C doubles, so `now` is
 * always a float even when a caller passed an int to schedule_at (the
 * pure kernel would propagate the int).  Numeric equality is unaffected.
 *
 * Entries are popped before their callbacks run and the queues are
 * re-read from `self` on every iteration, so callbacks may freely
 * schedule (growing/reallocating the arrays) mid-step.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

static PyObject *simulation_error_cls = NULL;
static PyObject *event_cls = NULL;
static PyObject *timeout_cls = NULL;
static PyObject *process_cls = NULL;
static PyObject *allof_cls = NULL;
static PyObject *anyof_cls = NULL;
static PyObject *empty_args = NULL;       /* shared () for no-arg callbacks */
static PyObject *triggered_name = NULL;   /* interned "triggered" */

static PyObject *
resolve(PyObject **cache, const char *module, const char *name)
{
    if (*cache == NULL) {
        PyObject *mod = PyImport_ImportModule(module);
        if (mod == NULL)
            return NULL;
        *cache = PyObject_GetAttrString(mod, name);
        Py_DECREF(mod);
    }
    return *cache;
}

static PyObject *
sim_error(void)
{
    return resolve(&simulation_error_cls, "repro.errors", "SimulationError");
}

/* Raise SimulationError with a plain C-string message. */
static PyObject *
raise_sim_error(const char *message)
{
    PyObject *cls = sim_error();
    if (cls == NULL)
        return NULL;
    PyErr_SetString(cls, message);
    return NULL;
}

/* Raise SimulationError with an already-built message object. */
static PyObject *
raise_sim_error_obj(PyObject *message)
{
    if (message == NULL)
        return NULL;  /* allocation failed; that error is already set */
    PyObject *cls = sim_error();
    if (cls != NULL)
        PyErr_SetObject(cls, message);
    Py_DECREF(message);
    return NULL;
}

typedef struct {
    double time;
    long long seq;
    PyObject *cb;       /* owned */
    PyObject *args;     /* owned tuple */
} SEntry;

typedef struct {
    PyObject_HEAD
    double now;
    long long sequence;
    SEntry *heap;       /* binary heap ordered by (time, seq) */
    int hn, hcap;
    SEntry *fifo;       /* ring buffer; .time unused (== now by invariant) */
    int fhead, fn, fcap;
} SimulatorObject;

/* ------------------------------------------------------------------ */
/* Queue plumbing                                                      */
/* ------------------------------------------------------------------ */

static int
entry_lt(const SEntry *a, const SEntry *b)
{
    return a->time < b->time || (a->time == b->time && a->seq < b->seq);
}

static int
heap_push(SimulatorObject *self, SEntry entry)
{
    if (self->hn == self->hcap) {
        int cap = self->hcap ? self->hcap * 2 : 16;
        SEntry *grown = PyMem_Realloc(self->heap,
                                      (size_t)cap * sizeof(SEntry));
        if (grown == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        self->heap = grown;
        self->hcap = cap;
    }
    int i = self->hn++;
    SEntry *h = self->heap;
    while (i > 0) {
        int parent = (i - 1) >> 1;
        if (!entry_lt(&entry, &h[parent]))
            break;
        h[i] = h[parent];
        i = parent;
    }
    h[i] = entry;
    return 0;
}

static SEntry
heap_pop(SimulatorObject *self)
{
    SEntry *h = self->heap;
    SEntry top = h[0];
    SEntry last = h[--self->hn];
    int n = self->hn;
    if (n > 0) {
        int i = 0;
        for (;;) {
            int child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && entry_lt(&h[child + 1], &h[child]))
                child++;
            if (!entry_lt(&h[child], &last))
                break;
            h[i] = h[child];
            i = child;
        }
        h[i] = last;
    }
    return top;
}

static int
fifo_push(SimulatorObject *self, SEntry entry)
{
    if (self->fn == self->fcap) {
        int cap = self->fcap ? self->fcap * 2 : 16;
        SEntry *grown = PyMem_Malloc((size_t)cap * sizeof(SEntry));
        if (grown == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        for (int i = 0; i < self->fn; i++)
            grown[i] = self->fifo[(self->fhead + i) & (self->fcap - 1)];
        PyMem_Free(self->fifo);
        self->fifo = grown;
        self->fcap = cap;
        self->fhead = 0;
    }
    self->fifo[(self->fhead + self->fn) & (self->fcap - 1)] = entry;
    self->fn++;
    return 0;
}

static SEntry
fifo_pop(SimulatorObject *self)
{
    SEntry entry = self->fifo[self->fhead];
    self->fhead = (self->fhead + 1) & (self->fcap - 1);
    self->fn--;
    return entry;
}

/* Pack trailing fastcall arguments into an owned tuple. */
static PyObject *
pack_args(PyObject *const *args, Py_ssize_t start, Py_ssize_t nargs)
{
    Py_ssize_t count = nargs - start;
    if (count <= 0) {
        Py_INCREF(empty_args);
        return empty_args;
    }
    PyObject *packed = PyTuple_New(count);
    if (packed == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < count; i++) {
        PyObject *arg = args[start + i];
        Py_INCREF(arg);
        PyTuple_SET_ITEM(packed, i, arg);
    }
    return packed;
}

/* Run one popped entry's callback; consumes the entry's references. */
static int
fire(SEntry entry)
{
    PyObject *result = PyObject_Call(entry.cb, entry.args, NULL);
    Py_DECREF(entry.cb);
    Py_DECREF(entry.args);
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    return 0;
}

static void
discard(SEntry entry)
{
    Py_DECREF(entry.cb);
    Py_DECREF(entry.args);
}

/* ------------------------------------------------------------------ */
/* Lifecycle                                                           */
/* ------------------------------------------------------------------ */

static int
Simulator_init(SimulatorObject *self, PyObject *args, PyObject *kwds)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwds && PyDict_GET_SIZE(kwds))) {
        PyErr_SetString(PyExc_TypeError, "Simulator() takes no arguments");
        return -1;
    }
    self->now = 0.0;
    self->sequence = 0;
    return 0;
}

static int
Simulator_traverse(SimulatorObject *self, visitproc visit, void *arg)
{
    for (int i = 0; i < self->hn; i++) {
        Py_VISIT(self->heap[i].cb);
        Py_VISIT(self->heap[i].args);
    }
    for (int i = 0; i < self->fn; i++) {
        SEntry *entry = &self->fifo[(self->fhead + i) & (self->fcap - 1)];
        Py_VISIT(entry->cb);
        Py_VISIT(entry->args);
    }
    return 0;
}

static int
Simulator_clear_queues(SimulatorObject *self)
{
    for (int i = 0; i < self->hn; i++) {
        Py_CLEAR(self->heap[i].cb);
        Py_CLEAR(self->heap[i].args);
    }
    self->hn = 0;
    for (int i = 0; i < self->fn; i++) {
        SEntry *entry = &self->fifo[(self->fhead + i) & (self->fcap - 1)];
        Py_CLEAR(entry->cb);
        Py_CLEAR(entry->args);
    }
    self->fn = 0;
    self->fhead = 0;
    return 0;
}

static void
Simulator_dealloc(SimulatorObject *self)
{
    PyObject_GC_UnTrack(self);
    Simulator_clear_queues(self);
    PyMem_Free(self->heap);
    PyMem_Free(self->fifo);
    self->heap = NULL;
    self->fifo = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* ------------------------------------------------------------------ */
/* Scheduling primitives                                               */
/* ------------------------------------------------------------------ */

static PyObject *
Simulator_schedule(SimulatorObject *self, PyObject *const *args,
                   Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_Format(PyExc_TypeError,
                     "schedule() takes at least 2 arguments (%zd given)",
                     nargs);
        return NULL;
    }
    double delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    SEntry entry;
    entry.cb = args[1];
    entry.args = pack_args(args, 2, nargs);
    if (entry.args == NULL)
        return NULL;
    Py_INCREF(entry.cb);
    if (delay <= 0.0) {
        if (delay < 0.0) {
            discard(entry);
            return raise_sim_error_obj(
                PyUnicode_FromFormat("negative delay: %R", args[0]));
        }
        entry.time = self->now;
        entry.seq = ++self->sequence;
        if (fifo_push(self, entry) < 0) {
            discard(entry);
            return NULL;
        }
        Py_RETURN_NONE;
    }
    entry.time = self->now + delay;
    entry.seq = ++self->sequence;
    if (heap_push(self, entry) < 0) {
        discard(entry);
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
Simulator_schedule_now(SimulatorObject *self, PyObject *const *args,
                       Py_ssize_t nargs)
{
    if (nargs < 1) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_now() takes at least 1 argument (0 given)");
        return NULL;
    }
    SEntry entry;
    entry.cb = args[0];
    entry.args = pack_args(args, 1, nargs);
    if (entry.args == NULL)
        return NULL;
    Py_INCREF(entry.cb);
    entry.time = self->now;
    entry.seq = ++self->sequence;
    if (fifo_push(self, entry) < 0) {
        discard(entry);
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
Simulator_schedule_at(SimulatorObject *self, PyObject *const *args,
                      Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_Format(PyExc_TypeError,
                     "schedule_at() takes at least 2 arguments (%zd given)",
                     nargs);
        return NULL;
    }
    double time = PyFloat_AsDouble(args[0]);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    SEntry entry;
    entry.cb = args[1];
    entry.args = pack_args(args, 2, nargs);
    if (entry.args == NULL)
        return NULL;
    Py_INCREF(entry.cb);
    if (time <= self->now) {
        if (time < self->now) {
            discard(entry);
            PyObject *now_obj = PyFloat_FromDouble(self->now);
            if (now_obj == NULL)
                return NULL;
            PyObject *msg = PyUnicode_FromFormat(
                "schedule_at time %R is in the past (%R)",
                args[0], now_obj);
            Py_DECREF(now_obj);
            return raise_sim_error_obj(msg);
        }
        entry.time = self->now;
        entry.seq = ++self->sequence;
        if (fifo_push(self, entry) < 0) {
            discard(entry);
            return NULL;
        }
        Py_RETURN_NONE;
    }
    entry.time = time;
    entry.seq = ++self->sequence;
    if (heap_push(self, entry) < 0) {
        discard(entry);
        return NULL;
    }
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* Event/process factories (canonical classes, resolved lazily)        */
/* ------------------------------------------------------------------ */

static PyObject *
Simulator_event(SimulatorObject *self, PyObject *unused)
{
    PyObject *cls = resolve(&event_cls, "repro.sim.events", "Event");
    if (cls == NULL)
        return NULL;
    return PyObject_CallFunctionObjArgs(cls, (PyObject *)self, NULL);
}

static PyObject *
Simulator_timeout(SimulatorObject *self, PyObject *const *args,
                  Py_ssize_t nargs, PyObject *kwnames)
{
    if (nargs > 2) {
        PyErr_Format(PyExc_TypeError,
                     "timeout() takes 1 or 2 arguments (%zd given)", nargs);
        return NULL;
    }
    PyObject *delay = nargs >= 1 ? args[0] : NULL;
    PyObject *value = nargs == 2 ? args[1] : NULL;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    for (Py_ssize_t k = 0; k < nkw; k++) {
        PyObject *kwname = PyTuple_GET_ITEM(kwnames, k);
        if (PyUnicode_CompareWithASCIIString(kwname, "value") == 0 &&
            value == NULL) {
            value = args[nargs + k];
        }
        else if (PyUnicode_CompareWithASCIIString(kwname, "delay") == 0 &&
                 delay == NULL) {
            delay = args[nargs + k];
        }
        else {
            PyErr_Format(PyExc_TypeError,
                         "timeout() got an unexpected keyword argument %R",
                         kwname);
            return NULL;
        }
    }
    if (delay == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "timeout() missing required argument 'delay'");
        return NULL;
    }
    PyObject *cls = resolve(&timeout_cls, "repro.sim.events", "Timeout");
    if (cls == NULL)
        return NULL;
    return PyObject_CallFunctionObjArgs(cls, (PyObject *)self, delay,
                                        value ? value : Py_None, NULL);
}

static PyObject *
Simulator_process(SimulatorObject *self, PyObject *const *args,
                  Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *cls = resolve(&process_cls, "repro.sim.process", "Process");
    if (cls == NULL)
        return NULL;
    PyObject *generator = NULL, *name = NULL;
    Py_ssize_t npos = nargs;
    if (npos >= 1)
        generator = args[0];
    if (npos >= 2)
        name = args[1];
    if (npos > 2) {
        PyErr_Format(PyExc_TypeError,
                     "process() takes at most 2 arguments (%zd given)", npos);
        return NULL;
    }
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    for (Py_ssize_t k = 0; k < nkw; k++) {
        PyObject *kwname = PyTuple_GET_ITEM(kwnames, k);
        if (PyUnicode_CompareWithASCIIString(kwname, "name") == 0 &&
            name == NULL) {
            name = args[npos + k];
        }
        else if (PyUnicode_CompareWithASCIIString(kwname, "generator") == 0 &&
                 generator == NULL) {
            generator = args[npos + k];
        }
        else {
            PyErr_Format(PyExc_TypeError,
                         "process() got an unexpected keyword argument %R",
                         kwname);
            return NULL;
        }
    }
    if (generator == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "process() missing required argument 'generator'");
        return NULL;
    }
    if (name == NULL)
        return PyObject_CallFunctionObjArgs(cls, (PyObject *)self,
                                            generator, NULL);
    return PyObject_CallFunctionObjArgs(cls, (PyObject *)self, generator,
                                        name, NULL);
}

static PyObject *
Simulator_all_of(SimulatorObject *self, PyObject *events)
{
    PyObject *cls = resolve(&allof_cls, "repro.sim.events", "AllOf");
    if (cls == NULL)
        return NULL;
    return PyObject_CallFunctionObjArgs(cls, (PyObject *)self, events, NULL);
}

static PyObject *
Simulator_any_of(SimulatorObject *self, PyObject *events)
{
    PyObject *cls = resolve(&anyof_cls, "repro.sim.events", "AnyOf");
    if (cls == NULL)
        return NULL;
    return PyObject_CallFunctionObjArgs(cls, (PyObject *)self, events, NULL);
}

/* ------------------------------------------------------------------ */
/* Execution                                                           */
/* ------------------------------------------------------------------ */

/* One scheduler step.  Returns 1 if a callback ran, 0 if the queues were
 * empty, -1 on error. */
static int
step_once(SimulatorObject *self)
{
    if (self->fn) {
        /* Every fifo entry is due at exactly `now`; a heap entry beats it
         * only when due at the same time with an older sequence number. */
        if (self->hn) {
            SEntry *head = &self->heap[0];
            if (head->time <= self->now &&
                head->seq < self->fifo[self->fhead].seq) {
                if (fire(heap_pop(self)) < 0)
                    return -1;
                return 1;
            }
        }
        if (fire(fifo_pop(self)) < 0)
            return -1;
        return 1;
    }
    if (!self->hn)
        return 0;
    SEntry entry = heap_pop(self);
    if (entry.time < self->now) {
        discard(entry);
        raise_sim_error("event heap time went backwards");
        return -1;
    }
    self->now = entry.time;
    if (fire(entry) < 0)
        return -1;
    return 1;
}

static PyObject *
Simulator_step(SimulatorObject *self, PyObject *unused)
{
    int ran = step_once(self);
    if (ran < 0)
        return NULL;
    return PyBool_FromLong(ran);
}

static PyObject *
Simulator_run(SimulatorObject *self, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    PyObject *until_obj = NULL;
    if (nargs > 1) {
        PyErr_Format(PyExc_TypeError,
                     "run() takes at most 1 argument (%zd given)", nargs);
        return NULL;
    }
    if (nargs == 1)
        until_obj = args[0];
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    for (Py_ssize_t k = 0; k < nkw; k++) {
        PyObject *kwname = PyTuple_GET_ITEM(kwnames, k);
        if (PyUnicode_CompareWithASCIIString(kwname, "until") == 0 &&
            until_obj == NULL) {
            until_obj = args[nargs + k];
        }
        else {
            PyErr_Format(PyExc_TypeError,
                         "run() got an unexpected keyword argument %R",
                         kwname);
            return NULL;
        }
    }
    if (until_obj == NULL || until_obj == Py_None) {
        for (;;) {
            int ran = step_once(self);
            if (ran < 0)
                return NULL;
            if (ran == 0)
                Py_RETURN_NONE;
        }
    }
    double until = PyFloat_AsDouble(until_obj);
    if (until == -1.0 && PyErr_Occurred())
        return NULL;
    if (until < self->now) {
        PyObject *now_obj = PyFloat_FromDouble(self->now);
        if (now_obj == NULL)
            return NULL;
        PyObject *msg = PyUnicode_FromFormat(
            "run until %R is in the past (%R)", until_obj, now_obj);
        Py_DECREF(now_obj);
        return raise_sim_error_obj(msg);
    }
    for (;;) {
        if (self->fn) {
            if (step_once(self) < 0)
                return NULL;
            continue;
        }
        if (self->hn && self->heap[0].time <= until) {
            if (step_once(self) < 0)
                return NULL;
            continue;
        }
        break;
    }
    self->now = until;
    Py_RETURN_NONE;
}

static PyObject *
Simulator_run_until_triggered(SimulatorObject *self, PyObject *const *args,
                              Py_ssize_t nargs, PyObject *kwnames)
{
    if (nargs > 2) {
        PyErr_Format(PyExc_TypeError,
                     "run_until_triggered() takes 1 or 2 arguments "
                     "(%zd given)", nargs);
        return NULL;
    }
    PyObject *event = nargs >= 1 ? args[0] : NULL;
    PyObject *limit_obj = nargs == 2 ? args[1] : NULL;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    for (Py_ssize_t k = 0; k < nkw; k++) {
        PyObject *kwname = PyTuple_GET_ITEM(kwnames, k);
        if (PyUnicode_CompareWithASCIIString(kwname, "limit") == 0 &&
            limit_obj == NULL) {
            limit_obj = args[nargs + k];
        }
        else if (PyUnicode_CompareWithASCIIString(kwname, "event") == 0 &&
                 event == NULL) {
            event = args[nargs + k];
        }
        else {
            PyErr_Format(PyExc_TypeError,
                         "run_until_triggered() got an unexpected keyword "
                         "argument %R", kwname);
            return NULL;
        }
    }
    if (event == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "run_until_triggered() missing required argument "
                        "'event'");
        return NULL;
    }
    double limit = Py_HUGE_VAL;
    if (limit_obj != NULL) {
        limit = PyFloat_AsDouble(limit_obj);
        if (limit == -1.0 && PyErr_Occurred())
            return NULL;
    }
    for (;;) {
        PyObject *flag = PyObject_GetAttr(event, triggered_name);
        if (flag == NULL)
            return NULL;
        int triggered = PyObject_IsTrue(flag);
        Py_DECREF(flag);
        if (triggered < 0)
            return NULL;
        if (triggered)
            Py_RETURN_NONE;
        if (!self->fn) {
            if (!self->hn)
                return raise_sim_error(
                    "simulation drained before event triggered");
            if (self->heap[0].time > limit) {
                if (limit > self->now)
                    self->now = limit;
                PyObject *limit_repr = limit_obj
                    ? PyObject_Repr(limit_obj)
                    : PyUnicode_FromString("inf");
                if (limit_repr == NULL)
                    return NULL;
                PyObject *msg = PyUnicode_FromFormat(
                    "event not triggered by time limit %U "
                    "(%lld callbacks pending)",
                    limit_repr,
                    (long long)self->hn + (long long)self->fn);
                Py_DECREF(limit_repr);
                return raise_sim_error_obj(msg);
            }
        }
        if (step_once(self) < 0)
            return NULL;
    }
}

static PyObject *
Simulator_peek_time(SimulatorObject *self, PyObject *unused)
{
    if (self->fn)
        return PyFloat_FromDouble(self->now);
    if (self->hn)
        return PyFloat_FromDouble(self->heap[0].time);
    Py_RETURN_NONE;
}

static PyObject *
Simulator_get_pending_count(SimulatorObject *self, void *closure)
{
    return PyLong_FromLongLong((long long)self->hn + (long long)self->fn);
}

static PyObject *
Simulator_get_scheduled_count(SimulatorObject *self, void *closure)
{
    return PyLong_FromLongLong(self->sequence);
}

static PyMethodDef Simulator_methods[] = {
    {"schedule", (PyCFunction)Simulator_schedule, METH_FASTCALL,
     "Run callback(*args) after delay units of simulated time."},
    {"schedule_now", (PyCFunction)Simulator_schedule_now, METH_FASTCALL,
     "Run callback(*args) at the current time, after pending callbacks."},
    {"schedule_at", (PyCFunction)Simulator_schedule_at, METH_FASTCALL,
     "Run callback(*args) at absolute simulated time."},
    {"event", (PyCFunction)Simulator_event, METH_NOARGS,
     "Create a fresh untriggered event."},
    {"timeout", (PyCFunction)Simulator_timeout,
     METH_FASTCALL | METH_KEYWORDS,
     "Create an event that triggers after delay time units."},
    {"process", (PyCFunction)Simulator_process,
     METH_FASTCALL | METH_KEYWORDS,
     "Start a generator as a simulated process."},
    {"all_of", (PyCFunction)Simulator_all_of, METH_O,
     "Event that triggers when all of events have triggered."},
    {"any_of", (PyCFunction)Simulator_any_of, METH_O,
     "Event that triggers when any of events triggers."},
    {"step", (PyCFunction)Simulator_step, METH_NOARGS,
     "Execute the next scheduled callback; False if nothing was left."},
    {"run", (PyCFunction)Simulator_run, METH_FASTCALL | METH_KEYWORDS,
     "Run until the queues drain or the clock reaches `until`."},
    {"run_until_triggered", (PyCFunction)Simulator_run_until_triggered,
     METH_FASTCALL | METH_KEYWORDS,
     "Run until event triggers (bounded by limit)."},
    {"peek_time", (PyCFunction)Simulator_peek_time, METH_NOARGS,
     "Simulated time of the next scheduled callback (None if idle)."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef Simulator_members[] = {
    {"now", T_DOUBLE, offsetof(SimulatorObject, now), 0,
     "Current simulated time."},
    {NULL, 0, 0, 0, NULL},
};

static PyGetSetDef Simulator_getset[] = {
    {"pending_count", (getter)Simulator_get_pending_count, NULL,
     "Number of callbacks currently scheduled.", NULL},
    {"scheduled_count", (getter)Simulator_get_scheduled_count, NULL,
     "Total callbacks ever scheduled — the benchmarks' event counter.",
     NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject SimulatorType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim.simulator.Simulator",
    .tp_basicsize = sizeof(SimulatorObject),
    .tp_dealloc = (destructor)Simulator_dealloc,
    .tp_flags = (Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE |
                 Py_TPFLAGS_HAVE_GC),
    .tp_doc =
        "A deterministic discrete-event simulator (compiled).\n"
        "\n"
        "Scheduled callbacks are ordered by (time, sequence_number) so "
        "ties are\nbroken by scheduling order, never by hash or "
        "identity.\n"
        "\n"
        "Example:\n"
        "    >>> sim = Simulator()\n"
        "    >>> def hello():\n"
        "    ...     yield sim.timeout(5.0)\n"
        "    ...     return sim.now\n"
        "    >>> proc = sim.process(hello())\n"
        "    >>> sim.run()\n"
        "    >>> proc.value\n"
        "    5.0\n",
    .tp_traverse = (traverseproc)Simulator_traverse,
    .tp_clear = (inquiry)Simulator_clear_queues,
    .tp_methods = Simulator_methods,
    .tp_members = Simulator_members,
    .tp_getset = Simulator_getset,
    .tp_init = (initproc)Simulator_init,
    .tp_new = PyType_GenericNew,
};

static struct PyModuleDef simulator_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._accel.sim_simulator",
    .m_doc = "Compiled twin of repro.sim.simulator.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit_sim_simulator(void)
{
    triggered_name = PyUnicode_InternFromString("triggered");
    if (triggered_name == NULL)
        return NULL;
    empty_args = PyTuple_New(0);
    if (empty_args == NULL)
        return NULL;
    if (PyType_Ready(&SimulatorType) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&simulator_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&SimulatorType);
    if (PyModule_AddObject(module, "Simulator",
                           (PyObject *)&SimulatorType) < 0) {
        Py_DECREF(&SimulatorType);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
