"""Accelerated-build loader — optional compiled kernels, pure as reference.

The eight hot kernel modules (``repro.sim.{events,process,simulator}``,
``repro.net.{message,network}``, ``repro.storage.{values,counters,mvstore}``)
each end with a call to :func:`install`.  When an accelerated build is
present, :func:`install` swaps the module's public names for their compiled
twins; otherwise the pure-Python definitions stand untouched.  The swap
happens *before* any other module imports those names, so every consumer —
runtime, protocols, experiments — binds whichever implementation the build
selected, without ever importing this package directly (enforced by
``tools/check_layering.py`` rule 6).

Build selection is controlled by the ``REPRO_ACCEL`` environment variable:

* unset — auto: use compiled modules when importable, fall back silently.
* ``0`` — force pure Python even when a compiled build is present.
* ``1`` — require the compiled build; raise :class:`AccelUnavailableError`
  if the build manifest is missing or a manifest module fails to import.

A build (``tools/build_accel.py``) drops compiled extension modules next to
this file — named after the canonical module with dots flattened, e.g.
``repro._accel.storage_counters`` — plus ``_manifest.json`` recording the
backend and the module list.  Two backends exist: ``mypyc`` (compiles the
pure sources themselves) and ``ckernel`` (hand-written C for the three
hottest modules).  Both must be bit-for-bit equivalent to pure Python; the
differential oracles (scheduler equivalence, aggregate-vs-scan quiescence,
chaos digests, ``tools/bench.py --check``) are the proof.

The pure definitions are never lost: :func:`install` snapshots each kernel
module's namespace *before* swapping, and :func:`pure_namespace` hands the
snapshot back — this is how the benchmarks measure pure vs. compiled
side-by-side in a single process and how the differential test suites run
both implementations against the same oracle.
"""

from __future__ import annotations

import importlib
import json
import os
import typing

__all__ = [
    "KERNEL_MODULES",
    "AccelUnavailableError",
    "accel_backend",
    "accel_module_name",
    "accel_status",
    "accelerated_modules",
    "build_mode",
    "install",
    "load_accel",
    "mypyc_attr",
    "pure_namespace",
]

#: Canonical names of the compilable kernel modules, in import order.
KERNEL_MODULES: typing.Tuple[str, ...] = (
    "repro.sim.events",
    "repro.sim.process",
    "repro.sim.simulator",
    "repro.net.message",
    "repro.net.network",
    "repro.storage.values",
    "repro.storage.counters",
    "repro.storage.mvstore",
)

_MANIFEST_NAME = "_manifest.json"

#: Per-module selection outcome: canonical name -> "pure" | "accel".
_status: typing.Dict[str, str] = {}
#: Pure namespace snapshots taken before any swap.
_pure: typing.Dict[str, typing.Dict[str, typing.Any]] = {}
#: Names actually replaced per accelerated module.
_replaced: typing.Dict[str, typing.Tuple[str, ...]] = {}
#: Lazy-loaded manifest cache (False = not loaded yet, None = absent).
_manifest_cache: typing.Any = False


class AccelUnavailableError(ImportError):
    """``REPRO_ACCEL=1`` demanded a compiled build that is not usable."""


def accel_module_name(canonical: str) -> str:
    """``repro.sim.simulator`` -> ``repro._accel.sim_simulator``."""
    if not canonical.startswith("repro."):
        raise ValueError(f"not a repro module: {canonical!r}")
    return "repro._accel." + canonical[len("repro."):].replace(".", "_")


def _load_manifest() -> typing.Optional[dict]:
    global _manifest_cache
    if _manifest_cache is False:
        path = os.path.join(os.path.dirname(__file__), _MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                _manifest_cache = json.load(handle)
        except (OSError, ValueError):
            _manifest_cache = None
    return _manifest_cache


def _requested_mode() -> str:
    """The ``REPRO_ACCEL`` setting: ``""`` (auto), ``"0"``, or ``"1"``."""
    return os.environ.get("REPRO_ACCEL", "").strip()


def install(namespace: typing.Dict[str, typing.Any]) -> None:
    """Swap a kernel module's public names for compiled twins if available.

    Called as the last statement of each kernel module with its
    ``globals()``.  All-or-nothing per module: either every ``__all__``
    name is replaced from the compiled twin or none is.
    """
    name = namespace["__name__"]
    if name not in KERNEL_MODULES:
        raise RuntimeError(f"install() called from non-kernel module {name!r}")
    public = tuple(namespace["__all__"])
    _pure[name] = {
        attr: value for attr, value in namespace.items()
        if not (attr.startswith("__") and attr.endswith("__"))
    }
    _status[name] = "pure"
    mode = _requested_mode()
    if mode == "0":
        return
    manifest = _load_manifest()
    if manifest is None:
        if mode == "1":
            raise AccelUnavailableError(
                f"REPRO_ACCEL=1 but no accelerated build is present "
                f"(importing {name}; run `python tools/build_accel.py`)"
            )
        return
    if name not in manifest.get("modules", ()):
        # Not part of this build (e.g. the ckernel backend compiles only
        # the three hottest modules) — pure is the intended implementation.
        return
    try:
        module = importlib.import_module(accel_module_name(name))
    except ImportError as exc:
        if mode == "1":
            raise AccelUnavailableError(
                f"REPRO_ACCEL=1 but the compiled module for {name} failed "
                f"to import: {exc} (rebuild with `python tools/build_accel.py`"
                f" or clear with --clean)"
            ) from exc
        return
    missing = [attr for attr in public if not hasattr(module, attr)]
    if missing:
        if mode == "1":
            raise AccelUnavailableError(
                f"compiled module for {name} is missing public names "
                f"{missing}; rebuild with `python tools/build_accel.py`"
            )
        return
    for attr in public:
        namespace[attr] = getattr(module, attr)
    _status[name] = "accel"
    _replaced[name] = public


def build_mode() -> str:
    """``"accel"`` when any kernel module runs compiled, else ``"pure"``."""
    return "accel" if any(v == "accel" for v in _status.values()) else "pure"


def accel_backend() -> typing.Optional[str]:
    """The built backend name (``mypyc``/``ckernel``) or ``None``."""
    manifest = _load_manifest()
    return manifest.get("backend") if manifest else None


def accelerated_modules() -> typing.Tuple[str, ...]:
    """Canonical names of the kernel modules currently running compiled."""
    return tuple(n for n in KERNEL_MODULES if _status.get(n) == "accel")


def accel_status() -> typing.Dict[str, str]:
    """Per-module selection outcome for every imported kernel module."""
    return dict(_status)


def pure_namespace(canonical: str) -> typing.Dict[str, typing.Any]:
    """The pure-Python namespace snapshot of a kernel module.

    Importing the canonical module on demand guarantees the snapshot
    exists (the module's own install hook takes it before any swap).

    .. caution:: The snapshot is pure at the *module* boundary only.  It
       is taken at the end of the module body, after the module resolved
       its own imports — and under a build that compiles several kernel
       modules, an upstream kernel import may already have been swapped.
       Example: under the full mypyc build, the "pure" ``Process`` binds
       the compiled ``Event`` as its base class, so a differential suite
       driving this snapshot partially exercises compiled code.  For a
       fully pure reference arm, run the pure leg in a subprocess with
       ``REPRO_ACCEL=0`` (as ``tools/bench.py --check`` and the
       dual-build digest tests do); in-process snapshot comparisons are
       exact under the ckernel backend, whose three compiled modules
       import only kernel modules that stay pure.
    """
    if canonical not in _pure:
        importlib.import_module(canonical)
    return dict(_pure[canonical])


def load_accel(canonical: str):
    """Import and return the compiled twin of a kernel module.

    For benchmarks and differential tests that measure the compiled
    implementation explicitly (regardless of what the ambient build
    selected).  Raises :class:`AccelUnavailableError` when not built.
    """
    try:
        return importlib.import_module(accel_module_name(canonical))
    except ImportError as exc:
        raise AccelUnavailableError(
            f"no compiled build of {canonical}: {exc}"
        ) from exc


try:  # pragma: no cover - exercised only when mypy_extensions is present
    from mypy_extensions import mypyc_attr
except ImportError:  # pragma: no cover
    def mypyc_attr(**_kwargs):  # type: ignore[misc]
        """No-op stand-in when ``mypy_extensions`` is not installed."""
        def decorate(cls):
            return cls
        return decorate
