"""Lock table with commuting and non-commuting modes (Section 5).

The NC3V extension requires well-behaved transactions to take special
*commuting-read* (CR) and *commuting-write* (CW) locks, while
non-well-behaved transactions take classical *non-commuting* read/write
locks (NR/NW).  "Commuting locks are compatible with each other but not
with their non-commuting counterparts", so:

========  ====  ====  ====  ====
holder →   CR    CW    NR    NW
requester
========  ====  ====  ====  ====
CR         ok    ok    ok    --
CW         ok    ok    --    --
NR         ok    --    ok    --
NW         --    --    --    --
========  ====  ====  ====  ====

In the absence of non-commuting transactions every request is CR/CW and is
granted immediately — preserving the 3V zero-wait property.  Deadlocks can
only involve non-commuting transactions; they are avoided with the classic
*wait-die* policy keyed on the root transaction's start timestamp.
"""

from __future__ import annotations

import collections
import typing

from repro.errors import DeadlockAbort, LockError
from repro.sim.events import Event
from repro.sim.simulator import Simulator


class LockMode:
    """Lock mode constants."""

    CR = "CR"  # commuting read
    CW = "CW"  # commuting write
    NR = "NR"  # non-commuting read
    NW = "NW"  # non-commuting write

    ALL = (CR, CW, NR, NW)


_COMPATIBLE: typing.Dict[str, frozenset] = {
    LockMode.CR: frozenset({LockMode.CR, LockMode.CW, LockMode.NR}),
    LockMode.CW: frozenset({LockMode.CR, LockMode.CW}),
    LockMode.NR: frozenset({LockMode.CR, LockMode.NR}),
    LockMode.NW: frozenset(),
}

#: Within a family, the write mode subsumes the read mode.
_STRENGTH = {LockMode.CR: 0, LockMode.CW: 1, LockMode.NR: 0, LockMode.NW: 1}
_FAMILY = {
    LockMode.CR: "commuting",
    LockMode.CW: "commuting",
    LockMode.NR: "non-commuting",
    LockMode.NW: "non-commuting",
}


def compatible(requested: str, held: str) -> bool:
    """Whether a ``requested`` mode can coexist with a ``held`` mode."""
    try:
        return held in _COMPATIBLE[requested]
    except KeyError:
        raise LockError(f"unknown lock mode: {requested!r}") from None


class _Waiter(typing.NamedTuple):
    event: Event
    txn_id: str
    mode: str
    timestamp: float
    enqueued_at: float


class LockTable:
    """Per-node lock manager with FIFO queues and wait-die avoidance.

    Args:
        sim: The owning simulator (for wait-time accounting and events).

    Statistics:
        ``immediate_grants``, ``waits``, ``wait_time`` and ``deadlock_aborts``
        feed experiment C6 (cost of non-commuting transactions).
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._holders: typing.Dict[typing.Hashable, typing.Dict[str, str]] = {}
        self._queues: typing.Dict[typing.Hashable, collections.deque] = {}
        # Value dicts are insertion-ordered sets: ``release_all`` iterates
        # them, and set iteration order would vary with the per-process
        # hash seed — waking waiters in a different order run to run.
        self._keys_by_txn: typing.Dict[str, typing.Dict] = {}
        # Root-transaction start timestamps of current holders (wait-die).
        self._timestamps: typing.Dict[str, float] = {}
        self.immediate_grants = 0
        self.waits = 0
        self.wait_time = 0.0
        self.deadlock_aborts = 0

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------

    def acquire(self, key, mode: str, txn_id: str, timestamp: float) -> Event:
        """Request ``key`` in ``mode`` for transaction ``txn_id``.

        Returns:
            An event that succeeds when the lock is granted, or fails with
            :class:`DeadlockAbort` if wait-die kills the request.

        The ``timestamp`` is the root transaction's start time: an older
        transaction (smaller timestamp) may wait for a younger one; a
        younger transaction requesting a lock held by an older one *dies*.
        """
        if mode not in LockMode.ALL:
            raise LockError(f"unknown lock mode: {mode!r}")
        event = Event(self.sim)
        holders = self._holders.setdefault(key, {})
        held = holders.get(txn_id)
        if held is not None:
            self._regrant(key, holders, txn_id, held, mode, event)
            return event
        queue = self._queues.setdefault(key, collections.deque())
        conflicts = [
            (other, other_mode)
            for other, other_mode in holders.items()
            if not compatible(mode, other_mode)
        ]
        if not conflicts and not queue:
            holders[txn_id] = mode
            self._keys_by_txn.setdefault(txn_id, {})[key] = None
            self._timestamps.setdefault(txn_id, timestamp)
            self.immediate_grants += 1
            event.succeed()
            return event
        # Wait-die: die unless strictly older than every conflicting holder.
        holder_stamps = [
            self._timestamps.get(other) for other, _mode in conflicts
        ]
        if any(stamp is not None and timestamp >= stamp for stamp in holder_stamps):
            self.deadlock_aborts += 1
            event.fail(DeadlockAbort(f"wait-die on {key!r}"))
            return event
        self.waits += 1
        queue.append(_Waiter(event, txn_id, mode, timestamp, self.sim.now))
        return event

    def _regrant(self, key, holders, txn_id, held: str, mode: str,
                 event: Event) -> None:
        """Handle a request by a transaction already holding the key."""
        if _FAMILY[held] != _FAMILY[mode]:
            raise LockError(
                f"txn {txn_id!r} mixing {held} and {mode} on {key!r}"
            )
        if _STRENGTH[mode] <= _STRENGTH[held]:
            event.succeed()
            return
        # Upgrade: must be compatible with all *other* holders.
        blockers = [
            other for other, other_mode in holders.items()
            if other != txn_id and not compatible(mode, other_mode)
        ]
        if blockers:
            # Upgrades never wait in this model; conflicting upgrade dies.
            self.deadlock_aborts += 1
            event.fail(DeadlockAbort(f"upgrade conflict on {key!r}"))
            return
        holders[txn_id] = mode
        event.succeed()

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------

    def release_all(self, txn_id: str) -> None:
        """Release every lock held by ``txn_id`` and wake eligible waiters."""
        keys = self._keys_by_txn.pop(txn_id, ())
        self._timestamps.pop(txn_id, None)
        for key in keys:
            holders = self._holders.get(key)
            if holders is None:
                continue
            holders.pop(txn_id, None)
            self._wake(key)

    def cancel_waits(self, txn_id: str) -> None:
        """Cancel any queued (not yet granted) requests of ``txn_id``.

        Cancelled requests fail with :class:`DeadlockAbort` so a process
        blocked on one is woken rather than hung forever.
        """
        for key, queue in self._queues.items():
            kept = []
            cancelled = []
            for waiter in queue:
                if waiter.txn_id == txn_id:
                    cancelled.append(waiter)
                else:
                    kept.append(waiter)
            if cancelled:
                queue.clear()
                queue.extend(kept)
                for waiter in cancelled:
                    if not waiter.event.triggered:
                        waiter.event.fail(
                            DeadlockAbort(f"request cancelled on {key!r}")
                        )
                self._wake(key)

    def _wake(self, key) -> None:
        """Grant queued requests FIFO while they remain compatible."""
        holders = self._holders.setdefault(key, {})
        queue = self._queues.get(key)
        if not queue:
            return
        while queue:
            waiter = queue[0]
            blocked = any(
                not compatible(waiter.mode, held_mode)
                for other, held_mode in holders.items()
                if other != waiter.txn_id
            )
            if blocked:
                break
            queue.popleft()
            existing = holders.get(waiter.txn_id)
            if existing is None or _STRENGTH[waiter.mode] > _STRENGTH[existing]:
                holders[waiter.txn_id] = waiter.mode
            self._keys_by_txn.setdefault(waiter.txn_id, {})[key] = None
            self._timestamps.setdefault(waiter.txn_id, waiter.timestamp)
            self.wait_time += self.sim.now - waiter.enqueued_at
            waiter.event.succeed()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def holders_of(self, key) -> typing.Dict[str, str]:
        """Copy of ``{txn_id: mode}`` currently holding ``key``."""
        return dict(self._holders.get(key, {}))

    def held_keys(self, txn_id: str) -> set:
        """Keys on which ``txn_id`` currently holds locks."""
        return set(self._keys_by_txn.get(txn_id, ()))

    def queue_length(self, key) -> int:
        return len(self._queues.get(key, ()))
