"""Multi-version key-value store — one per node.

Implements the versioned record behaviour of Section 4:

* ``read_max_leq`` — "read the maximum existing version of x that does not
  exceed V(T)" (Section 4.1 step 3 / Section 4.2).
* ``ensure_version`` — copy-on-update creation of ``x(V(T))`` from the
  maximum existing version not exceeding ``V(T)`` (step 4, first half).
* ``apply_geq`` — "update all versions of x greater or equal to version
  V(T)" (step 4, second half).  When a straggler subtransaction of an old
  version runs on a node that already advanced, this produces the paper's
  *dual write* to versions ``v`` and ``v+1``.
* ``collect`` — Phase 4 garbage collection: drop versions older than the new
  read version, renaming the latest earlier version when the new read
  version does not exist for an item.

The store also tracks the high-water mark of simultaneously live versions
per item, which lets tests and benchmarks verify the paper's "at most three
versions" bound (Section 4.4, properties 1a/2a).

Performance note: alongside each version chain the store maintains the
chain's **maximum live version**.  The paper bounds chains at three live
versions, and between advancements almost every chain has exactly one — so
the common reads (``read_max_leq`` at or above the chain head),
existence checks (``exists_above``), and copy-on-update
(``ensure_version`` of a fresh version above the head) all resolve from the
cached maximum in O(1) without scanning the chain.
"""

from __future__ import annotations

import typing

from repro.errors import MissingItemError, MissingVersionError, StorageError
from repro.storage.values import Operation

__all__ = ["MVStore"]

_RAISE: typing.Final[object] = object()


class MVStore:
    """A per-node store mapping ``key -> {version -> value}``."""

    __slots__ = ("_chains", "_maxes", "max_live_versions", "dual_writes",
                 "total_writes")

    def __init__(self):
        self._chains: typing.Dict[typing.Hashable, typing.Dict[int, typing.Any]] = {}
        #: Per-key maximum live version (kept in lockstep with ``_chains``).
        self._maxes: typing.Dict[typing.Hashable, int] = {}
        #: Highest number of simultaneously live versions ever seen (any key).
        self.max_live_versions: int = 0
        #: Number of ``apply_geq`` calls that touched more than one version.
        self.dual_writes: int = 0
        #: Total number of version applications performed.
        self.total_writes: int = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __contains__(self, key) -> bool:
        return key in self._chains

    def keys(self):
        return self._chains.keys()

    def versions(self, key) -> typing.List[int]:
        """Sorted list of live versions of ``key`` (empty if absent)."""
        chain = self._chains.get(key)
        return sorted(chain) if chain else []

    def exists(self, key, version: int) -> bool:
        """Does ``key`` exist at exactly ``version``?"""
        chain = self._chains.get(key)
        return chain is not None and version in chain

    def exists_above(self, key, version: int) -> bool:
        """Does any version of ``key`` strictly greater than ``version`` exist?

        This is the NC3V abort check (Section 5, step 4).  O(1): some
        version exceeds ``version`` iff the chain maximum does.
        """
        maximum = self._maxes.get(key)
        return maximum is not None and maximum > version

    def get_exact(self, key, version: int):
        """Value of ``key`` at exactly ``version``."""
        chain = self._chains.get(key)
        if chain is None or version not in chain:
            raise MissingVersionError((key, version))
        return chain[version]

    def read_max_leq(self, key, version: int, default=_RAISE):
        """Value at the maximum existing version of ``key`` not above ``version``.

        Args:
            key: Data item identifier.
            version: Upper bound (the reader's transaction version).
            default: Returned when no qualifying version exists; raises
                :class:`MissingItemError` when omitted.
        """
        chain = self._chains.get(key)
        if chain:
            maximum = self._maxes[key]
            if maximum <= version:
                return chain[maximum]
            best = -1
            for v in chain:
                if best < v <= version:
                    best = v
            if best >= 0:
                return chain[best]
        if default is _RAISE:
            raise MissingItemError((key, version))
        return default

    def version_max_leq(self, key, version: int) -> typing.Optional[int]:
        """The maximum existing version of ``key`` not above ``version``."""
        chain = self._chains.get(key)
        if not chain:
            return None
        maximum = self._maxes[key]
        if maximum <= version:
            return maximum
        best = None
        for v in chain:
            if v <= version and (best is None or v > best):
                best = v
        return best

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def load(self, key, value, version: int = 0) -> None:
        """Install an initial value (bulk load before the simulation starts)."""
        chain = self._chains.get(key)
        if chain is None:
            self._chains[key] = {version: value}
            self._maxes[key] = version
            if self.max_live_versions < 1:
                self.max_live_versions = 1
            return
        if version in chain:
            raise StorageError(f"duplicate load of {key!r} version {version}")
        chain[version] = value
        if version > self._maxes[key]:
            self._maxes[key] = version
        self._note_chain_size(chain)

    def ensure_version(self, key, version: int) -> bool:
        """Atomically check-and-create ``key`` at ``version`` (copy-on-update).

        The new version copies the value of the maximum existing version not
        above ``version``; a brand-new item starts from ``None`` (the value
        algebra treats ``None`` as the identity state).

        Returns:
            ``True`` if the version was created, ``False`` if it existed.
        """
        chain = self._chains.get(key)
        if chain is None:
            self._chains[key] = {version: None}
            self._maxes[key] = version
            if self.max_live_versions < 1:
                self.max_live_versions = 1
            return True
        if version in chain:
            return False
        maximum = self._maxes[key]
        if maximum < version:
            # Common case: extending the chain head copies from the head.
            chain[version] = chain[maximum]
            self._maxes[key] = version
        else:
            base = None
            for v in chain:
                if v <= version and (base is None or v > base):
                    base = v
            chain[version] = chain[base] if base is not None else None
        self._note_chain_size(chain)
        return True

    def apply_geq(self, key, version: int,
                  operation: Operation) -> typing.Tuple[int, ...]:
        """Apply ``operation`` to every live version of ``key`` >= ``version``.

        The caller must have ensured that ``key`` exists at ``version``
        (Section 4.1 step 4 creates it first).

        Returns:
            The version numbers written, ascending (length > 1 means a
            dual write).
        """
        chain = self._chains.get(key)
        if chain is None or version not in chain:
            raise MissingVersionError((key, version))
        if self._maxes[key] == version:
            # Fast path: the written version is the chain head, so it is the
            # only version >= itself — no scan, no dual write.
            chain[version] = operation.apply(chain[version])
            self.total_writes += 1
            return (version,)
        targets = sorted(v for v in chain if v >= version)
        for v in targets:
            chain[v] = operation.apply(chain[v])
        self.total_writes += len(targets)
        if len(targets) > 1:
            self.dual_writes += 1
        return tuple(targets)

    def apply_exact(self, key, version: int, operation: Operation) -> None:
        """Apply ``operation`` to exactly one version (NC3V step 4)."""
        chain = self._chains.get(key)
        if chain is None or version not in chain:
            raise MissingVersionError((key, version))
        chain[version] = operation.apply(chain[version])
        self.total_writes += 1

    # ------------------------------------------------------------------
    # Garbage collection (Section 4.3, Phase 4)
    # ------------------------------------------------------------------

    def collect(self, read_version: int) -> int:
        """Garbage-collect versions older than the new read version.

        For every item: if the item exists at ``read_version``, drop all
        earlier versions; otherwise rename its latest earlier version to
        ``read_version``.  Versions above ``read_version`` are untouched.

        Returns:
            Number of version copies physically dropped.
        """
        dropped = 0
        maxes = self._maxes
        for key, chain in self._chains.items():
            if maxes[key] < read_version:
                # Whole chain is below the new read version: rename its
                # head to the read version and drop everything else.
                earlier = sorted(chain)
                chain[read_version] = chain[earlier[-1]]
                for v in earlier:
                    del chain[v]
                    dropped += 1
                maxes[key] = read_version
                continue
            earlier = sorted(v for v in chain if v < read_version)
            if not earlier:
                continue
            if read_version not in chain:
                chain[read_version] = chain[earlier[-1]]
            for v in earlier:
                del chain[v]
                dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def _note_chain_size(self, chain: dict) -> None:
        if len(chain) > self.max_live_versions:
            self.max_live_versions = len(chain)

    def live_version_histogram(self) -> typing.Dict[int, int]:
        """Map ``number of live versions -> count of keys`` (current state)."""
        histogram: typing.Dict[int, int] = {}
        for chain in self._chains.values():
            histogram[len(chain)] = histogram.get(len(chain), 0) + 1
        return histogram

    def snapshot(self) -> typing.Dict[typing.Hashable, typing.Dict[int, typing.Any]]:
        """Deep-enough copy of the whole store (values are immutable).

        Inner-dict key order is unspecified (insertion order pure, version
        order compiled); compare snapshots with ``==``, never by ordering.
        """
        return {key: dict(chain) for key, chain in self._chains.items()}


# --- accelerated-build hook (stripped from compiled mirrors) ----------
from repro._accel import install as _accel_install  # noqa: E402

_accel_install(globals())
# --- end accelerated-build hook ---------------------------------------
