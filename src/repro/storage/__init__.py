"""Per-node storage substrate: versioned records, counters, locks, values."""

from repro.storage.counters import CounterTable, quiescent
from repro.storage.locktable import LockMode, LockTable, compatible
from repro.storage.mvstore import MVStore
from repro.storage.slotstore import SlotStore
from repro.storage.values import (
    Assign,
    AssignUndo,
    Increment,
    Operation,
    Record,
    Unrecord,
    apply_all,
)

__all__ = [
    "Assign",
    "AssignUndo",
    "CounterTable",
    "Increment",
    "LockMode",
    "LockTable",
    "MVStore",
    "Operation",
    "Record",
    "SlotStore",
    "Unrecord",
    "apply_all",
    "compatible",
    "quiescent",
]
