"""Fixed three-slot version storage (Section 4's implementation note).

"We assume for simplicity that version numbers increase monotonically
with time.  A real implementation could re-use old version numbers,
employing only three distinct numbers."  :class:`SlotStore` is that real
implementation: each data item owns exactly **three physical slots**, and
logical version ``v`` lives in slot ``v mod 3``.  The Section 4.4 window
property (``vr < vu <= vr + 2`` and at most three live versions, all
within the ``[vr, vu]`` window) guarantees the mapping never collides —
and the store *checks* that: a fourth concurrent version raises
:class:`~repro.errors.StorageError`, turning any violation of the paper's
bound into an immediate failure instead of silent corruption.

The class is a drop-in replacement for
:class:`~repro.storage.mvstore.MVStore` (``NodeConfig.store_factory``);
``tests/test_slotstore.py`` differential-tests the two against identical
workloads.
"""

from __future__ import annotations

import typing

from repro.errors import MissingItemError, MissingVersionError, StorageError
from repro.storage.values import Operation

_RAISE = object()

SLOTS = 3


class SlotStore:
    """Three physical version slots per key, tagged with logical versions."""

    def __init__(self):
        # key -> list of 3 optional (logical_version, value) pairs.
        self._slots: typing.Dict[
            typing.Hashable,
            typing.List[typing.Optional[typing.Tuple[int, typing.Any]]],
        ] = {}
        self.max_live_versions = 0
        self.dual_writes = 0
        self.total_writes = 0

    # ------------------------------------------------------------------
    # Introspection (MVStore-compatible)
    # ------------------------------------------------------------------

    def __contains__(self, key) -> bool:
        return key in self._slots

    def keys(self):
        return self._slots.keys()

    def _live(self, key) -> typing.List[typing.Tuple[int, typing.Any]]:
        return sorted(entry for entry in self._slots.get(key, ()) if entry)

    def versions(self, key) -> typing.List[int]:
        return [version for version, _value in self._live(key)]

    def exists(self, key, version: int) -> bool:
        entry = self._slot_entry(key, version)
        return entry is not None and entry[0] == version

    def exists_above(self, key, version: int) -> bool:
        return any(v > version for v in self.versions(key))

    def _slot_entry(self, key, version: int):
        slots = self._slots.get(key)
        if slots is None:
            return None
        return slots[version % SLOTS]

    def get_exact(self, key, version: int):
        entry = self._slot_entry(key, version)
        if entry is None or entry[0] != version:
            raise MissingVersionError((key, version))
        return entry[1]

    def version_max_leq(self, key, version: int) -> typing.Optional[int]:
        candidates = [v for v in self.versions(key) if v <= version]
        return max(candidates) if candidates else None

    def read_max_leq(self, key, version: int, default=_RAISE):
        found = self.version_max_leq(key, version)
        if found is None:
            if default is _RAISE:
                raise MissingItemError((key, version))
            return default
        return self.get_exact(key, found)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def load(self, key, value, version: int = 0) -> None:
        slots = self._slots.setdefault(key, [None] * SLOTS)
        slot = version % SLOTS
        if slots[slot] is not None:
            raise StorageError(f"duplicate load of {key!r} version {version}")
        slots[slot] = (version, value)
        self._note_size(key)

    def _claim_slot(self, key, version: int):
        """Claim the slot for ``version``, enforcing the 3-version bound."""
        slots = self._slots.setdefault(key, [None] * SLOTS)
        slot = version % SLOTS
        occupant = slots[slot]
        if occupant is not None and occupant[0] != version:
            raise StorageError(
                f"slot collision on {key!r}: version {version} maps to the "
                f"slot holding live version {occupant[0]} — more than "
                f"{SLOTS} concurrent versions (Section 4.4 bound violated)"
            )
        return slots, slot

    def ensure_version(self, key, version: int) -> bool:
        slots, slot = self._claim_slot(key, version)
        if slots[slot] is not None:
            return False
        base = self.version_max_leq(key, version)
        value = self.get_exact(key, base) if base is not None else None
        slots[slot] = (version, value)
        self._note_size(key)
        return True

    def apply_geq(self, key, version: int,
                  operation: Operation) -> typing.Tuple[int, ...]:
        if not self.exists(key, version):
            raise MissingVersionError((key, version))
        slots = self._slots[key]
        written = []
        for index, entry in enumerate(slots):
            if entry is not None and entry[0] >= version:
                slots[index] = (entry[0], operation.apply(entry[1]))
                written.append(entry[0])
        self.total_writes += len(written)
        if len(written) > 1:
            self.dual_writes += 1
        return tuple(sorted(written))

    def apply_exact(self, key, version: int, operation: Operation) -> None:
        if not self.exists(key, version):
            raise MissingVersionError((key, version))
        slots = self._slots[key]
        slot = version % SLOTS
        entry = slots[slot]
        slots[slot] = (version, operation.apply(entry[1]))
        self.total_writes += 1

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def collect(self, read_version: int) -> int:
        dropped = 0
        for key, slots in self._slots.items():
            live = sorted(entry for entry in slots if entry)
            earlier = [entry for entry in live if entry[0] < read_version]
            if not earlier:
                continue
            has_current = any(entry[0] == read_version for entry in live)
            keep_value = earlier[-1][1]
            for index, entry in enumerate(slots):
                if entry is not None and entry[0] < read_version:
                    slots[index] = None
                    dropped += 1
            if not has_current:
                # Rename the latest earlier version to the read version.
                slots[read_version % SLOTS] = (read_version, keep_value)
        return dropped

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def _note_size(self, key) -> None:
        live = sum(1 for entry in self._slots[key] if entry)
        if live > self.max_live_versions:
            self.max_live_versions = live

    def live_version_histogram(self) -> typing.Dict[int, int]:
        histogram: typing.Dict[int, int] = {}
        for slots in self._slots.values():
            live = sum(1 for entry in slots if entry)
            histogram[live] = histogram.get(live, 0) + 1
        return histogram

    def snapshot(self) -> typing.Dict[typing.Hashable, typing.Dict[int, typing.Any]]:
        return {
            key: {version: value for version, value in self._live(key)}
            for key in self._slots
        }
