"""Write-ahead logging for crash-recovery (fault-injection support).

The paper defers recovery to "standard logging techniques" (Section 6,
citing Bernstein/Hadzilacos/Goodman); this module supplies the simulated
equivalent.  Each node keeps a :class:`NodeJournal` — an ordered redo log
of every mutation applied to its durable components (the multi-version
store and, for 3V, the request/completion counter table).  A crash
discards the volatile component objects; recovery rebuilds each one from
its factory and replays the log, restoring exactly the pre-crash state.

The wrappers are transparent: :class:`JournaledStore` forwards the full
read surface of :class:`~repro.storage.mvstore.MVStore` /
:class:`~repro.storage.slotstore.SlotStore` (the two share one mutator
vocabulary), and :class:`JournaledCounters` wraps
:class:`~repro.storage.counters.CounterTable`.  Journaling draws no
randomness and schedules no simulation events, so enabling it never
perturbs a run's determinism digest.
"""

from __future__ import annotations

import typing


class JournaledComponent:
    """Base wrapper: record mutator calls, forward everything else.

    Subclasses list their journaled methods explicitly (a mutation that
    bypasses the journal would silently not survive a crash, so the
    mutator set is part of each wrapper's contract).  Attribute reads fall
    through to the wrapped object via ``__getattr__``; dunder methods used
    on the hot paths (``in``) are forwarded explicitly because
    special-method lookup skips ``__getattr__``.
    """

    def __init__(self, inner, factory: typing.Callable[[], typing.Any]):
        # Set via object attribute assignment *before* anything that could
        # trigger __getattr__ recursion.
        self._inner = inner
        self._factory = factory
        self._log: typing.List[typing.Tuple[str, tuple]] = []

    def __getattr__(self, name):
        return getattr(self._inner, name)

    @property
    def raw(self):
        """The wrapped component (for tests/inspection)."""
        return self._inner

    @property
    def journal_length(self) -> int:
        return len(self._log)

    def replay(self) -> None:
        """Discard the component and rebuild it from the redo log."""
        fresh = self._factory()
        for method, args in self._log:
            getattr(fresh, method)(*args)
        self._inner = fresh


class JournaledStore(JournaledComponent):
    """Redo-logging wrapper over an ``MVStore``-shaped versioned store."""

    def load(self, key, value, version: int = 0):
        self._log.append(("load", (key, value, version)))
        return self._inner.load(key, value, version=version)

    def ensure_version(self, key, version: int):
        self._log.append(("ensure_version", (key, version)))
        return self._inner.ensure_version(key, version)

    def apply_geq(self, key, version: int, operation):
        self._log.append(("apply_geq", (key, version, operation)))
        return self._inner.apply_geq(key, version, operation)

    def apply_exact(self, key, version: int, operation):
        self._log.append(("apply_exact", (key, version, operation)))
        return self._inner.apply_exact(key, version, operation)

    def collect(self, read_version: int):
        self._log.append(("collect", (read_version,)))
        return self._inner.collect(read_version)

    def __contains__(self, key) -> bool:
        return key in self._inner


class JournaledCounters(JournaledComponent):
    """Redo-logging wrapper over a ``CounterTable``.

    Replaying increments aimed at garbage-collected versions is safe: the
    fresh table sees the same ``gc_below`` calls in the same order, so it
    drops (and counts) exactly the increments the original dropped.
    """

    def ensure_version(self, version: int):
        self._log.append(("ensure_version", (version,)))
        return self._inner.ensure_version(version)

    def gc_below(self, version: int):
        self._log.append(("gc_below", (version,)))
        return self._inner.gc_below(version)

    def inc_request(self, version: int, dst: str):
        self._log.append(("inc_request", (version, dst)))
        return self._inner.inc_request(version, dst)

    def inc_completion(self, version: int, src: str):
        self._log.append(("inc_completion", (version, src)))
        return self._inner.inc_completion(version, src)


class CoordinatorState:
    """The advancement coordinator's durable control record.

    Four scalars capture everything a successor incarnation needs to take
    over mid-protocol: the committed read/update versions, the in-flight
    wave's target update version (``None`` between waves), and the highest
    advancement epoch ever issued.  The record is deliberately tiny —
    phase progress *within* a wave is not logged, because every phase is
    idempotent (version bumps no-op at or below the node's current
    version; RT/CT aggregates are monotone, so re-gathering never
    double-counts) and a successor simply re-runs the wave from the top.
    """

    def __init__(self):
        self.vr = 0
        self.vu = 1
        self.epoch = 1
        self.in_flight: typing.Optional[int] = None

    def set_vu(self, version: int) -> None:
        self.vu = version

    def set_vr(self, version: int) -> None:
        self.vr = version

    def set_epoch(self, epoch: int) -> None:
        self.epoch = epoch

    def begin_wave(self, vu_new: int) -> None:
        self.in_flight = vu_new

    def end_wave(self) -> None:
        self.in_flight = None


class JournaledCoordinatorState(JournaledComponent):
    """Redo-logging wrapper over :class:`CoordinatorState`.

    The coordinator role's equivalent of a node's journaled store: a
    crashed incarnation's volatile object is discarded and the record is
    rebuilt from the log, modelling the paper's "standard logging
    techniques" applied to the control plane (the log is what a standby
    reads to take the role over).
    """

    def __init__(self, inner: typing.Optional[CoordinatorState] = None):
        super().__init__(
            inner if inner is not None else CoordinatorState(),
            CoordinatorState,
        )

    def set_vu(self, version: int) -> None:
        self._log.append(("set_vu", (version,)))
        return self._inner.set_vu(version)

    def set_vr(self, version: int) -> None:
        self._log.append(("set_vr", (version,)))
        return self._inner.set_vr(version)

    def set_epoch(self, epoch: int) -> None:
        self._log.append(("set_epoch", (epoch,)))
        return self._inner.set_epoch(epoch)

    def begin_wave(self, vu_new: int) -> None:
        self._log.append(("begin_wave", (vu_new,)))
        return self._inner.begin_wave(vu_new)

    def end_wave(self) -> None:
        self._log.append(("end_wave", ()))
        return self._inner.end_wave()


class NodeJournal:
    """A node's collection of journaled components.

    The runtime attaches the journaled store at node construction; plugins
    attach further components (3V attaches its counter table) from
    ``init_node``.  ``replay()`` is the whole recovery story for durable
    state: every attached component is rebuilt from its redo log.
    """

    def __init__(self, node_id: str):
        self.node_id = node_id
        self._components: typing.Dict[str, JournaledComponent] = {}
        self.replays = 0

    def attach(self, name: str, component: JournaledComponent) -> None:
        self._components[name] = component

    def component(self, name: str) -> JournaledComponent:
        return self._components[name]

    @property
    def names(self) -> typing.Tuple[str, ...]:
        return tuple(self._components)

    def replay(self) -> None:
        """Rebuild every journaled component from its log (crash recovery)."""
        for component in self._components.values():
            component.replay()
        self.replays += 1
