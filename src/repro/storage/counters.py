"""Per-version request/completion counters (Section 2.2 / 4).

Node ``p`` keeps, for every active version ``v``:

* request counters ``R[v][q]`` — subtransactions *sent* from ``p`` to ``q``
  against version ``v`` (a root subtransaction arriving at ``p`` counts as a
  request from ``p`` to itself);
* completion counters ``C[v][o]`` — subtransactions invoked from ``o`` that
  *completed at* ``p`` against version ``v``.

"To preserve locality, request counters R_vpq are located at node p, and
completion counters C_vpq are located at node q" — so both tables live on
the node, indexed from its own point of view, and the advancement
coordinator assembles the global ``R[v][p][q] == C[v][p][q]`` check from
per-node snapshots read asynchronously (see
:mod:`repro.core.advancement` for the two-wave protocol that makes those
asynchronous reads sound).

Aggregate quiescence
--------------------

Alongside the per-peer rows each table maintains *per-version aggregate
totals* — ``sum(R[v])`` and ``sum(C[v])`` — incrementally on every
increment.  Because a completion can only ever be counted for a request
that was counted strictly earlier, ``C[v][p][q] <= R[v][p][q]`` holds
per pair under the two-wave read order, so

    ``sum_pq R[v][p][q] == sum_pq C[v][p][q]``  ⟺  pairwise equality

and the coordinator's quiescence check collapses from an O(nodes²)
counter scan (:func:`quiescent`) to summing one scalar per node
(:func:`aggregate_quiescent`).  The full scan is retained as the
debug/differential oracle; ``tests/test_aggregate_quiescence.py``
property-checks the equivalence (including re-derivation of the totals
through WAL replay).
"""

from __future__ import annotations

import typing

from repro.errors import CounterError

__all__ = ["CounterTable", "quiescent", "aggregate_quiescent"]

#: Shared empty row returned by the zero-copy views for absent versions.
#: Callers treat views as read-only, so one immutable-by-convention dict
#: serves every miss without allocating.
_EMPTY: typing.Final[typing.Dict[str, int]] = {}


class CounterTable:
    """Request/completion counters held by a single node."""

    __slots__ = ("node_id", "_requests", "_completions", "_req_totals",
                 "_comp_totals", "_gc_floor", "lost_increments")

    def __init__(self, node_id: str):
        self.node_id: str = node_id
        self._requests: typing.Dict[int, typing.Dict[str, int]] = {}
        self._completions: typing.Dict[int, typing.Dict[str, int]] = {}
        # Aggregate totals per version, maintained incrementally so the
        # quiescence path never scans the rows.  An allocated version
        # always has a totals entry, which doubles as the existence check
        # on the increment fast paths.
        self._req_totals: typing.Dict[int, int] = {}
        self._comp_totals: typing.Dict[int, int] = {}
        # Versions below this were garbage-collected.  Increments aimed at
        # them are *dropped* (and counted): this only happens when an
        # unsound quiescence detector collected a version that still had
        # stragglers in flight — the damage the C7 ablation measures.
        self._gc_floor: typing.Optional[int] = None
        self.lost_increments: int = 0

    # ------------------------------------------------------------------
    # Version lifecycle
    # ------------------------------------------------------------------

    def ensure_version(self, version: int) -> None:
        """Allocate (zeroed) counter rows for ``version`` if absent.

        A garbage-collected version is never resurrected.
        """
        if self._gc_floor is not None and version < self._gc_floor:
            return
        if version not in self._requests:
            self._requests[version] = {}
            self._req_totals[version] = 0
        if version not in self._completions:
            self._completions[version] = {}
            self._comp_totals[version] = 0

    def versions(self) -> typing.List[int]:
        """Sorted list of versions with allocated counters."""
        return sorted(set(self._requests) | set(self._completions))

    def gc_below(self, version: int) -> None:
        """Drop counters for all versions strictly below ``version``
        (Phase 4: "garbage-collects all counters associated with version
        numbers smaller than vr_new")."""
        if self._gc_floor is None or version > self._gc_floor:
            self._gc_floor = version
        for table in (self._requests, self._completions,
                      self._req_totals, self._comp_totals):
            for v in [v for v in table if v < version]:
                del table[v]

    # ------------------------------------------------------------------
    # Increments (all atomic: the simulation is single-threaded, matching
    # the paper's assumption that counter accesses are atomic and occur
    # outside local concurrency control).  These are the hottest storage
    # calls in the simulation — every subtransaction hits each table —
    # so the common "row and cell already exist" case is a single dict
    # lookup per table with no method-call or default-object overhead.
    # ------------------------------------------------------------------

    def inc_request(self, version: int, dst: str) -> None:
        """Count a subtransaction sent from this node to ``dst``."""
        # The totals entry doubles as the version-existence check: an
        # allocated version always has one, so the common case is exactly
        # two dict hits (total bump + cell bump).
        try:
            self._req_totals[version] += 1
        except KeyError:
            self._miss("request", version)
            return
        row = self._requests[version]
        try:
            row[dst] += 1
        except KeyError:
            row[dst] = 1

    def inc_completion(self, version: int, src: str) -> None:
        """Count a subtransaction invoked from ``src`` completing here."""
        try:
            self._comp_totals[version] += 1
        except KeyError:
            self._miss("completion", version)
            return
        row = self._completions[version]
        try:
            row[src] += 1
        except KeyError:
            row[src] = 1

    def _miss(self, kind: str, version: int) -> None:
        """Cold path for an increment against an unallocated version."""
        if self._gc_floor is not None and version < self._gc_floor:
            self.lost_increments += 1
            return
        raise CounterError(
            f"node {self.node_id}: {kind} counter for unallocated "
            f"version {version}"
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def requests(self, version: int) -> typing.Dict[str, int]:
        """Snapshot of ``R[version][dst]`` for this node (copies)."""
        return dict(self._requests.get(version, _EMPTY))

    def completions(self, version: int) -> typing.Dict[str, int]:
        """Snapshot of ``C[version][src]`` for this node (copies)."""
        return dict(self._completions.get(version, _EMPTY))

    def requests_view(self, version: int) -> typing.Mapping[str, int]:
        """Zero-copy *live* view of ``R[version][dst]``.

        This is the node's own row object; it mutates as further requests
        are counted.  Use it only for point-in-time reads that are consumed
        immediately (e.g. assembling a snapshot inside ``COUNTER_READ``
        handling).  Anything that outlives the current callback — in
        particular a message payload for the two-wave detector — MUST be a
        :meth:`requests` copy, or a straggler's later increment would leak
        into an already-taken wave and break the detector's soundness
        argument.
        """
        return self._requests.get(version, _EMPTY)

    def completions_view(self, version: int) -> typing.Mapping[str, int]:
        """Zero-copy *live* view of ``C[version][src]`` (see
        :meth:`requests_view` for the aliasing caveat)."""
        return self._completions.get(version, _EMPTY)

    def request_count(self, version: int, dst: str) -> int:
        return self._requests.get(version, _EMPTY).get(dst, 0)

    def completion_count(self, version: int, src: str) -> int:
        return self._completions.get(version, _EMPTY).get(src, 0)

    def request_total(self, version: int) -> int:
        """Incrementally-maintained ``sum(R[version].values())``."""
        return self._req_totals.get(version, 0)

    def completion_total(self, version: int) -> int:
        """Incrementally-maintained ``sum(C[version].values())``."""
        return self._comp_totals.get(version, 0)

    def outstanding(self, version: int) -> int:
        """``sum(R[version]) - sum(C[version])`` for this node's tables.

        Note this is a *local* difference; a node's requests complete at
        other nodes, so cluster-wide quiescence compares the *sums* of
        these totals across nodes (:func:`aggregate_quiescent`), not the
        per-node differences.
        """
        return (self._req_totals.get(version, 0)
                - self._comp_totals.get(version, 0))


def quiescent(
    request_snapshots: typing.Dict[str, typing.Dict[str, int]],
    completion_snapshots: typing.Dict[str, typing.Dict[str, int]],
) -> bool:
    """Check ``R[v][p][q] == C[v][p][q]`` for all node pairs.

    Args:
        request_snapshots: ``{p: {q: R_pq}}`` — one row per sending node.
        completion_snapshots: ``{q: {p: C_pq}}`` — one row per executing node.

    Returns:
        ``True`` iff every request has a matching completion.  Entries
        missing from either side count as zero.

    Note:
        This is a *pure* equality check.  Its soundness under asynchronous
        reads depends on the caller reading completion snapshots strictly
        before request snapshots (the two-wave rule); see
        ``repro.core.advancement.QuiescenceDetector``.
    """
    # One pass per direction instead of materializing the pair set: first
    # check every request cell against its completion mirror, then sweep the
    # completion side for cells with no (or a smaller) request mirror.
    for p, row in request_snapshots.items():
        for q, sent in row.items():
            if sent != completion_snapshots.get(q, _EMPTY).get(p, 0):
                return False
    for q, row in completion_snapshots.items():
        for p, done in row.items():
            if done != request_snapshots.get(p, _EMPTY).get(q, 0):
                return False
    return True


def aggregate_quiescent(
    request_totals: typing.Mapping[str, int],
    completion_totals: typing.Mapping[str, int],
) -> bool:
    """O(nodes) quiescence check from per-node aggregate totals.

    Args:
        request_totals: ``{p: sum_q R_pq}`` — one scalar per sending node.
        completion_totals: ``{q: sum_p C_pq}`` — one scalar per executing
            node, read strictly *before* the request totals (two-wave rule).

    Returns:
        ``True`` iff the cluster-wide request sum equals the cluster-wide
        completion sum.

    Soundness:
        Equivalent to the pairwise scan (:func:`quiescent`) under the
        two-wave read order.  Every completion increment is preceded by
        its matching request increment, so with completions read first
        each pair satisfies ``C_pq <= R_pq`` — a sum of non-negative
        slacks is zero iff every slack is zero, i.e. the scalar equality
        implies (and is implied by) pairwise equality.
    """
    return (sum(request_totals.values())
            == sum(completion_totals.values()))


# --- accelerated-build hook (stripped from compiled mirrors) ----------
from repro._accel import install as _accel_install  # noqa: E402

_accel_install(globals())
# --- end accelerated-build hook ---------------------------------------
