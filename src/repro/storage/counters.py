"""Per-version request/completion counters (Section 2.2 / 4).

Node ``p`` keeps, for every active version ``v``:

* request counters ``R[v][q]`` — subtransactions *sent* from ``p`` to ``q``
  against version ``v`` (a root subtransaction arriving at ``p`` counts as a
  request from ``p`` to itself);
* completion counters ``C[v][o]`` — subtransactions invoked from ``o`` that
  *completed at* ``p`` against version ``v``.

"To preserve locality, request counters R_vpq are located at node p, and
completion counters C_vpq are located at node q" — so both tables live on
the node, indexed from its own point of view, and the advancement
coordinator assembles the global ``R[v][p][q] == C[v][p][q]`` check from
per-node snapshots read asynchronously (see
:mod:`repro.core.advancement` for the two-wave protocol that makes those
asynchronous reads sound).
"""

from __future__ import annotations

import typing

from repro.errors import CounterError


class CounterTable:
    """Request/completion counters held by a single node."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self._requests: typing.Dict[int, typing.Dict[str, int]] = {}
        self._completions: typing.Dict[int, typing.Dict[str, int]] = {}
        # Versions below this were garbage-collected.  Increments aimed at
        # them are *dropped* (and counted): this only happens when an
        # unsound quiescence detector collected a version that still had
        # stragglers in flight — the damage the C7 ablation measures.
        self._gc_floor: typing.Optional[int] = None
        self.lost_increments = 0

    # ------------------------------------------------------------------
    # Version lifecycle
    # ------------------------------------------------------------------

    def ensure_version(self, version: int) -> None:
        """Allocate (zeroed) counter rows for ``version`` if absent.

        A garbage-collected version is never resurrected.
        """
        if self._gc_floor is not None and version < self._gc_floor:
            return
        self._requests.setdefault(version, {})
        self._completions.setdefault(version, {})

    def versions(self) -> typing.List[int]:
        """Sorted list of versions with allocated counters."""
        return sorted(set(self._requests) | set(self._completions))

    def gc_below(self, version: int) -> None:
        """Drop counters for all versions strictly below ``version``
        (Phase 4: "garbage-collects all counters associated with version
        numbers smaller than vr_new")."""
        if self._gc_floor is None or version > self._gc_floor:
            self._gc_floor = version
        for table in (self._requests, self._completions):
            for v in [v for v in table if v < version]:
                del table[v]

    # ------------------------------------------------------------------
    # Increments (all atomic: the simulation is single-threaded, matching
    # the paper's assumption that counter accesses are atomic and occur
    # outside local concurrency control)
    # ------------------------------------------------------------------

    def inc_request(self, version: int, dst: str) -> None:
        """Count a subtransaction sent from this node to ``dst``."""
        row = self._requests.get(version)
        if row is None:
            if self._gc_floor is not None and version < self._gc_floor:
                self.lost_increments += 1
                return
            raise CounterError(
                f"node {self.node_id}: request counter for unallocated "
                f"version {version}"
            )
        row[dst] = row.get(dst, 0) + 1

    def inc_completion(self, version: int, src: str) -> None:
        """Count a subtransaction invoked from ``src`` completing here."""
        row = self._completions.get(version)
        if row is None:
            if self._gc_floor is not None and version < self._gc_floor:
                self.lost_increments += 1
                return
            raise CounterError(
                f"node {self.node_id}: completion counter for unallocated "
                f"version {version}"
            )
        row[src] = row.get(src, 0) + 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def requests(self, version: int) -> typing.Dict[str, int]:
        """Snapshot of ``R[version][dst]`` for this node (copies)."""
        return dict(self._requests.get(version, {}))

    def completions(self, version: int) -> typing.Dict[str, int]:
        """Snapshot of ``C[version][src]`` for this node (copies)."""
        return dict(self._completions.get(version, {}))

    def request_count(self, version: int, dst: str) -> int:
        return self._requests.get(version, {}).get(dst, 0)

    def completion_count(self, version: int, src: str) -> int:
        return self._completions.get(version, {}).get(src, 0)


def quiescent(
    request_snapshots: typing.Dict[str, typing.Dict[str, int]],
    completion_snapshots: typing.Dict[str, typing.Dict[str, int]],
) -> bool:
    """Check ``R[v][p][q] == C[v][p][q]`` for all node pairs.

    Args:
        request_snapshots: ``{p: {q: R_pq}}`` — one row per sending node.
        completion_snapshots: ``{q: {p: C_pq}}`` — one row per executing node.

    Returns:
        ``True`` iff every request has a matching completion.  Entries
        missing from either side count as zero.

    Note:
        This is a *pure* equality check.  Its soundness under asynchronous
        reads depends on the caller reading completion snapshots strictly
        before request snapshots (the two-wave rule); see
        ``repro.core.advancement.QuiescenceDetector``.
    """
    pairs = set()
    for p, row in request_snapshots.items():
        for q in row:
            pairs.add((p, q))
    for q, row in completion_snapshots.items():
        for p in row:
            pairs.add((p, q))
    for p, q in pairs:
        sent = request_snapshots.get(p, {}).get(q, 0)
        done = completion_snapshots.get(q, {}).get(p, 0)
        if sent != done:
            return False
    return True
