"""Commutative value algebra for data-recording workloads.

The paper's application domain (Section 6) records observations and updates
derived summaries: "the final state of the database is the same after the
application of two updates, irrespective of the order" — i.e. the update
*subtransactions* commute even though individual read/write operations do
not (Example 3.1).  We model this with explicit operation objects:

* :class:`Increment` — add a delta to a numeric summary (account balance,
  items sold).  Commutes with other increments.
* :class:`Record` — insert an observation into a multiset (a call detail
  record, a charge line item).  Commutes with other records.
* :class:`Assign` — blind overwrite.  Does **not** commute; only
  non-well-behaved (NC3V) transactions may use it.

Every operation knows its inverse, which is what compensation (Section 3.2)
applies when a transaction tree aborts.
"""

from __future__ import annotations

import typing

from repro._accel import mypyc_attr
from repro.errors import StorageError

__all__ = [
    "Operation",
    "Increment",
    "Record",
    "Unrecord",
    "Assign",
    "AssignUndo",
    "apply_all",
    "undo_operation",
]


@mypyc_attr(allow_interpreted_subclasses=True)
class Operation:
    """A state transformer applied to one data item.

    Workloads may define custom operations by subclassing; such
    subclasses stay interpreted under an accelerated build (hence the
    ``mypyc_attr`` escape hatch on the base class).
    """

    #: Whether this operation commutes with every other commuting operation.
    commutes: typing.ClassVar[bool] = True

    def apply(self, state):  # pragma: no cover - abstract
        """Return the new state produced by applying this op to ``state``."""
        raise NotImplementedError

    def inverse(self) -> "Operation":  # pragma: no cover - abstract
        """Return the compensating operation."""
        raise NotImplementedError


class Increment(Operation):
    """Add ``delta`` to a numeric state (missing state counts as 0)."""

    def __init__(self, delta: float):
        self.delta = delta

    def apply(self, state):
        if state is None:
            state = 0
        if not isinstance(state, (int, float)):
            raise StorageError(f"Increment applied to non-number: {state!r}")
        return state + self.delta

    def inverse(self) -> "Increment":
        return Increment(-self.delta)

    def __eq__(self, other) -> bool:
        return isinstance(other, Increment) and other.delta == self.delta

    def __hash__(self) -> int:
        return hash(("Increment", self.delta))

    def __repr__(self) -> str:
        return f"Increment({self.delta!r})"


class Record(Operation):
    """Insert an observation into a multiset state.

    States are immutable: represented as a ``frozenset`` of
    ``(observation, count)``-free entries is not enough for duplicates, so
    we store a sorted tuple.  Insertion order does not affect the state,
    which is what makes two Records commute.
    """

    def __init__(self, observation):
        self.observation = observation

    def apply(self, state):
        if state is None:
            state = ()
        if not isinstance(state, tuple):
            raise StorageError(f"Record applied to non-multiset: {state!r}")
        return tuple(sorted(state + (self.observation,), key=repr))

    def inverse(self) -> "Unrecord":
        return Unrecord(self.observation)

    def __eq__(self, other) -> bool:
        return isinstance(other, Record) and other.observation == self.observation

    def __hash__(self) -> int:
        return hash(("Record", self.observation))

    def __repr__(self) -> str:
        return f"Record({self.observation!r})"


class Unrecord(Operation):
    """Remove one instance of an observation (the inverse of :class:`Record`)."""

    def __init__(self, observation):
        self.observation = observation

    def apply(self, state):
        if state is None:
            state = ()
        entries = list(state)
        try:
            entries.remove(self.observation)
        except ValueError:
            raise StorageError(
                f"Unrecord of absent observation: {self.observation!r}"
            ) from None
        return tuple(entries)

    def inverse(self) -> Record:
        return Record(self.observation)

    def __repr__(self) -> str:
        return f"Unrecord({self.observation!r})"


class Assign(Operation):
    """Blind overwrite — the canonical *non-commuting* update.

    Only non-well-behaved transactions (Section 5, NC3V) may use it; the 3V
    node refuses to run it inside a well-behaved transaction.  ``Assign`` has
    no standalone inverse (the inverse depends on the overwritten state), so
    NC3V transactions holding locks roll back via :class:`AssignUndo` built
    at apply time.
    """

    commutes: typing.ClassVar[bool] = False

    def __init__(self, value):
        self.value = value

    def apply(self, state):
        return self.value

    def inverse(self) -> "Operation":
        raise StorageError("Assign has no state-independent inverse")

    def undo_for(self, previous_state) -> "AssignUndo":
        """Build the compensating operation given the overwritten state."""
        return AssignUndo(previous_state)

    def __repr__(self) -> str:
        return f"Assign({self.value!r})"


class AssignUndo(Operation):
    """Restore a captured previous state (inverse of a specific Assign)."""

    commutes: typing.ClassVar[bool] = False

    def __init__(self, previous_state):
        self.previous_state = previous_state

    def apply(self, state):
        return self.previous_state

    def inverse(self) -> "Operation":
        raise StorageError("AssignUndo inverse requires the later state")

    def __repr__(self) -> str:
        return f"AssignUndo({self.previous_state!r})"


def apply_all(state, operations: typing.Iterable[Operation]):
    """Fold a sequence of operations over a state."""
    for operation in operations:
        state = operation.apply(state)
    return state


def undo_operation(operation: Operation, previous_state) -> Operation:
    """Build the rollback operation for one applied write.

    Commuting operations have state-independent inverses; non-commuting
    ones (``Assign``) need the overwritten state captured at apply time.
    """
    if operation.commutes:
        return operation.inverse()
    undo_builder = getattr(operation, "undo_for", None)
    if undo_builder is not None:
        return undo_builder(previous_state)
    raise StorageError(
        f"operation {operation!r} is neither invertible nor undoable"
    )


# --- accelerated-build hook (stripped from compiled mirrors) ----------
from repro._accel import install as _accel_install  # noqa: E402

_accel_install(globals())
# --- end accelerated-build hook ---------------------------------------
