#!/usr/bin/env python3
"""Telephone call recording at scale: frequent asynchronous advancement.

The paper's motivating system records "several million calls every hour"
across many switches.  This example runs a 12-switch cluster under a heavy
call load, advances versions every 5 simulated seconds, and shows the two
scalability properties together:

1. user transactions never wait for remote activity, no matter how often
   versions advance;
2. reads get fresher and fresher data as the advancement period shrinks —
   without the monthly staleness of manual versioning.

Run:  python examples/telecom_calls.py
"""

from repro import Table, latency_summary, max_remote_wait, staleness_summary
from repro.core import PeriodicPolicy, ThreeVSystem
from repro.sim import RngRegistry
from repro.workloads import telecom_workload
from repro.workloads.arrivals import drive, poisson_arrivals
from repro.workloads.telecom import switch_names

SWITCHES = 12
DURATION = 120.0
CALL_RATE = 40.0  # calls per second across the cluster
CHECK_RATE = 6.0  # balance checks per second


def run_with_period(period: float):
    nodes = switch_names(SWITCHES)
    system = ThreeVSystem(
        nodes, seed=99, policy=PeriodicPolicy(period), detail=False,
    )
    workload = telecom_workload(switches=SWITCHES, accounts=2000, seed=99)
    workload.install(system)
    arrivals = RngRegistry(17)
    drive(system, poisson_arrivals(arrivals, "calls", CALL_RATE, DURATION),
          workload.make_call)
    drive(system, poisson_arrivals(arrivals, "checks", CHECK_RATE, DURATION),
          workload.make_balance_check)
    system.run(until=DURATION)
    system.stop_policy()
    system.run_until_quiet()
    return system


def main():
    table = Table(
        f"Call recording, {SWITCHES} switches, {CALL_RATE:.0f} calls/s, "
        "advancement period swept",
        ["period (s)", "advancements", "calls done", "p99 call latency",
         "mean read staleness", "max remote wait"],
        precision=3,
    )
    for period in (60.0, 20.0, 5.0):
        system = run_with_period(period)
        calls = latency_summary(system.history, kind="update")
        staleness = staleness_summary(system.history)
        table.add(
            period,
            system.coordinator.completed_runs,
            calls.count,
            calls.p99,
            staleness.mean,
            max_remote_wait(system.history),
        )
    table.print()
    print(
        "Call latency is flat while staleness falls with the period:\n"
        "advancement is free as far as user transactions are concerned."
    )


if __name__ == "__main__":
    main()
