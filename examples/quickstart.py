#!/usr/bin/env python3
"""Quickstart: the hospital scenario of Figure 1, on the 3V protocol.

Two departments (radiology, pediatrics) each keep their own database.  A
patient visit charges both departments in one distributed transaction; a
balance inquiry reads both.  Under 3V the inquiry NEVER sees half a visit:
updates accumulate in the current update version while reads use the
stable read version, and an asynchronous version advancement publishes new
charges without delaying anyone.

Run:  python examples/quickstart.py
"""

from repro import (
    Increment,
    ReadOp,
    SubtxnSpec,
    ThreeVSystem,
    TransactionSpec,
    WriteOp,
)


def patient_visit(name: str, radiology_fee: float, pediatrics_fee: float):
    """One visit: the front-end submits to radiology, which forwards the
    pediatrics charge as a child subtransaction (the tree model)."""
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(
            node="radiology",
            ops=[WriteOp("balance:alice", Increment(radiology_fee))],
            children=[
                SubtxnSpec(
                    node="pediatrics",
                    ops=[WriteOp("balance:alice", Increment(pediatrics_fee))],
                )
            ],
        ),
    )


def balance_inquiry(name: str):
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(
            node="radiology",
            ops=[ReadOp("balance:alice")],
            children=[
                SubtxnSpec(node="pediatrics", ops=[ReadOp("balance:alice")])
            ],
        ),
    )


def main():
    system = ThreeVSystem(["radiology", "pediatrics"], seed=42)
    system.load("radiology", "balance:alice", 0.0)
    system.load("pediatrics", "balance:alice", 0.0)

    # Two visits and an inquiry racing them.
    system.submit_at(1.0, patient_visit("visit-1", 120.0, 80.0))
    system.submit_at(1.5, balance_inquiry("inquiry-early"))
    system.submit_at(2.0, patient_visit("visit-2", 45.0, 30.0))
    system.run_until_quiet()

    early = dict(system.history.txn("inquiry-early").reads)
    print("Early inquiry (before any version advancement):")
    print(f"  radiology={early['balance:alice']}  <- stable version 0")
    print()

    # Publish the accumulated charges: completely asynchronous with any
    # user transaction; no one waits.
    system.advance_versions()
    system.run_until_quiet()

    system.submit_at(system.sim.now + 1.0, balance_inquiry("inquiry-late"))
    system.run_until_quiet()
    late = [value for _key, value in system.history.txn("inquiry-late").reads]
    print("Late inquiry (after one advancement):")
    print(f"  radiology={late[0]}  pediatrics={late[1]}")
    assert late == [165.0, 110.0], "both visits fully visible, atomically"
    print()

    print("Paper guarantees, checked:")
    for name in ("visit-1", "visit-2", "inquiry-early", "inquiry-late"):
        record = system.history.txn(name)
        print(
            f"  {name:15s} version={record.version} "
            f"remote-wait={record.remote_wait:.3f} "
            f"latency={record.local_latency:.3f}"
        )
        assert record.remote_wait == 0.0  # Theorem 4.2
    max_versions = max(
        node.store.max_live_versions for node in system.nodes.values()
    )
    print(f"  max live versions of any item: {max_versions} (bound: 3)")


if __name__ == "__main__":
    main()
