#!/usr/bin/env python3
"""Point-of-sale inventory with non-commuting stock takes (NC3V, Section 5).

Sales commute (stock/revenue increments), so they run coordination-free.
A *stock take* — a physical recount that OVERWRITES the stock level —
does not commute with anything: NC3V runs it under non-commuting locks
with two-phase commit, gated so it never overlaps a version switch.

This example mixes a stream of sales with occasional stock takes and
shows the paper's "graceful handling" claim: the commuting traffic keeps
its latency, while only transactions that actually touch a recounted
product feel the stock take.

Run:  python examples/noncommuting_inventory.py
"""

from repro import Table, latency_summary
from repro.core import PeriodicPolicy, ThreeVSystem
from repro.sim import RngRegistry
from repro.workloads import retail_workload
from repro.workloads.arrivals import drive, poisson_arrivals
from repro.workloads.retail import store_names

STORES = 6
DURATION = 80.0


def run(stock_take_rate: float):
    nodes = store_names(STORES)
    system = ThreeVSystem(
        nodes, seed=5, allow_noncommuting=True,
        policy=PeriodicPolicy(20.0),
    )
    workload = retail_workload(stores=STORES, products=100, seed=5)
    workload.install(system)
    arrivals = RngRegistry(23)
    drive(system, poisson_arrivals(arrivals, "sales", 15.0, DURATION),
          workload.make_sale)
    drive(system, poisson_arrivals(arrivals, "inqs", 5.0, DURATION),
          workload.make_stock_inquiry)
    if stock_take_rate > 0:
        drive(
            system,
            poisson_arrivals(arrivals, "takes", stock_take_rate, DURATION),
            workload.make_stock_take,
        )
    system.run(until=DURATION)
    system.stop_policy()
    system.run_until_quiet()
    return system


def main():
    table = Table(
        "Retail: sales (commuting) vs stock takes (non-commuting)",
        ["stock takes/s", "sales p95", "sales lock-wait total",
         "stock takes done", "stock takes aborted", "gate waits"],
        precision=3,
    )
    for rate in (0.0, 0.2, 1.0):
        system = run(rate)
        history = system.history
        sales = latency_summary(history, kind="update")
        lock_wait = sum(
            r.waits.get("lock", 0.0) for r in history.committed_txns("update")
        )
        nc = [r for r in history.txns.values() if r.kind == "noncommuting"]
        gate_waits = sum(
            1 for r in nc if r.waits.get("version-gate", 0.0) > 0
        )
        table.add(
            rate,
            sales.p95,
            lock_wait,
            sum(1 for r in nc if not r.aborted),
            sum(1 for r in nc if r.aborted),
            gate_waits,
        )
    table.print()
    print(
        "With zero stock takes, sales never touch a lock conflict; adding\n"
        "non-commuting traffic degrades only what it touches (Section 5)."
    )


if __name__ == "__main__":
    main()
