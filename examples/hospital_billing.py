#!/usr/bin/env python3
"""Hospital billing: correctness under concurrency, 3V vs the alternatives.

Drives the same randomized stream of patient visits and balance inquiries
(identical seed, identical arrivals) through four system designs and
audits every inquiry with the exact bitmask oracle:

* 3V           - the paper's protocol: consistent AND coordination-free
* no-coord     - fast but produces fractured reads (partial visits)
* manual (2s safety delay on a 10s period) - still fractured
* 2pc          - consistent but slow: reads block behind writers

Run:  python examples/hospital_billing.py
"""

from repro import Table, audit, latency_summary, max_remote_wait
from repro.workloads import run_recording_experiment

SETTINGS = dict(
    nodes=6,               # six departments
    duration=60.0,
    update_rate=6.0,       # visits per second
    inquiry_rate=4.0,      # balance inquiries per second
    audit_rate=0.2,        # statement runs
    entities=20,           # patients (few -> contention)
    span=3,                # departments touched per visit
    seed=7,
    amount_mode="bitmask",  # exact atomic-visibility oracle
)


def main():
    table = Table(
        "Hospital billing: 60s of visits and inquiries (same workload)",
        ["system", "inquiries", "fractured", "rate%",
         "p95 latency", "max remote wait"],
        precision=2,
    )
    for protocol, label in [
        ("3v", "3V (paper)"),
        ("nocoord", "no coordination"),
        ("manual", "manual (short delay)"),
        ("2pc", "global 2PL+2PC"),
    ]:
        kwargs = dict(SETTINGS)
        if protocol == "manual":
            kwargs.update(advancement_period=10.0, safety_delay=2.0)
        result = run_recording_experiment(protocol, **kwargs)
        report = audit(result.history)
        reads = latency_summary(result.history, kind="read", which="global")
        table.add(
            label,
            report.reads_checked,
            report.fractured_reads,
            100.0 * report.fractured_rate,
            reads.p95,
            max_remote_wait(result.history),
        )
    table.print()
    print(
        "3V matches the no-coordination row on latency and the 2PC row on\n"
        "correctness - the paper's central claim."
    )


if __name__ == "__main__":
    main()
