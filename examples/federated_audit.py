#!/usr/bin/env python3
"""Federated databases (the paper's Section 8 closing use case).

"In a federated database, each individual node may be running its own
transaction manager, so that accomplishing a global transaction with a
coordinated commitment or global concurrency control becomes impossible
without violating autonomy of the local transaction managers.  Yet, we
would like to obtain global serializability ... The 3V algorithm can
provide the global serializability property."

Three autonomous organizations share patients: a clinic (fast, serial
local manager), a reference lab (slow, batching executor), and a billing
bureau, connected by an uneven WAN.  Referral transactions span all
three; each organization also runs purely local traffic.  3V gives the
cross-organization auditor a serializable view while no organization
ever waits on another: the only coordination is the asynchronous version
advancement.

Run:  python examples/federated_audit.py
"""

from repro import Increment, ReadOp, SubtxnSpec, TransactionSpec, WriteOp
from repro.core import NodeConfig, PeriodicPolicy, ThreeVSystem
from repro.net import LinkLatency
from repro.sim import Constant, RngRegistry, Uniform

ORGS = ["clinic", "lab", "billing"]
PATIENTS = 12
DURATION = 90.0


def build_federation():
    # An uneven WAN: the lab is far away from everyone.
    latency = LinkLatency(
        links={
            ("clinic", "lab"): Uniform(3.0, 8.0),
            ("lab", "clinic"): Uniform(3.0, 8.0),
            ("billing", "lab"): Uniform(2.0, 6.0),
            ("lab", "billing"): Uniform(2.0, 6.0),
        },
        default=Uniform(0.5, 1.5),
    )
    system = ThreeVSystem(
        ORGS, seed=77, latency=latency, policy=PeriodicPolicy(25.0),
    )
    # Autonomy: each member tunes its own local manager.
    system.node("clinic").config = NodeConfig(op_service=Constant(0.002))
    system.node("lab").config = NodeConfig(op_service=Constant(0.010),
                                           executor_capacity=4)
    system.node("billing").config = NodeConfig(op_service=Constant(0.001))
    for org in ORGS:
        for patient in range(PATIENTS):
            system.load(org, f"acct:{patient}", 0.0)
    return system


def referral(name, patient, rng):
    """Clinic visit -> lab work -> billing: one global transaction."""
    visit_fee = round(rng.uniform(40, 120), 2)
    lab_fee = round(rng.uniform(15, 300), 2)
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(
            node="clinic",
            ops=[WriteOp(f"acct:{patient}", Increment(visit_fee))],
            children=[
                SubtxnSpec(
                    node="lab",
                    ops=[WriteOp(f"acct:{patient}", Increment(lab_fee))],
                    children=[
                        SubtxnSpec(
                            node="billing",
                            ops=[WriteOp(f"acct:{patient}",
                                         Increment(visit_fee + lab_fee))],
                        )
                    ],
                )
            ],
        ),
    )


def cross_org_audit(name, patient):
    return TransactionSpec(
        name=name,
        root=SubtxnSpec(
            node="billing",
            ops=[ReadOp(f"acct:{patient}")],
            children=[
                SubtxnSpec(node="clinic", ops=[ReadOp(f"acct:{patient}")]),
                SubtxnSpec(node="lab", ops=[ReadOp(f"acct:{patient}")]),
            ],
        ),
    )


def main():
    system = build_federation()
    rng = RngRegistry(78).stream("fees")
    audits = []
    for index in range(60):
        at = 1.0 + index * 1.5
        system.submit_at(at, referral(f"ref-{index}", index % PATIENTS, rng))
        if index % 4 == 0:
            audit_name = f"audit-{index}"
            audits.append(audit_name)
            system.submit_at(at + 0.7, cross_org_audit(audit_name,
                                                       index % PATIENTS))
    system.run(until=DURATION)
    system.stop_policy()
    system.run_until_quiet()

    history = system.history
    print(f"referrals committed : {history.count('update')}")
    print(f"cross-org audits    : {len(audits)}")
    torn = 0
    for name in audits:
        values = [v for _k, v in history.txn(name).reads]
        billing, clinic, lab = values[0], values[1], values[2]
        # Serializable view: billing's total equals clinic + lab exactly.
        if abs(billing - (clinic + lab)) > 1e-9:
            torn += 1
    print(f"audits seeing a torn referral: {torn}")
    assert torn == 0, "3V must give the auditor a serializable view"

    waits = {
        org: max(
            (record.remote_wait for record in history.txns.values()
             if record.root_node == org), default=0.0,
        )
        for org in ORGS
    }
    print("max remote wait per organization:",
          {org: round(value, 3) for org, value in waits.items()})
    assert all(value == 0.0 for value in waits.values())
    print(f"version advancements completed: "
          f"{system.coordinator.completed_runs} "
          "(the only cross-organization coordination, all asynchronous)")


if __name__ == "__main__":
    main()
