#!/usr/bin/env python3
"""Replay of the paper's worked example (Section 2.3, Table 1, Figure 2).

Reconstructs the exact three-site execution the paper walks through:
update transaction ``i`` (version 1) racing update ``j`` (version 2)
across an asynchronous version advancement, with reads ``x`` and ``y`` on
version 0.  Prints the event trace and the Figure 2 version-state panels,
then verifies the final state against the protocol-derived ground truth.

Run:  python examples/paper_walkthrough.py
"""

from repro.workloads.paper_example import (
    INITIAL,
    expected_final_state,
    run_example,
)


def panel(title: str, snapshot):
    print(f"--- {title} ---")
    for key in sorted(snapshot):
        chain = snapshot[key]
        versions = "  ".join(
            f"v{version}={chain[version]}" for version in sorted(chain)
        )
        print(f"  {key}: {versions}")
    print()


def main():
    run = run_example(
        snapshot_times=[
            ("start state", 0.5),
            ("after time 12 (j and jp done, iq in flight)", 12.0),
            ("after time 20 (iq dual-wrote D, iqp wrote B)", 20.0),
        ]
    )
    system = run.system

    print("Event trace (writes):")
    for event in system.history.write_events:
        extra = " [DUAL WRITE]" if event.versions_written > 1 else ""
        print(
            f"  t={event.time:6.2f}  {event.subtxn:4s} @ {event.node}  "
            f"{event.key} version {event.version}{extra}"
        )
    print()

    for name, snapshot in run.snapshots.items():
        panel(name, snapshot)

    final = {}
    for node in system.nodes.values():
        final.update(node.store.snapshot())
    panel("eventually (after advancement + GC)", final)

    assert final == expected_final_state(), "final state matches Figure 2"
    x = dict(system.history.txn("x").reads)
    y = dict(system.history.txn("y").reads)
    print(f"read x saw A={x['A']} (version 0 value {INITIAL['A']})")
    print(f"read y saw D={y['D']} (version 0 value {INITIAL['D']})")
    dual_writes = sum(n.store.dual_writes for n in system.nodes.values())
    print(f"dual writes in the whole run: {dual_writes} (iq on item D)")
    print(f"final versions: vr={system.read_version} vu={system.update_version}")
    print("\nAll Table 1 / Figure 2 checks passed.")


if __name__ == "__main__":
    main()
