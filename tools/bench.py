#!/usr/bin/env python
"""Run the hot-path benchmark suite and maintain ``BENCH_hotpath.json``.

The trajectory file at the repository root records the tracked performance
baseline (full-mode and smoke-mode metrics, the determinism digests, and the
frozen seed-kernel numbers for the speedup claim).  See
``docs/PERFORMANCE.md`` for the schema and workflow.

Usage (from the repository root)::

    PYTHONPATH=src python tools/bench.py              # run full suite, print
    PYTHONPATH=src python tools/bench.py --smoke      # quick run (~2 s)
    PYTHONPATH=src python tools/bench.py --update     # rewrite the baseline
    PYTHONPATH=src python tools/bench.py --check      # regression gate
    PYTHONPATH=src python tools/bench.py --check --smoke   # fast gate

``--check`` re-runs the suite and fails (exit 1) if any metric regressed by
more than ``--tolerance`` (default 25%) against the committed baseline, or
if a determinism digest changed at all.  Metrics only *improving* never
fail the gate; run ``--update`` to ratchet the baseline forward.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_hotpath.json"

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_accel  # noqa: E402  (needs the path setup above)
import bench_hotpath  # noqa: E402

SCHEMA_VERSION = 1


def current_build() -> dict:
    """The kernel build this process runs: ``{"mode": ..., "backend": ...}``.

    ``mode`` is what the loader actually selected ("pure"/"accel"); the
    backend is reported only when the mode is accel, so a built-but-
    disabled checkout (``REPRO_ACCEL=0``) still counts as pure.
    """
    import repro

    mode = repro.build_mode()
    backend = repro.accel_backend() if mode == "accel" else None
    return {"mode": mode, "backend": backend}

#: ``--profile`` targets: benchmark name -> zero-arg callable factory.
#: Each runs one suite workload once at the chosen mode's sizing.
PROFILE_TARGETS = {
    "kernel_callback": lambda cfg: (
        lambda: bench_hotpath.kernel_callback_storm(cfg["kernel_events"])),
    "kernel_process": lambda cfg: (
        lambda: bench_hotpath.kernel_process_storm(cfg["process_items"])),
    "e2e_3v": lambda cfg: (lambda: bench_hotpath.run_e2e(cfg["e2e"])),
    "advancement": lambda cfg: (
        lambda: bench_hotpath.run_e2e(cfg["advancement"])),
    "counter": lambda cfg: (
        lambda: bench_hotpath.counter_storm(cfg["counter_incs"])),
    "mvstore": lambda cfg: (
        lambda: bench_hotpath.mvstore_storm(cfg["mvstore_rounds"])),
    "quiescent": lambda cfg: (
        lambda: bench_hotpath.quiescent_storm(cfg["quiescent_checks"],
                                              cfg["quiescent_nodes"])),
    "quiescent_aggregate": lambda cfg: (
        lambda: bench_hotpath.aggregate_quiescent_storm(
            cfg["aggregate_checks"], cfg["quiescent_nodes"])),
}


def profile_benchmark(name: str, mode: str,
                      out_path: pathlib.Path | None = None) -> None:
    """Run one benchmark under cProfile and print the hot functions."""
    import cProfile
    import pstats

    target = PROFILE_TARGETS[name](bench_hotpath.CONFIGS[mode])
    profiler = cProfile.Profile()
    profiler.enable()
    target()
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(30)
    if out_path is not None:
        stats.dump_stats(str(out_path))
        print(f"wrote profile stats to {out_path} "
              f"(load with pstats.Stats or snakeviz)")


def _fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3f}"


def print_report(suite: dict) -> None:
    print(f"hot-path benchmark suite ({suite['mode']} mode)")
    width = max(len(name) for name in suite["metrics"])
    for name, value in suite["metrics"].items():
        print(f"  {name:<{width}}  {_fmt(value)}")
    print("  determinism digest:")
    for name, value in suite["determinism"].items():
        print(f"    {name} = {value}")


def build_baseline() -> dict:
    """Run full + smoke suites and assemble the trajectory document."""
    full = bench_hotpath.run_suite("full")
    smoke = bench_hotpath.run_suite("smoke")
    document = {
        "schema_version": SCHEMA_VERSION,
        "description": (
            "Tracked hot-path performance baseline; regenerate with "
            "`PYTHONPATH=src python tools/bench.py --update` and gate with "
            "`--check`.  See docs/PERFORMANCE.md."
        ),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
            # The kernel build the pure metric tables were measured under.
            # --check refuses to compare metrics across differing builds.
            "build_mode": current_build()["mode"],
            "build_backend": current_build()["backend"],
        },
        "metrics": full["metrics"],
        "determinism": full["determinism"],
        "smoke_metrics": smoke["metrics"],
        "smoke_determinism": smoke["determinism"],
    }
    accel = bench_accel.run_accel_suite("full")
    if accel is not None:
        # Side-by-side pure-vs-compiled cells: measured in one process
        # from explicit class handles, so they are build-mode independent
        # and live in their own section (absent on pure-only checkouts).
        document["accel"] = accel
    previous = load_baseline()
    if previous is not None and "seed_baseline" in previous:
        document["seed_baseline"] = previous["seed_baseline"]
        seed = previous["seed_baseline"]["metrics"]
        document["speedup_vs_seed"] = {
            name: full["metrics"][name] / seed[name]
            for name in seed
            if name in full["metrics"] and seed[name] > 0
        }
    return document


def load_baseline() -> dict | None:
    if not BASELINE_PATH.exists():
        return None
    return json.loads(BASELINE_PATH.read_text())


def check(baseline: dict, fresh: dict, mode: str, tolerance: float,
          out=print, digest_only: bool = False) -> bool:
    """Compare a fresh suite run against the committed baseline.

    Returns ``True`` when the gate passes.  Rates may not drop more than
    ``tolerance`` (fractional); determinism digests must match exactly.

    Metric comparison is refused (gate fails with an explanation) when
    the baseline was measured under a different kernel build than this
    process runs: comparing pure wall-clock against compiled wall-clock
    reports multi-x "slowdowns" that are build artifacts, not
    regressions.  ``digest_only=True`` skips the metric tables entirely
    and gates just the determinism digests — which must be bit-identical
    across builds, so that comparison is always legal.
    """
    metrics_key = "metrics" if mode == "full" else "smoke_metrics"
    digest_key = "determinism" if mode == "full" else "smoke_determinism"
    if not digest_only:
        baseline_build = baseline.get("host", {}).get("build_mode", "pure")
        fresh_build = fresh.get("build", current_build())["mode"]
        if baseline_build != fresh_build:
            out(f"REFUSED: baseline metrics were measured under the "
                f"'{baseline_build}' kernel build but this run uses "
                f"'{fresh_build}' — wall-clock rates are not comparable "
                f"across builds.")
            out("Use --digest-only to gate the (build-independent) "
                "determinism digests, or re-baseline with --update under "
                "the matching build.")
            return False
    # Like-for-like only: a smoke run is gated exclusively against the
    # smoke tables and a full run against the full tables (their sizings
    # differ severalfold, so cross-comparison is meaningless).  A baseline
    # missing its mode's tables fails rather than vacuously passing.
    missing = [key for key in (metrics_key, digest_key)
               if key not in baseline]
    if digest_only:
        missing = [key for key in (digest_key,) if key not in baseline]
    if missing:
        out(f"baseline has no {'/'.join(missing)} table(s) for "
            f"mode={mode}; run --update first")
        return False
    ok = True
    if not digest_only:
        committed = baseline[metrics_key]
        for name, old in committed.items():
            new = fresh["metrics"].get(name)
            if new is None:
                out(f"MISSING  {name}: present in baseline, absent in "
                    f"fresh run")
                ok = False
                continue
            ratio = new / old if old > 0 else float("inf")
            verdict = "ok"
            if ratio < 1.0 - tolerance:
                verdict = "REGRESSED"
                ok = False
            out(f"{verdict:>9}  {name}: {_fmt(old)} -> {_fmt(new)} "
                f"({ratio:.2f}x)")
        if mode == "full":
            # The accel section is measured at full sizing only.
            ok = _check_accel(baseline, fresh, tolerance, out) and ok
    committed_digest = baseline[digest_key]
    fresh_digest = fresh["determinism"]
    for name, old in committed_digest.items():
        new = fresh_digest.get(name)
        if new != old:
            out(f"DETERMINISM BROKEN  {name}: {old} -> {new}")
            ok = False
    return ok


def _check_accel(baseline: dict, fresh: dict, tolerance: float,
                 out=print) -> bool:
    """Gate the side-by-side ``accel_*`` cells when both sides have them.

    The accel section is measured from explicit class handles, so it is
    comparable regardless of the ambient build mode — but only within one
    backend, and only when a compiled build exists on the checking host.
    A fresh run without a compiled build skips the section with a note
    (pure checkouts must still pass the gate).
    """
    committed = baseline.get("accel")
    if committed is None:
        return True
    measured = fresh.get("accel")
    if measured is None:
        out("note: baseline has accel cells but no compiled build is "
            "present here — accel section skipped")
        return True
    if measured.get("backend") != committed.get("backend"):
        out(f"note: accel backend changed "
            f"({committed.get('backend')} -> {measured.get('backend')}) — "
            f"accel cells not comparable, section skipped "
            f"(re-baseline with --update)")
        return True
    ok = True
    for name, old in committed["metrics"].items():
        new = measured["metrics"].get(name)
        if new is None:
            out(f"MISSING  {name}: present in baseline, absent in fresh run")
            ok = False
            continue
        ratio = new / old if old > 0 else float("inf")
        verdict = "ok"
        if ratio < 1.0 - tolerance:
            verdict = "REGRESSED"
            ok = False
        out(f"{verdict:>9}  {name}: {_fmt(old)} -> {_fmt(new)} "
            f"({ratio:.2f}x)")
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads (fits the tier-1 test budget)")
    parser.add_argument("--check", action="store_true",
                        help="regression-gate against BENCH_hotpath.json")
    parser.add_argument("--update", action="store_true",
                        help="run full+smoke suites and rewrite the baseline")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown for --check "
                             "(default 0.25)")
    parser.add_argument("--digest-only", action="store_true",
                        help="with --check: gate only the determinism "
                             "digests (legal across kernel builds; metric "
                             "tables are skipped)")
    parser.add_argument("--output", type=pathlib.Path, default=BASELINE_PATH,
                        help="baseline file to write (--update) or read "
                             "(--check)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="collect the independent e2e/advancement "
                             "benchmarks in parallel worker processes "
                             "(timed kernels always stay serial; use "
                             "--jobs 1 for tracked measurements)")
    parser.add_argument("--profile", choices=sorted(PROFILE_TARGETS),
                        help="run one benchmark under cProfile and print "
                             "the top functions by cumulative time")
    parser.add_argument("--profile-out", type=pathlib.Path, default=None,
                        help="also dump binary pstats for --profile")
    args = parser.parse_args(argv)

    if args.profile:
        profile_benchmark(args.profile, "smoke" if args.smoke else "full",
                          args.profile_out)
        return 0

    if args.update:
        document = build_baseline()
        args.output.write_text(json.dumps(document, indent=2) + "\n")
        print(f"wrote {args.output}")
        print_report({"mode": "full", "metrics": document["metrics"],
                      "determinism": document["determinism"]})
        return 0

    mode = "smoke" if args.smoke else "full"

    def collect() -> dict:
        suite = bench_hotpath.run_suite(mode, jobs=args.jobs)
        suite["build"] = current_build()
        if mode == "full" and not args.digest_only:
            accel = bench_accel.run_accel_suite("full")
            if accel is not None:
                suite["accel"] = accel
        return suite

    if args.check:
        baseline_path = args.output
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path}; run --update first")
            return 1
        baseline = json.loads(baseline_path.read_text())
        if not args.digest_only:
            # Refuse cross-build comparison before burning a suite run.
            probe = {"build": current_build(), "metrics": {},
                     "determinism": {}}
            baseline_build = baseline.get("host", {}).get("build_mode",
                                                          "pure")
            if baseline_build != probe["build"]["mode"]:
                check(baseline, probe, mode, args.tolerance,
                      digest_only=False)
                print(f"gate: FAIL (mode={mode}, cross-build refusal)")
                return 1
        suite = collect()
        passed = check(baseline, suite, mode, args.tolerance,
                       digest_only=args.digest_only)
        if not passed:
            # One retry before failing: a single wall-clock measurement on a
            # shared/virtualized host can dip well past tolerance from CPU
            # steal alone.  A real regression fails both runs; determinism
            # breaks fail both runs by construction.
            print("gate: retrying once (first run exceeded tolerance) ...")
            suite = collect()
            passed = check(baseline, suite, mode, args.tolerance,
                           digest_only=args.digest_only)
        print("gate:", "PASS" if passed else "FAIL",
              f"(mode={mode}, tolerance={args.tolerance:.0%}"
              f"{', digest-only' if args.digest_only else ''})")
        return 0 if passed else 1

    print_report(collect())
    return 0


if __name__ == "__main__":
    sys.exit(main())
