#!/usr/bin/env python
"""Import-layering lint for the runtime/plugin split.

The refactor that introduced ``repro.runtime`` rests on two structural
guarantees, and this script keeps them true by construction:

1. **The runtime is mechanism, not policy.**  Nothing under
   ``repro/runtime/`` may import a protocol package (``repro.core``,
   ``repro.baselines``), the aggregator (``repro.protocols``), or any
   higher layer (``repro.workloads``, ``repro.exp``, ``repro.analysis``,
   ``repro.cli``).  The registry reaches its bootstrap module by *name*
   (``importlib``) precisely so no static import edge exists.

2. **Plugins are peers.**  Protocol implementations must not import each
   other: ``repro.core`` (3V + NC3V) and each baseline module
   (``nocoord``, ``manual``, ``twopc``) may only depend on the runtime
   and the substrate layers (sim/net/storage/txn/history/errors).
   ``repro.baselines.base`` is a compatibility shim re-exporting runtime
   names and is allowed as a target; ``repro.protocols`` is the one
   module allowed to import every plugin.

3. **Fault injection is substrate.**  ``repro.faults`` may import only
   the substrate it instruments (``repro.net``, ``repro.sim``,
   ``repro.errors``) and itself — never the runtime, a protocol plugin,
   or any higher layer.  The crash/recover surface lives on
   ``repro.runtime.System`` and the chaos harness in ``repro.exp``;
   both import *down* into ``repro.faults``, keeping the injector
   reusable under every protocol.

4. **Transaction history is substrate.**  ``repro.txn`` (specs, the
   recording ``History``/``StreamingHistory``, and their online
   aggregates) may import only ``repro.errors``, ``repro.storage``, and
   itself.  In particular it must never import ``repro.analysis``: the
   streaming history *computes* latency aggregates that the analysis
   layer re-exports, and an upward edge would make that a cycle.

5. **Placement is substrate.**  ``repro.placement`` (replica maps, the
   missed-op ledger, the refresh protocol) may import only
   ``repro.errors``, ``repro.sim``, ``repro.storage``, ``repro.net``,
   and itself — never the runtime, a protocol plugin, or any higher
   layer.  The runtime calls *down* into placement through duck-typed
   hooks (``should_skip_write`` receives plain ``(key, operation)``
   pairs, not ``WriteOp`` objects), so replication stays reusable under
   every protocol and the unreplicated path never loads it at all.

6. **Build selection is invisible.**  ``repro._accel`` (the
   accelerated-build loader) may be imported only by the eight kernel
   modules that end with its ``install()`` hook and by the package root
   (which re-exports ``build_mode`` etc. for reporting).  Protocol,
   runtime, and experiment code must never import it: they bind whatever
   implementation the kernel modules expose, so the pure and compiled
   builds stay interchangeable.  Introspection goes through the
   ``repro``-root re-exports.

The check is AST-based (``import x`` / ``from x import y``, including
relative imports), so string mentions in docstrings or comments are
ignored.  Exit status 0 = clean, 1 = violations (listed one per line).
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
import typing

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")

#: Peer plugin groups: a module in one group must not import from another.
PLUGIN_GROUPS = {
    "core": ("repro.core",),
    "nocoord": ("repro.baselines.nocoord",),
    "manual": ("repro.baselines.manual",),
    "twopc": ("repro.baselines.twopc",),
}

#: Modules every plugin may import even though they live in a plugin
#: namespace: the compatibility shim only re-exports runtime names.
SHARED_COMPAT = ("repro.baselines.base", "repro.baselines")

#: The only ``repro.*`` prefixes ``repro.faults`` may import.
FAULTS_ALLOWED = (
    "repro.faults",
    "repro.net",
    "repro.sim",
    "repro.errors",
)

#: The only ``repro.*`` prefixes ``repro.txn`` may import.
TXN_ALLOWED = (
    "repro.txn",
    "repro.errors",
    "repro.storage",
)

#: The only ``repro.*`` prefixes ``repro.placement`` may import.
PLACEMENT_ALLOWED = (
    "repro.placement",
    "repro.errors",
    "repro.sim",
    "repro.storage",
    "repro.net",
)

#: The only modules allowed to import ``repro._accel``: the kernel
#: modules carrying the install() hook, the loader package itself, and
#: the package root (re-export surface for build_mode/accel_backend).
ACCEL_IMPORTERS = (
    "repro",
    "repro._accel",
    "repro.sim.events",
    "repro.sim.process",
    "repro.sim.simulator",
    "repro.net.message",
    "repro.net.network",
    "repro.storage.values",
    "repro.storage.counters",
    "repro.storage.mvstore",
)

#: Layers the runtime package must never import.
ABOVE_RUNTIME = (
    "repro.core",
    "repro.baselines",
    "repro.protocols",
    "repro.workloads",
    "repro.exp",
    "repro.analysis",
    "repro.cli",
)


def module_name(path: str, src_root: str) -> str:
    """``src/repro/runtime/node.py`` -> ``repro.runtime.node``."""
    relative = os.path.relpath(path, src_root)
    parts = relative.split(os.sep)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts)


def imported_modules(
    path: str, src_root: str
) -> typing.List[typing.Tuple[int, str]]:
    """Every absolute module name imported by ``path`` (with line numbers)."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    current = module_name(path, src_root)
    package = current if path.endswith("__init__.py") else current.rsplit(".", 1)[0]
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # resolve "from . import x" relative imports
                base = package.split(".")
                base = base[: len(base) - (node.level - 1)]
                prefix = ".".join(base)
                target = f"{prefix}.{node.module}" if node.module else prefix
            else:
                target = node.module or ""
            found.append((node.lineno, target))
    return found


def hits(imported: str, prefixes: typing.Sequence[str]) -> bool:
    return any(
        imported == prefix or imported.startswith(prefix + ".")
        for prefix in prefixes
    )


def in_group(module: str) -> typing.Optional[str]:
    for group, prefixes in PLUGIN_GROUPS.items():
        if hits(module, prefixes):
            return group
    return None


def check(src_root: str) -> typing.List[str]:
    violations = []
    for directory, _, filenames in sorted(os.walk(os.path.join(src_root, "repro"))):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(directory, filename)
            module = module_name(path, src_root)
            display = os.path.relpath(path, REPO_ROOT)
            group = in_group(module)
            for lineno, imported in imported_modules(path, src_root):
                if hits(module, ("repro.runtime",)) and hits(imported, ABOVE_RUNTIME):
                    violations.append(
                        f"{display}:{lineno}: runtime imports higher layer "
                        f"{imported!r} (mechanism must not know policy)"
                    )
                if (hits(module, ("repro.faults",))
                        and hits(imported, ("repro",))
                        and not hits(imported, FAULTS_ALLOWED)):
                    violations.append(
                        f"{display}:{lineno}: repro.faults imports "
                        f"{imported!r} (the injector may only depend on "
                        f"net/sim/errors, never a protocol or the runtime)"
                    )
                if (hits(module, ("repro.txn",))
                        and hits(imported, ("repro",))
                        and not hits(imported, TXN_ALLOWED)):
                    violations.append(
                        f"{display}:{lineno}: repro.txn imports "
                        f"{imported!r} (history is substrate: it may only "
                        f"depend on errors/storage, never the analysis "
                        f"layer that re-exports its aggregates)"
                    )
                if (hits(module, ("repro.placement",))
                        and hits(imported, ("repro",))
                        and not hits(imported, PLACEMENT_ALLOWED)):
                    violations.append(
                        f"{display}:{lineno}: repro.placement imports "
                        f"{imported!r} (placement is substrate: it may "
                        f"only depend on errors/sim/storage/net, never "
                        f"the runtime or a protocol plugin)"
                    )
                if (hits(imported, ("repro._accel",))
                        and module not in ACCEL_IMPORTERS
                        and not hits(module, ("repro._accel",))):
                    violations.append(
                        f"{display}:{lineno}: {module} imports "
                        f"{imported!r} (build selection is invisible: "
                        f"only the kernel shim modules and the package "
                        f"root may touch repro._accel; use the repro-root "
                        f"re-exports for introspection)"
                    )
                if group is None or module == "repro.protocols":
                    continue
                if hits(imported, SHARED_COMPAT) and not in_group(imported):
                    continue
                other = in_group(imported)
                if other is not None and other != group:
                    violations.append(
                        f"{display}:{lineno}: plugin group {group!r} imports "
                        f"peer group {other!r} via {imported!r} (plugins must "
                        f"only meet through repro.runtime)"
                    )
    return violations


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--src", default=SRC_ROOT,
        help="source root containing the repro package (default: src/)",
    )
    args = parser.parse_args(argv)
    violations = check(args.src)
    for violation in violations:
        print(violation)
    if violations:
        print(f"layering check FAILED: {len(violations)} violation(s)")
        return 1
    print("layering check OK: runtime imports no plugin; plugins import no peer")
    return 0


if __name__ == "__main__":
    sys.exit(main())
