#!/usr/bin/env python3
"""Build the optional accelerated ("accel") kernel for repro.

Two backends produce compiled twins under ``src/repro/_accel/``:

* ``ckernel`` — hand-written CPython C extensions for the three hottest
  modules (``sim.simulator``, ``storage.counters``, ``storage.mvstore``).
  Needs only a C compiler and the CPython headers; no third-party
  packages.  This is the tuned, preferred backend.
* ``mypyc`` — mypyc-compiled mirrors of all eight kernel modules.
  Needs ``mypy`` installed (``pip install .[accel]``).  Used when no C
  sources apply or as the portable fallback.

The build writes ``src/repro/_accel/_manifest.json`` recording the
backend and the canonical module names that now have compiled twins.
The runtime loader (:mod:`repro._accel`) reads that manifest: modules in
it are swapped to their compiled twins at import time (unless
``REPRO_ACCEL=0``); modules absent from it silently stay pure.

Usage::

    python tools/build_accel.py                   # auto backend
    python tools/build_accel.py --backend ckernel
    python tools/build_accel.py --if-available    # exit 0 when no toolchain
    python tools/build_accel.py --clean           # remove all accel artifacts
    python tools/build_accel.py --status          # show manifest + importability
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import sysconfig
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")
ACCEL_DIR = os.path.join(SRC_ROOT, "repro", "_accel")
CSRC_DIR = os.path.join(ACCEL_DIR, "_csrc")
MYC_DIR = os.path.join(ACCEL_DIR, "_myc")
MANIFEST = os.path.join(ACCEL_DIR, "_manifest.json")

#: canonical module -> short accel module name (see repro._accel).
KERNEL_MODULES = {
    "repro.sim.events": "sim_events",
    "repro.sim.process": "sim_process",
    "repro.sim.simulator": "sim_simulator",
    "repro.net.message": "net_message",
    "repro.net.network": "net_network",
    "repro.storage.values": "storage_values",
    "repro.storage.counters": "storage_counters",
    "repro.storage.mvstore": "storage_mvstore",
}

#: canonical module -> C source, for the ckernel backend.
CKERNEL_SOURCES = {
    "repro.sim.simulator": "simulator.c",
    "repro.storage.counters": "counters.c",
    "repro.storage.mvstore": "mvstore.c",
}

HOOK_START = "# --- accelerated-build hook"
HOOK_END = "# --- end accelerated-build hook"


def log(message: str) -> None:
    print(f"[build_accel] {message}")


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------

def ext_suffixes() -> list:
    import importlib.machinery

    return importlib.machinery.EXTENSION_SUFFIXES


def built_extension_files(directory: str) -> list:
    """All compiled-extension files directly inside ``directory``."""
    if not os.path.isdir(directory):
        return []
    suffixes = tuple(ext_suffixes())
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(suffixes)
    )


def have_c_toolchain() -> bool:
    if shutil.which("cc") is None and shutil.which("gcc") is None:
        return False
    include = sysconfig.get_paths().get("include", "")
    return os.path.isfile(os.path.join(include, "Python.h"))


def have_mypyc() -> bool:
    try:
        import mypyc  # noqa: F401
    except ImportError:
        return False
    return True


def run_build_ext(extensions, build_lib: str) -> None:
    """Compile ``extensions`` into ``build_lib`` via setuptools."""
    from setuptools.command.build_ext import build_ext
    from setuptools.dist import Distribution

    dist = Distribution({"name": "repro-accel", "ext_modules": extensions})
    command = build_ext(dist)
    command.build_lib = build_lib
    command.build_temp = os.path.join(build_lib, "temp")
    command.ensure_finalized()
    command.run()


def verify_import(canonical: str) -> bool:
    """Can the compiled twin of ``canonical`` be imported in a clean
    interpreter?  Runs with REPRO_ACCEL=0 so the loader hooks stay pure
    while the twin itself is exercised."""
    accel_name = "repro._accel." + KERNEL_MODULES[canonical]
    env = dict(os.environ)
    env["REPRO_ACCEL"] = "0"
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    probe = subprocess.run(
        [sys.executable, "-c", f"import {accel_name}"],
        env=env,
        capture_output=True,
        text=True,
    )
    if probe.returncode != 0:
        log(f"compiled twin {accel_name} failed to import:")
        sys.stderr.write(probe.stderr)
        return False
    return True


def verify_swap() -> bool:
    """Can the canonical package import with the manifest active?

    Runs after the manifest is written, with ``REPRO_ACCEL=1``, importing
    every canonical kernel module in a clean interpreter.  This is the
    check :func:`verify_import` cannot make: a twin can import fine in
    isolation yet break the package once the loader swaps it in — e.g. a
    compiled base class that rejects the interpreted subclasses defined
    by the pure module bodies that always execute to reach their install
    hooks.  A build that fails here would brick every ``import repro``
    until ``--clean``, so it must never leave a manifest behind."""
    env = dict(os.environ)
    env["REPRO_ACCEL"] = "1"
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    code = (
        "import repro\n"
        + "".join(f"import {name}\n" for name in sorted(KERNEL_MODULES))
        + "import repro._accel as _accel\n"
        "assert _accel.build_mode() == 'accel', _accel.accel_status()\n"
    )
    probe = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
    )
    if probe.returncode != 0:
        log("canonical import under REPRO_ACCEL=1 failed with the swap "
            "active:")
        sys.stderr.write(probe.stderr)
        return False
    return True


def write_manifest(backend: str, modules: list) -> None:
    payload = {"backend": backend, "modules": sorted(modules)}
    with open(MANIFEST, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    log(f"wrote {os.path.relpath(MANIFEST, REPO_ROOT)}: "
        f"backend={backend}, {len(modules)} modules")


def clean(verbose: bool = True) -> None:
    removed = []
    for path in built_extension_files(ACCEL_DIR):
        os.unlink(path)
        removed.append(path)
    for short in KERNEL_MODULES.values():
        forwarder = os.path.join(ACCEL_DIR, short + ".py")
        if os.path.isfile(forwarder):
            os.unlink(forwarder)
            removed.append(forwarder)
    if os.path.isdir(MYC_DIR):
        shutil.rmtree(MYC_DIR)
        removed.append(MYC_DIR)
    if os.path.isfile(MANIFEST):
        os.unlink(MANIFEST)
        removed.append(MANIFEST)
    pycache = os.path.join(ACCEL_DIR, "__pycache__")
    if os.path.isdir(pycache):
        shutil.rmtree(pycache)
    if verbose:
        if removed:
            for path in removed:
                log(f"removed {os.path.relpath(path, REPO_ROOT)}")
        else:
            log("nothing to clean")


# ----------------------------------------------------------------------
# ckernel backend
# ----------------------------------------------------------------------

def build_ckernel() -> list:
    from setuptools import Extension

    extensions = []
    for canonical, source in sorted(CKERNEL_SOURCES.items()):
        accel_name = "repro._accel." + KERNEL_MODULES[canonical]
        extensions.append(
            Extension(
                accel_name,
                sources=[os.path.join(CSRC_DIR, source)],
                extra_compile_args=["-O2"],
            )
        )
    with tempfile.TemporaryDirectory(prefix="repro-accel-") as build_lib:
        run_build_ext(extensions, build_lib)
        built_dir = os.path.join(build_lib, "repro", "_accel")
        built = built_extension_files(built_dir)
        if len(built) != len(extensions):
            raise RuntimeError(
                f"expected {len(extensions)} built extensions, "
                f"found {len(built)} in {built_dir}"
            )
        for path in built:
            target = os.path.join(ACCEL_DIR, os.path.basename(path))
            shutil.copy2(path, target)
            log(f"installed {os.path.relpath(target, REPO_ROOT)}")
    return sorted(CKERNEL_SOURCES)


# ----------------------------------------------------------------------
# mypyc backend
# ----------------------------------------------------------------------

def generate_mirror(canonical: str) -> str:
    """Pure-module source with the accel hook stripped and intra-kernel
    imports rewritten to the mirror package."""
    path = os.path.join(SRC_ROOT, *canonical.split(".")) + ".py"
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    lines = []
    skipping = False
    for line in source.splitlines(keepends=True):
        stripped = line.strip()
        if stripped.startswith(HOOK_START):
            skipping = True
            continue
        if stripped.startswith(HOOK_END):
            skipping = False
            continue
        if not skipping:
            lines.append(line)
    source = "".join(lines)
    for other, short in KERNEL_MODULES.items():
        source = re.sub(
            rf"\bfrom {re.escape(other)} import\b",
            f"from repro._accel._myc.{short} import",
            source,
        )
        source = re.sub(
            rf"\bimport {re.escape(other)}\b",
            f"import repro._accel._myc.{short}",
            source,
        )
    return source


def build_mypyc() -> list:
    from mypyc.build import mypycify

    os.makedirs(MYC_DIR, exist_ok=True)
    init_path = os.path.join(MYC_DIR, "__init__.py")
    with open(init_path, "w", encoding="utf-8") as handle:
        handle.write('"""mypyc-compiled kernel mirrors (generated)."""\n')
    mirror_paths = []
    for canonical, short in sorted(KERNEL_MODULES.items()):
        mirror = os.path.join(MYC_DIR, short + ".py")
        with open(mirror, "w", encoding="utf-8") as handle:
            handle.write(generate_mirror(canonical))
        mirror_paths.append(mirror)

    # mypycify resolves module names from paths relative to the cwd.
    previous = os.getcwd()
    os.chdir(SRC_ROOT)
    try:
        relative = [os.path.relpath(p, SRC_ROOT) for p in mirror_paths]
        extensions = mypycify(relative, opt_level="3")
        with tempfile.TemporaryDirectory(prefix="repro-accel-") as build_lib:
            run_build_ext(extensions, build_lib)
            for dirpath, _dirnames, filenames in os.walk(build_lib):
                if os.path.basename(dirpath) == "temp":
                    continue
                for name in filenames:
                    if not name.endswith(tuple(ext_suffixes())):
                        continue
                    source = os.path.join(dirpath, name)
                    target = os.path.join(
                        SRC_ROOT, os.path.relpath(source, build_lib)
                    )
                    os.makedirs(os.path.dirname(target), exist_ok=True)
                    shutil.copy2(source, target)
                    log(f"installed {os.path.relpath(target, REPO_ROOT)}")
    finally:
        os.chdir(previous)

    # Forwarders make the mirrors importable under the loader's canonical
    # accel names (repro._accel.sim_events -> repro._accel._myc.sim_events).
    for canonical, short in sorted(KERNEL_MODULES.items()):
        forwarder = os.path.join(ACCEL_DIR, short + ".py")
        with open(forwarder, "w", encoding="utf-8") as handle:
            handle.write(
                f'"""Generated forwarder to the mypyc mirror of '
                f'{canonical}."""\n'
                f"from repro._accel._myc.{short} import *  # noqa: F401,F403\n"
            )
    return sorted(KERNEL_MODULES)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def status() -> int:
    if not os.path.isfile(MANIFEST):
        log("no build manifest: the accel kernel is not built (pure only)")
        return 0
    with open(MANIFEST, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    log(f"backend: {manifest.get('backend')}")
    failures = 0
    for canonical in manifest.get("modules", []):
        ok = verify_import(canonical)
        log(f"  {canonical}: {'ok' if ok else 'BROKEN'}")
        failures += 0 if ok else 1
    swap_ok = verify_swap()
    log(f"  swap (REPRO_ACCEL=1 canonical import): "
        f"{'ok' if swap_ok else 'BROKEN'}")
    failures += 0 if swap_ok else 1
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        choices=("auto", "ckernel", "mypyc"),
        default="auto",
        help="which compiler to use (auto prefers ckernel, then mypyc)",
    )
    parser.add_argument(
        "--if-available",
        action="store_true",
        help="exit 0 (without building) when no toolchain is present",
    )
    parser.add_argument(
        "--clean", action="store_true",
        help="remove all built accel artifacts and exit",
    )
    parser.add_argument(
        "--status", action="store_true",
        help="report the current build manifest and exit",
    )
    options = parser.parse_args(argv)

    if options.clean:
        clean()
        return 0
    if options.status:
        return status()

    backend = options.backend
    if backend == "auto":
        if have_c_toolchain():
            backend = "ckernel"
        elif have_mypyc():
            backend = "mypyc"
        else:
            message = ("no accel toolchain: need a C compiler with CPython "
                       "headers (ckernel) or mypy installed (mypyc)")
            if options.if_available:
                log(message + " — skipping build")
                return 0
            log(message)
            return 1
    elif backend == "ckernel" and not have_c_toolchain():
        message = "ckernel backend needs a C compiler and CPython headers"
        if options.if_available:
            log(message + " — skipping build")
            return 0
        log(message)
        return 1
    elif backend == "mypyc" and not have_mypyc():
        message = "mypyc backend needs mypy installed (pip install .[accel])"
        if options.if_available:
            log(message + " — skipping build")
            return 0
        log(message)
        return 1

    # Never mix artifacts from two backends.
    clean(verbose=False)
    log(f"building accel kernel with the {backend} backend")
    if backend == "ckernel":
        modules = build_ckernel()
    else:
        modules = build_mypyc()
    bad = [m for m in modules if not verify_import(m)]
    if bad:
        log(f"build verification failed for: {', '.join(bad)}")
        clean(verbose=False)
        return 1
    write_manifest(backend, modules)
    if not verify_swap():
        log("swap verification failed — removing the broken build")
        clean(verbose=False)
        return 1
    log("done — set REPRO_ACCEL=1 to require the compiled kernel")
    return 0


if __name__ == "__main__":
    sys.exit(main())
