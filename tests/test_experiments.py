"""End-to-end experiments: every protocol under the same recording load.

These are the library's highest-value tests: they drive randomized Poisson
traffic through all five systems and check the paper's central claims with
the exact bitmask oracle — 3V and 2PC are serializable, no-coordination
and undersized manual versioning are not, and only 3V combines zero remote
waits with bounded staleness.
"""

import pytest

from repro.analysis import (
    audit,
    latency_summary,
    max_remote_wait,
    staleness_summary,
    throughput,
)
from repro.core import check_all
from repro.workloads import run_recording_experiment

COMMON = dict(
    nodes=4,
    duration=40.0,
    update_rate=4.0,
    inquiry_rate=3.0,
    audit_rate=0.3,
    entities=12,  # few entities -> high contention -> races likely
    span=3,
    seed=11,
    amount_mode="bitmask",
)


@pytest.fixture(scope="module")
def results():
    return {
        protocol: run_recording_experiment(protocol, **COMMON)
        for protocol in ("3v", "nocoord", "manual", "manual-sync", "2pc")
    }


class TestCorrectness:
    def test_3v_is_snapshot_consistent(self, results):
        result = results["3v"]
        report = audit(result.history, result.workload, check_snapshots=True)
        assert report.reads_checked > 50
        assert report.clean, report.violations[:5]

    def test_3v_invariants_hold_at_end(self, results):
        check_all(results["3v"].system)

    def test_3v_advanced_several_times(self, results):
        assert results["3v"].system.coordinator.completed_runs >= 2

    def test_nocoord_produces_fractured_reads(self, results):
        report = audit(results["nocoord"].history)
        assert report.fractured_reads > 0

    def test_manual_with_short_delay_produces_fractured_reads(self):
        result = run_recording_experiment(
            "manual", safety_delay=0.4, advancement_period=5.0, **COMMON
        )
        report = audit(result.history)
        assert report.fractured_reads > 0

    def test_manual_sync_is_consistent(self, results):
        report = audit(results["manual-sync"].history)
        assert report.clean, report.violations[:5]

    def test_2pc_is_consistent(self, results):
        report = audit(results["2pc"].history)
        assert report.clean, report.violations[:5]


class TestPerformanceShape:
    def test_3v_has_zero_remote_waits(self, results):
        assert max_remote_wait(results["3v"].history) == 0.0

    def test_2pc_has_remote_waits(self, results):
        assert max_remote_wait(results["2pc"].history) > 0.0

    def test_3v_latency_tracks_nocoord(self, results):
        """3V's user-perceived update latency should be within a small
        factor of the uncoordinated lower bound."""
        l3v = latency_summary(results["3v"].history, kind="update").p95
        lnc = latency_summary(results["nocoord"].history, kind="update").p95
        assert l3v <= lnc * 2 + 0.01

    def test_2pc_latency_much_worse_than_3v(self, results):
        l3v = latency_summary(results["3v"].history, kind="update",
                              which="global").mean
        l2pc = latency_summary(results["2pc"].history, kind="update",
                               which="global").mean
        assert l2pc > l3v * 2

    def test_manual_sync_stalls_transactions(self, results):
        from repro.analysis import wait_summary

        waits = wait_summary(results["manual-sync"].history)
        assert waits.get("advancement", 0.0) > 0.0

    def test_3v_staleness_bounded_by_advancement_cadence(self, results):
        history = results["3v"].history
        staleness = staleness_summary(history)
        # A read's snapshot age is bounded by the gap between consecutive
        # version closings (period + advancement duration), not unbounded
        # like monthly manual versioning.
        closings = sorted(
            record.phase1_done for record in history.advancements
            if record.phase1_done is not None
        )
        gaps = [b - a for a, b in zip(closings, closings[1:])]
        gaps.append(results["3v"].duration - closings[-1])
        bound = max(closings[0], max(gaps)) + 5.0
        assert staleness.max <= bound

    def test_coordination_free_protocols_keep_up_with_offered_load(
        self, results
    ):
        """3V, no-coordination, and manual versioning absorb the full
        offered update rate; 2PC collapses under contention — exactly the
        paper's scalability argument."""
        for protocol in ("3v", "nocoord", "manual", "manual-sync"):
            rate = throughput(
                results[protocol].history, results[protocol].duration,
                kind="update",
            )
            assert rate > 3.0, protocol
        rate_2pc = throughput(results["2pc"].history,
                              results["2pc"].duration, kind="update")
        rate_3v = throughput(results["3v"].history,
                             results["3v"].duration, kind="update")
        assert rate_2pc > 0.3
        assert rate_2pc < rate_3v

    def test_version_bound_respected(self, results):
        for node in results["3v"].system.nodes.values():
            assert node.store.max_live_versions <= 3


class TestCompensationUnderLoad:
    def test_aborted_recordings_leave_no_trace(self):
        result = run_recording_experiment(
            "3v", abort_fraction=0.2, **COMMON
        )
        report = audit(result.history, result.workload, check_snapshots=True)
        assert report.compensated_txns > 0
        assert report.clean, report.violations[:5]


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        small = dict(COMMON, duration=10.0)
        a = run_recording_experiment("3v", **small)
        b = run_recording_experiment("3v", **small)
        assert a.submitted == b.submitted
        la = [(r.name, r.local_commit_time) for r in a.history.txns.values()]
        lb = [(r.name, r.local_commit_time) for r in b.history.txns.values()]
        assert la == lb

    def test_different_seed_different_timing(self):
        small = dict(COMMON, duration=10.0)
        a = run_recording_experiment("3v", **small)
        small["seed"] = 12
        b = run_recording_experiment("3v", **small)
        assert a.history.txns.keys() != b.history.txns.keys() or (
            [r.local_commit_time for r in a.history.txns.values()]
            != [r.local_commit_time for r in b.history.txns.values()]
        )


class TestNoncommutingMix:
    def test_corrections_run_under_nc3v(self):
        result = run_recording_experiment(
            "3v", correction_rate=0.3, **dict(COMMON, amount_mode="money")
        )
        history = result.history
        nc = [
            r for r in history.txns.values() if r.kind == "noncommuting"
        ]
        assert nc, "corrections were generated"
        committed = [r for r in nc if not r.aborted]
        assert committed, "at least some corrections commit"
        # Read-only transactions take no locks and never wait on remote
        # activity even with NC traffic around (local executor queueing is
        # the only delay they may see).
        reads = [r for r in history.committed_txns("read")]
        assert all(r.waits.get("lock", 0.0) == 0.0 for r in reads)
        assert all(r.remote_wait == 0.0 for r in reads)
