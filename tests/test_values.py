"""Unit and property tests for the commutative value algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import Assign, Increment, Record, Unrecord, apply_all


class TestIncrement:
    def test_apply_to_number(self):
        assert Increment(5).apply(10) == 15

    def test_apply_to_none_starts_at_zero(self):
        assert Increment(7).apply(None) == 7

    def test_apply_to_non_number_raises(self):
        with pytest.raises(StorageError):
            Increment(1).apply("text")

    def test_inverse_cancels(self):
        op = Increment(3.5)
        assert op.inverse().apply(op.apply(10.0)) == 10.0

    def test_commutes_flag(self):
        assert Increment(1).commutes

    def test_equality(self):
        assert Increment(2) == Increment(2)
        assert Increment(2) != Increment(3)


class TestRecord:
    def test_apply_inserts_observation(self):
        state = Record("call-1").apply(None)
        assert state == ("call-1",)

    def test_insertion_order_does_not_matter(self):
        a_then_b = Record("b").apply(Record("a").apply(None))
        b_then_a = Record("a").apply(Record("b").apply(None))
        assert a_then_b == b_then_a

    def test_duplicates_kept(self):
        state = Record("x").apply(Record("x").apply(None))
        assert state == ("x", "x")

    def test_apply_to_non_multiset_raises(self):
        with pytest.raises(StorageError):
            Record("x").apply(42)

    def test_inverse_removes_one_instance(self):
        state = Record("x").apply(Record("x").apply(None))
        assert Record("x").inverse().apply(state) == ("x",)

    def test_unrecord_absent_raises(self):
        with pytest.raises(StorageError):
            Unrecord("ghost").apply(())


class TestAssign:
    def test_apply_overwrites(self):
        assert Assign(99).apply(5) == 99

    def test_not_commuting(self):
        assert not Assign(1).commutes

    def test_no_state_independent_inverse(self):
        with pytest.raises(StorageError):
            Assign(1).inverse()

    def test_undo_restores_previous_state(self):
        op = Assign(99)
        undo = op.undo_for(5)
        assert undo.apply(op.apply(5)) == 5
        assert not undo.commutes

    def test_assign_undo_has_no_inverse(self):
        with pytest.raises(StorageError):
            Assign(1).undo_for(0).inverse()


class TestCommutativityProperties:
    @given(
        st.lists(st.integers(min_value=-1000, max_value=1000), max_size=20),
        st.randoms(use_true_random=False),
    )
    def test_increments_commute(self, deltas, rng):
        """Any permutation of increments yields the same final state."""
        ops = [Increment(d) for d in deltas]
        shuffled = list(ops)
        rng.shuffle(shuffled)
        assert apply_all(0, ops) == apply_all(0, shuffled)

    @given(
        st.lists(st.text(max_size=5), max_size=15),
        st.randoms(use_true_random=False),
    )
    def test_records_commute(self, observations, rng):
        ops = [Record(obs) for obs in observations]
        shuffled = list(ops)
        rng.shuffle(shuffled)
        assert apply_all((), ops) == apply_all((), shuffled)

    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=15))
    def test_compensation_is_exact(self, deltas):
        """Applying ops then all inverses returns to the initial state."""
        ops = [Increment(d) for d in deltas]
        state = apply_all(123, ops)
        restored = apply_all(state, [op.inverse() for op in ops])
        assert restored == 123

    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=10)
    )
    def test_record_compensation_is_exact(self, observations):
        ops = [Record(obs) for obs in observations]
        state = apply_all((), ops)
        restored = apply_all(state, [op.inverse() for op in reversed(ops)])
        assert restored == ()

    @given(
        st.lists(st.integers(min_value=-50, max_value=50), max_size=8),
        st.integers(min_value=-50, max_value=50),
    )
    def test_assign_does_not_commute_with_increment(self, deltas, value):
        """Documents *why* Assign is excluded from well-behaved sets."""
        if sum(deltas) == 0:
            return
        ops = [Increment(d) for d in deltas]
        assign_first = apply_all(0, [Assign(value)] + ops)
        assign_last = apply_all(0, ops + [Assign(value)])
        assert assign_first != assign_last
