"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_callbacks_run_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self, sim):
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_advances_clock_exactly(self, sim):
        sim.schedule(2.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_past_raises(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_run_until_excludes_later_events(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=4.0)
        assert fired == []
        assert sim.pending_count == 1

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_nested_scheduling(self, sim):
        seen = []

        def outer():
            seen.append(sim.now)
            sim.schedule(5.0, seen.append, sim.now + 5.0)

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [1.0, 6.0]


class TestEvents:
    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        event.succeed(42)
        sim.run()
        assert event.ok
        assert event.value == 42

    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_double_succeed_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_raises_in_waiter(self, sim):
        event = sim.event()
        event.fail(RuntimeError("boom"))
        caught = []

        def waiter():
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(waiter())
        sim.run()
        assert caught == ["boom"]

    def test_fail_requires_exception(self, sim):
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")

    def test_timeout_fires_at_right_time(self, sim):
        times = []

        def proc():
            yield sim.timeout(2.5)
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [2.5]

    def test_timeout_value(self, sim):
        result = []

        def proc():
            value = yield sim.timeout(1.0, value="payload")
            result.append(value)

        sim.process(proc())
        sim.run()
        assert result == ["payload"]

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-0.1)

    def test_all_of_waits_for_every_event(self, sim):
        results = []

        def proc():
            values = yield sim.all_of([sim.timeout(1, "a"), sim.timeout(3, "b")])
            results.append((sim.now, values))

        sim.process(proc())
        sim.run()
        assert results == [(3.0, ["a", "b"])]

    def test_all_of_empty_triggers_immediately(self, sim):
        results = []

        def proc():
            values = yield sim.all_of([])
            results.append(values)

        sim.process(proc())
        sim.run()
        assert results == [[]]

    def test_any_of_returns_first(self, sim):
        results = []

        def proc():
            first = yield sim.any_of([sim.timeout(5, "slow"), sim.timeout(1, "fast")])
            results.append((sim.now, first.value))

        sim.process(proc())
        sim.run()
        assert results == [(1.0, "fast")]

    def test_callback_on_already_triggered_event(self, sim):
        event = sim.event()
        event.succeed("x")
        sim.run()
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        sim.run()
        assert seen == ["x"]


class TestProcesses:
    def test_process_return_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "done"

        process = sim.process(proc())
        sim.run()
        assert process.value == "done"

    def test_process_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_process_waiting_on_process(self, sim):
        log = []

        def child():
            yield sim.timeout(2.0)
            return 7

        def parent():
            value = yield sim.process(child())
            log.append((sim.now, value))

        sim.process(parent())
        sim.run()
        assert log == [(2.0, 7)]

    def test_yielding_non_event_raises(self, sim):
        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_unhandled_exception_propagates(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise ValueError("bug in model")

        sim.process(bad())
        with pytest.raises(ValueError):
            sim.run()

    def test_kill_runs_finally(self, sim):
        cleaned = []

        def proc():
            try:
                yield sim.timeout(100.0)
            finally:
                cleaned.append(sim.now)

        process = sim.process(proc())
        sim.schedule(5.0, process.kill)
        sim.run()
        assert cleaned == [5.0]
        assert not process.is_alive

    def test_kill_finished_process_noop(self, sim):
        def proc():
            yield sim.timeout(1.0)

        process = sim.process(proc())
        sim.run()
        process.kill()
        sim.run()

    def test_killed_process_fails_waiters(self, sim):
        outcomes = []

        def victim():
            yield sim.timeout(100.0)

        target = sim.process(victim())

        def waiter():
            try:
                yield target
            except ProcessKilled:
                outcomes.append("killed")

        sim.process(waiter())
        sim.schedule(1.0, target.kill)
        sim.run()
        assert outcomes == ["killed"]

    def test_run_until_triggered(self, sim):
        def proc():
            yield sim.timeout(4.0)
            return "ok"

        process = sim.process(proc())
        sim.run_until_triggered(process)
        assert process.value == "ok"
        assert sim.now == 4.0

    def test_run_until_triggered_drained_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            sim.run_until_triggered(event)

    def test_run_until_triggered_limit_raises(self, sim):
        def tick():
            while True:
                yield sim.timeout(1.0)

        sim.process(tick())
        event = sim.event()
        with pytest.raises(SimulationError):
            sim.run_until_triggered(event, limit=10.0)
