"""Smoke coverage for the hot-path benchmark harness.

Keeps ``benchmarks/bench_hotpath.py`` and ``tools/bench.py`` inside the
tier-1 safety net: the smoke suite must run inside the test budget, the
e2e workload must be deterministic, the committed ``BENCH_hotpath.json``
must stay well-formed (and keep showing the tracked speedup over the seed
kernel), and the ``--check`` regression-gate logic must actually gate.

``pytest -m benchsmoke`` selects just the suite-exercising subset.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "tools"))

import bench as bench_cli  # noqa: E402
import bench_hotpath  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_hotpath.json"


@pytest.mark.benchsmoke
class TestSmokeSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return bench_hotpath.run_suite("smoke")

    def test_all_metrics_positive(self, suite):
        assert suite["mode"] == "smoke"
        assert suite["metrics"], "smoke suite produced no metrics"
        for name, value in suite["metrics"].items():
            assert value > 0, f"{name} was not a positive rate: {value}"

    def test_expected_metric_set(self, suite):
        expected = {
            "kernel_callback_events_per_sec",
            "kernel_callback_speedup_vs_reference",
            "kernel_process_events_per_sec",
            "kernel_process_speedup_vs_reference",
            "e2e_3v_events_per_sec",
            "e2e_3v_txns_per_sec",
            "advancement_events_per_sec",
            "counter_incs_per_sec",
            "mvstore_ops_per_sec",
            "quiescent_checks_per_sec",
            "quiescent_scan_checks_per_sec",
            "scaling_advancement_events_per_sec_16",
            "scaling_batch_speedup_16",
            "volume_stream_txns_per_sec",
            "volume_memory_flatness",
            "repl_rf1_txns_per_sec",
            "repl_rf1_msg_overhead",
            "repl_rf2_txns_per_sec",
            "repl_rf2_msg_overhead",
            "repl_rf3_txns_per_sec",
            "repl_rf3_msg_overhead",
        }
        assert set(suite["metrics"]) == expected

    def test_aggregate_check_is_the_fast_path(self, suite):
        """The tracked quiescence metric is the aggregate-total path; the
        O(nodes²) scan stays on the books as the (much slower) oracle."""
        assert (suite["metrics"]["quiescent_checks_per_sec"]
                > 5 * suite["metrics"]["quiescent_scan_checks_per_sec"])

    def test_scaling_cells_present_in_digest(self, suite):
        for nodes in (4, 8, 16):
            for key in (f"scaling_events_{nodes:02d}",
                        f"scaling_events_batched_{nodes:02d}",
                        f"scaling_messages_{nodes:02d}",
                        f"scaling_advancement_runs_{nodes:02d}"):
                assert key in suite["determinism"], key
            assert (suite["determinism"][f"scaling_events_batched_{nodes:02d}"]
                    < suite["determinism"][f"scaling_events_{nodes:02d}"])

    def test_volume_cells_present_in_digest(self, suite):
        """The streaming volume cells ride along with bit-stable counts
        and a memory-flatness ratio inside the hard 1.5x bar."""
        for cell in ("small", "large"):
            for key in (f"volume_events_{cell}", f"volume_txns_{cell}"):
                assert key in suite["determinism"], key
        assert (suite["determinism"]["volume_txns_large"]
                > suite["determinism"]["volume_txns_small"])
        assert "volume_differential_txns" in suite["determinism"]
        assert suite["metrics"]["volume_memory_flatness"] > 1 / 1.5

    def test_replication_cells_present_in_digest(self, suite):
        """The replication cells ride along: bit-stable counts per rf,
        the same transactions at every rf (only the fan-out differs),
        strictly growing message traffic, and the rf=1 bit-identity
        digest pin."""
        assert "repl_rf1_digest" in suite["determinism"]
        for rf in (1, 2, 3):
            for key in (f"repl_events_rf{rf}", f"repl_txns_rf{rf}",
                        f"repl_messages_rf{rf}"):
                assert key in suite["determinism"], key
            assert (suite["determinism"][f"repl_txns_rf{rf}"]
                    == suite["determinism"]["repl_txns_rf1"])
        assert (suite["determinism"]["repl_messages_rf1"]
                < suite["determinism"]["repl_messages_rf2"]
                < suite["determinism"]["repl_messages_rf3"])
        assert suite["metrics"]["repl_rf1_msg_overhead"] == 1.0
        assert (suite["metrics"]["repl_rf2_msg_overhead"]
                < suite["metrics"]["repl_rf3_msg_overhead"])

    def test_e2e_workload_is_deterministic(self, suite):
        digest = bench_hotpath.assert_deterministic("smoke")
        for key, value in digest.items():
            assert suite["determinism"][key] == value


class TestCommittedBaseline:
    @pytest.fixture(scope="class")
    def baseline(self):
        assert BASELINE_PATH.exists(), "BENCH_hotpath.json missing"
        return json.loads(BASELINE_PATH.read_text())

    def test_schema(self, baseline):
        assert baseline["schema_version"] == 1
        for key in ("metrics", "determinism", "smoke_metrics",
                    "smoke_determinism", "seed_baseline", "speedup_vs_seed"):
            assert key in baseline, f"baseline missing {key!r}"

    def test_determinism_digest_matches_committed(self, baseline):
        """The full-mode e2e digest is machine-independent; a fresh smoke
        digest must match the committed smoke digest bit for bit."""
        fresh = bench_hotpath.e2e_digest(
            bench_hotpath.run_e2e(bench_hotpath.CONFIGS["smoke"]["e2e"])
        )
        committed = baseline["smoke_determinism"]
        for key, value in fresh.items():
            assert committed[key] == value

    def test_tracked_speedup_over_seed_kernel(self, baseline):
        """The tentpole acceptance bar: >=1.5x end-to-end events/sec over
        the seed kernel, as recorded in the committed trajectory."""
        assert baseline["speedup_vs_seed"]["e2e_3v_events_per_sec"] >= 1.5


class TestCheckGate:
    """--check logic, driven synthetically (no timing, never flaky)."""

    BASELINE = {
        "metrics": {"a_per_sec": 100.0, "b_per_sec": 1000.0},
        "determinism": {"events": 42},
        "smoke_metrics": {"a_per_sec": 10.0},
        "smoke_determinism": {"events": 7},
    }

    @staticmethod
    def fresh(metrics, determinism):
        # Pin the build stamp so these synthetic comparisons stay legal
        # (and deterministic) whatever kernel build the test process runs.
        return {"metrics": metrics, "determinism": determinism,
                "build": {"mode": "pure", "backend": None}}

    def test_passes_within_tolerance(self):
        fresh = self.fresh({"a_per_sec": 80.0, "b_per_sec": 1500.0},
                           {"events": 42})
        assert bench_cli.check(self.BASELINE, fresh, "full", 0.25,
                               out=lambda *_: None)

    def test_fails_on_slowdown_beyond_tolerance(self):
        fresh = self.fresh({"a_per_sec": 70.0, "b_per_sec": 1000.0},
                           {"events": 42})
        assert not bench_cli.check(self.BASELINE, fresh, "full", 0.25,
                                   out=lambda *_: None)

    def test_fails_on_missing_metric(self):
        fresh = self.fresh({"a_per_sec": 100.0}, {"events": 42})
        assert not bench_cli.check(self.BASELINE, fresh, "full", 0.25,
                                   out=lambda *_: None)

    def test_fails_on_determinism_break(self):
        fresh = self.fresh({"a_per_sec": 100.0, "b_per_sec": 1000.0},
                           {"events": 43})
        assert not bench_cli.check(self.BASELINE, fresh, "full", 0.25,
                                   out=lambda *_: None)

    def test_smoke_mode_uses_smoke_tables(self):
        fresh = self.fresh({"a_per_sec": 9.0}, {"events": 7})
        assert bench_cli.check(self.BASELINE, fresh, "smoke", 0.25,
                               out=lambda *_: None)
        fresh = self.fresh({"a_per_sec": 9.0}, {"events": 8})
        assert not bench_cli.check(self.BASELINE, fresh, "smoke", 0.25,
                                   out=lambda *_: None)

    def test_smoke_never_compares_against_full_tables(self):
        """Like-for-like only: a smoke run that would fail against the
        full-mode numbers still passes when its own table is healthy."""
        baseline = dict(self.BASELINE)
        fresh = self.fresh({"a_per_sec": 9.0, "b_per_sec": 1.0},
                           {"events": 7})
        # b_per_sec is 1000x down vs the *full* table, which must not
        # matter in smoke mode (it has no smoke baseline entry).
        assert bench_cli.check(baseline, fresh, "smoke", 0.25,
                               out=lambda *_: None)

    def test_fails_when_baseline_lacks_mode_tables(self):
        """A baseline written before a mode existed must fail that
        mode's gate rather than vacuously passing on empty tables."""
        full_only = {"metrics": {"a_per_sec": 100.0},
                     "determinism": {"events": 42}}
        fresh = self.fresh({"a_per_sec": 100.0}, {"events": 42})
        assert not bench_cli.check(full_only, fresh, "smoke", 0.25,
                                   out=lambda *_: None)
        smoke_only = {"smoke_metrics": {"a_per_sec": 10.0},
                      "smoke_determinism": {"events": 7}}
        assert not bench_cli.check(smoke_only, fresh, "full", 0.25,
                                   out=lambda *_: None)
