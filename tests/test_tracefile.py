"""Tests for trace export / reload."""

import json

from repro.analysis import export_history, load_txn_records
from repro.workloads import run_recording_experiment


def small_run():
    return run_recording_experiment(
        "3v", nodes=3, duration=8.0, update_rate=3.0, inquiry_rate=2.0,
        audit_rate=0.0, entities=10, span=2, seed=2,
    )


class TestExport:
    def test_every_line_is_valid_json_with_type(self, tmp_path):
        result = small_run()
        path = tmp_path / "trace.jsonl"
        written = export_history(result.history, path)
        lines = path.read_text().splitlines()
        assert len(lines) == written > 0
        types = set()
        for line in lines:
            data = json.loads(line)
            types.add(data["type"])
        assert "txn" in types
        assert "read" in types
        assert "write" in types

    def test_ops_can_be_omitted(self, tmp_path):
        result = small_run()
        full = tmp_path / "full.jsonl"
        slim = tmp_path / "slim.jsonl"
        export_history(result.history, full, include_ops=True)
        export_history(result.history, slim, include_ops=False)
        assert slim.stat().st_size < full.stat().st_size
        for line in slim.read_text().splitlines():
            assert json.loads(line)["type"] in ("txn", "advancement")

    def test_advancements_exported(self, tmp_path):
        result = small_run()
        result.system.advance_versions()
        result.system.run_until_quiet()
        path = tmp_path / "trace.jsonl"
        export_history(result.history, path)
        advancements = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line)["type"] == "advancement"
        ]
        assert advancements
        assert advancements[0]["counter_polls"] >= 2


class TestRoundTrip:
    def test_txn_records_survive_reload(self, tmp_path):
        result = small_run()
        path = tmp_path / "trace.jsonl"
        export_history(result.history, path)
        reloaded = load_txn_records(path)
        originals = result.history.txns
        assert len(reloaded) == len(originals)
        for record in reloaded:
            original = originals[record.name]
            assert record.kind == original.kind
            assert record.version == original.version
            assert record.submit_time == original.submit_time
            assert record.local_commit_time == original.local_commit_time
            assert record.waits == original.waits

    def test_reloaded_records_work_with_metrics(self, tmp_path):
        from repro.analysis import LatencySummary

        result = small_run()
        path = tmp_path / "trace.jsonl"
        export_history(result.history, path)
        reloaded = load_txn_records(path)
        latencies = [
            record.local_latency for record in reloaded
            if record.local_latency is not None
        ]
        summary = LatencySummary.of(latencies)
        assert summary.count > 0
